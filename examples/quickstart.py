#!/usr/bin/env python
"""Quickstart: build a KSR-1, run threads on it, watch the coherence.

This walks the core API in five minutes:

1. configure and build a machine,
2. allocate shared memory,
3. write thread bodies as generators yielding ops,
4. run and inspect results + the hardware performance monitor,
5. see two architecture features (read-snarfing, poststore) at work.

Run:  python examples/quickstart.py
"""

from repro import KsrMachine, MachineConfig
from repro.machine.api import SharedMemory
from repro.sim import Compute, Poststore, Read, WaitUntil, Write
from repro.util.units import format_seconds


def main() -> None:
    # 1. A 8-cell KSR-1 (20 MHz, 256 KB sub-cache, 32 MB local cache,
    #    175-cycle remote latency — all published parameters).
    config = MachineConfig.ksr1(n_cells=8)
    machine = KsrMachine(config)
    print(f"machine: {config.name}, {config.n_cells} cells @ "
          f"{config.clock_hz / 1e6:.0f} MHz")
    print(f"remote latency: {config.remote_latency_cycles:.0f} cycles "
          f"({format_seconds(config.seconds(config.remote_latency_cycles))})")

    # 2. Shared memory: every allocation is subpage-aligned by default,
    #    so independent variables never false-share.
    mem = SharedMemory(machine)
    data = mem.array("data", 16)
    flag = mem.alloc_word()

    # 3. Thread bodies are generators; each yield is one operation on
    #    the simulated machine.
    def producer():
        yield Compute(2000)  # pretend to compute something
        for i in range(16):
            yield Write(data.addr(i), i * i)
        yield Write(flag, 1)
        yield Poststore(flag)  # push the flag to all spinning caches

    def consumers(pid):
        def body():
            yield WaitUntil(flag, lambda v: v == 1)
            total = 0
            for i in range(16):
                total += (yield Read(data.addr(i)))
            return total

        return body()

    machine.spawn("producer", producer(), cell_id=0)
    workers = [machine.spawn(f"worker-{i}", consumers(i), cell_id=i) for i in (1, 2, 3)]

    # 4. Run to completion (the engine detects deadlocks for you).
    machine.run()
    expected = sum(i * i for i in range(16))
    for w in workers:
        assert w.result == expected, "coherent memory returned a stale value!"
    print(f"\nall workers read a consistent sum: {expected}")
    print(f"simulated time: {format_seconds(machine.now_seconds)}")

    # 5. The hardware performance monitor (the paper used it for every
    #    measurement; so do this package's experiments).
    pm = machine.total_perf()
    print("\nperformance monitor (all cells):")
    print(f"  ring transactions : {pm.ring_transactions}")
    print(f"  snarfs            : {pm.snarfs}  <- free rides on others' fills")
    print(f"  poststores        : {pm.poststores}")
    print(f"  invalidations     : {pm.invalidations_received}")
    print(f"  sub-cache hit rate: "
          f"{pm.subcache_hits / max(1, pm.total_memory_accesses):.0%}")
    print("\nnext: examples/barrier_tour.py reruns the paper's Figure 4;")
    print("      examples/cg_study.py reruns Table 1.")


if __name__ == "__main__":
    main()
