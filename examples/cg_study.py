#!/usr/bin/env python
"""CG study: rerun the paper's Table 1 and the poststore experiment.

Runs the Conjugate Gradient kernel (real numerics: the CG solve
converges on a generated sparse SPD system) across a processor sweep,
prints a Table-1-style scaling table with Karp-Flatt serial fractions,
and repeats the sweep with poststore propagation to show where the
architecture's producer-push instruction pays off — and where ring
saturation takes the benefit back.

Run:  python examples/cg_study.py [--full]   (--full = n=14000, slower)
"""

import sys

from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable
from repro.util.tables import Table


def main() -> None:
    full = "--full" in sys.argv
    config = MachineConfig.ksr1(32)
    kernel = (
        CgKernel.paper_size(config)
        if full
        else CgKernel(config, n=1400, nnz_target=203_000)
    )
    print(f"CG: n={kernel.n}, nnz={kernel.matrix.nnz} "
          f"({'paper size' if full else 'test scale; pass --full for n=14000'})")

    # the numerics are real — check convergence before trusting timings
    _, residual, iterations = kernel.solve(tol=1e-8)
    print(f"CG solve converged: residual {residual:.2e} "
          f"after {iterations} iterations\n")

    proc_counts = [1, 2, 4, 8, 16, 32]
    scaling = ScalingTable()
    for p in proc_counts:
        scaling.add(p, kernel.run(p).time_s)
    table = Table(
        ["Processors", "Time (s)", "Speedup", "Efficiency", "Serial Fraction"],
        title="Table 1 (reproduced)",
    )
    for point in scaling.points():
        table.add_row(point.row())
    print(table.render())
    steps = scaling.superunitary_steps()
    if steps:
        print(f"\nsuperunitary steps (cache relief): {steps}")

    print("\npoststore propagation (section 3.3.1):")
    ps = Table(["P", "plain (s)", "poststore (s)", "gain"])
    for p in (4, 8, 16, 32):
        plain = kernel.run(p).time_s
        pushed = kernel.run(p, use_poststore=True).time_s
        ps.add_row([p, plain, pushed, f"{(plain - pushed) / plain:+.1%}"])
    print(ps.render())
    print("\nthe gain collapses at the full ring: everyone's poststores")
    print("compete with the demand traffic (the paper's observation)")


if __name__ == "__main__":
    main()
