#!/usr/bin/env python
"""What-if study: re-ask the paper's questions on machines KSR never built.

The simulator is fully parameterized, so the scalability questions of
the paper can be re-asked under architectural changes.  Three studies:

1. *A wider ring* — would the IS kernel have kept scaling at 32
   processors with twice the slots?
2. *Bigger sub-cache* — how much of CG's poor single-processor MFLOPS
   comes from the 256 KB first level?
3. *No read-snarfing combining* — how much do the global-flag barriers
   owe to it?  (Approximated by disabling poststore in the barrier
   implementation, which forces every wakeup through an invalidate +
   group re-read.)

Run:  python examples/custom_machine.py
"""

from dataclasses import replace

from repro.experiments.barriers import measure_barrier
from repro.kernels.is_sort import IsKernel
from repro.kernels.costmodel import KernelCostModel, PhaseWork
from repro.machine.config import MachineConfig
from repro.memory.streams import sequential
from repro.util.tables import Table


def wider_ring_study() -> None:
    print("1. IS at 32 processors: stock ring vs doubled slot count")
    table = Table(["machine", "IS time (s)", "speedup vs 1 proc"])
    for label, slots in (("stock (24 slots)", 12), ("wide (48 slots)", 24)):
        config = MachineConfig.ksr1(32)
        config = replace(config, ring=replace(config.ring, slots_per_subring=slots))
        kernel = IsKernel(config)
        t1 = kernel.run(1).time_s
        t32 = kernel.run(32).time_s
        table.add_row([label, t32, t1 / t32])
    print(table.render())
    print("   -> the wide ring buys IS a little at the full machine;")
    print("      the serial phases, not the wire, are the real ceiling\n")


def bigger_subcache_study() -> None:
    print("2. a strided sweep under different sub-cache sizes")
    table = Table(["sub-cache", "cycles per word access"])
    stream = sequential(0, (2 << 20) // 8)  # a 2 MB sweep
    for label, factor in (("256 KB (stock)", 1), ("1 MB", 4), ("4 MB", 16)):
        config = MachineConfig.ksr1(1)
        config = replace(
            config,
            subcache=replace(config.subcache, total_bytes=256 * 1024 * factor),
        )
        cost = KernelCostModel(config).phase_cost(
            PhaseWork(name="sweep", stream=stream)
        )
        table.add_row([label, cost.total_cycles / stream.n_word_accesses])
    print(table.render())
    print("   -> streaming sweeps barely care (no reuse to keep); the")
    print("      sub-cache size matters for gather-heavy kernels like CG\n")


def snarfing_study() -> None:
    print("3. tournament(M) with and without poststore-assisted wakeup")
    table = Table(["variant", "us per episode (P=32)"])
    for label, use_ps in (("poststore + snarf", True), ("invalidate + re-read", False)):
        t = measure_barrier("tournament(M)", 32, reps=8, use_poststore=use_ps)
        table.add_row([label, t * 1e6])
    print(table.render())
    print("   -> nearly a tie: read-snarfing already combines the 31")
    print("      spinners' re-read into one transaction, so the explicit")
    print("      poststore mostly duplicates work the coherence protocol")
    print("      does anyway — indiscriminate poststore use can even lose")
    print("      (the paper reaches the same conclusion for SP)")


def main() -> None:
    wider_ring_study()
    bigger_subcache_study()
    snarfing_study()


if __name__ == "__main__":
    main()
