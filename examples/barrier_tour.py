#!/usr/bin/env python
"""Barrier tour: rerun the paper's Figure 4 study at any machine size.

Compares all nine barrier algorithms of section 3.2.2 on a KSR-1 of
your chosen size, prints a Figure-4-style table, and demonstrates the
two effects the paper highlights:

* the *counter* barrier collapses because every arrival serializes on
  one subpage;
* replacing tree wakeups with one poststored global flag — the (M)
  variants — wins because read-snarfing revalidates every spinner from
  a single ring transaction.

Run:  python examples/barrier_tour.py [n_processors]
"""

import sys

from repro.experiments.barriers import DEFAULT_ALGORITHMS, measure_barrier
from repro.util.tables import Table


def main() -> None:
    n_procs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"barrier episode times on a {n_procs}-processor KSR-1\n")
    table = Table(["algorithm", "us/episode", "vs tournament(M)"])
    times = {}
    for name in DEFAULT_ALGORITHMS:
        times[name] = measure_barrier(name, n_procs, reps=10)
    reference = times["tournament(M)"]
    for name, t in sorted(times.items(), key=lambda kv: kv[1]):
        table.add_row([name, t * 1e6, f"{t / reference:.2f}x"])
    print(table.render())

    print("\nwhat to look for (the paper's Figure 4 conclusions):")
    print(" * counter at the bottom: hot-spot arrivals serialize on the ring")
    print(" * the (M) variants in front: one poststored flag + snarfing")
    print(" * MCS ~ tournament: the 4-ary tree halves the height but the")
    print("   false-shared arrival word quadruples each level's cost")

    # the poststore ablation: how much does the global flag variant
    # lose if the implementation never poststores?
    with_ps = measure_barrier("tournament(M)", n_procs, reps=10, use_poststore=True)
    without = measure_barrier("tournament(M)", n_procs, reps=10, use_poststore=False)
    print(f"\ntournament(M) with poststore: {with_ps * 1e6:7.1f} us")
    print(f"            without poststore: {without * 1e6:7.1f} us")


if __name__ == "__main__":
    main()
