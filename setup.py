"""Shim so legacy editable installs work in offline environments.

The environment this repository targets has no ``wheel`` package and no
network, which breaks PEP 660 editable installs; ``pip install -e .
--no-use-pep517 --no-build-isolation`` falls back to ``setup.py
develop`` through this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
