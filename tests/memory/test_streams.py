"""Tests for run-length-compressed access streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryModelError
from repro.machine.config import SUBPAGE_BYTES, WORD_BYTES
from repro.memory.streams import AccessStream, concat, gather, sequential, strided

WORDS_PER_SUBPAGE = SUBPAGE_BYTES // WORD_BYTES


class TestSequential:
    def test_compression_ratio(self):
        s = sequential(0, 1024)  # 1024 words = 64 subpages
        assert s.n_touches == 64
        assert s.n_word_accesses == 1024
        assert np.all(s.weights == WORDS_PER_SUBPAGE)

    def test_unaligned_base(self):
        s = sequential(SUBPAGE_BYTES - WORD_BYTES, 2)  # straddles a boundary
        assert s.n_touches == 2
        assert list(s.weights) == [1, 1]

    def test_empty(self):
        s = sequential(0, 0)
        assert s.n_touches == 0 and s.n_word_accesses == 0

    def test_negative_rejected(self):
        with pytest.raises(MemoryModelError):
            sequential(0, -1)

    def test_footprint(self):
        s = sequential(0, 1024)
        assert s.footprint_bytes == 64 * SUBPAGE_BYTES
        assert s.n_distinct_subpages == 64


class TestStrided:
    def test_subpage_stride_no_compression(self):
        s = strided(0, 100, WORDS_PER_SUBPAGE)
        assert s.n_touches == 100
        assert np.all(s.weights == 1)

    def test_small_stride_compresses(self):
        s = strided(0, 32, 2)  # every other word: 8 touches per subpage
        assert s.n_touches == 4
        assert np.all(s.weights == 8)

    def test_zero_stride_rejected(self):
        with pytest.raises(MemoryModelError):
            strided(0, 10, 0)

    def test_negative_walk_rejected(self):
        with pytest.raises(MemoryModelError):
            strided(0, 10, -5)


class TestGather:
    def test_run_compression(self):
        s = gather(0, [0, 1, 2, 100, 100, 0])
        # words 0,1,2 share subpage 0; 100 is subpage 6; then back to 0
        assert list(s.subpages) == [0, 6, 0]
        assert list(s.weights) == [3, 2, 1]

    def test_negative_index_rejected(self):
        with pytest.raises(MemoryModelError):
            gather(0, [-1])

    def test_2d_rejected(self):
        with pytest.raises(MemoryModelError):
            gather(0, np.zeros((2, 2), dtype=int))


class TestConcatAndRepeat:
    def test_concat_merges_boundary_runs(self):
        a = sequential(0, WORDS_PER_SUBPAGE)  # subpage 0
        b = sequential(0, WORDS_PER_SUBPAGE)  # subpage 0 again
        s = concat([a, b])
        assert s.n_touches == 1
        assert s.n_word_accesses == 2 * WORDS_PER_SUBPAGE

    def test_concat_write_fraction_weighted(self):
        a = sequential(0, 100, write_fraction=1.0)
        b = sequential(100 * WORD_BYTES, 300, write_fraction=0.0)
        assert concat([a, b]).write_fraction == pytest.approx(0.25)

    def test_concat_empty(self):
        assert concat([]).n_touches == 0

    def test_repeated(self):
        s = sequential(0, 256).repeated(3)
        assert s.n_word_accesses == 768

    def test_repeated_one_is_identity(self):
        s = sequential(0, 256)
        assert s.repeated(1) is s

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_repeat_preserves_totals(self, times, n_words):
        s = sequential(0, n_words)
        r = s.repeated(times)
        assert r.n_word_accesses == times * n_words
        assert r.n_distinct_subpages == s.n_distinct_subpages


class TestValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(MemoryModelError):
            AccessStream(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64))

    def test_bad_write_fraction_rejected(self):
        ids = np.zeros(1, dtype=np.int64)
        with pytest.raises(MemoryModelError):
            AccessStream(ids, ids.copy(), write_fraction=1.5)

    def test_mapped_pages(self):
        s = sequential(0, 4096)  # 256 subpages = 2 pages
        pages = s.mapped(128)
        assert list(pages) == [0, 1]
