"""Tests for the generic set-associative cache."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryModelError
from repro.machine.config import CacheConfig
from repro.memory.cache_sets import SetAssociativeCache


def small_cache(ways=2, alloc_bytes=256, line_bytes=64, sets=4, seed=0):
    config = CacheConfig(
        total_bytes=sets * ways * alloc_bytes,
        ways=ways,
        line_bytes=line_bytes,
        alloc_bytes=alloc_bytes,
    )
    return SetAssociativeCache(config, np.random.default_rng(seed))


class TestBasicBehaviour:
    def test_first_touch_allocates_frame(self):
        c = small_cache()
        r = c.access(0)
        assert r.line_missed and r.frame_allocated and r.evicted_alloc_id is None

    def test_second_touch_hits(self):
        c = small_cache()
        c.access(0)
        assert c.access(0).line_hit

    def test_same_frame_other_line_misses_without_alloc(self):
        c = small_cache()  # 4 lines per 256-byte frame
        c.access(0)
        r = c.access(1)
        assert r.line_missed and not r.frame_allocated

    def test_negative_line_rejected(self):
        with pytest.raises(MemoryModelError):
            small_cache().access(-1)


class TestEviction:
    def test_eviction_when_set_overflows(self):
        c = small_cache(ways=2, sets=4)
        lines_per_alloc = c.lines_per_alloc
        # three allocation units mapping to set 0: alloc ids 0, 4, 8
        c.access(0 * lines_per_alloc)
        c.access(4 * lines_per_alloc)
        r = c.access(8 * lines_per_alloc)
        assert r.frame_allocated
        assert r.evicted_alloc_id in (0, 4)
        assert c.n_evictions == 1

    def test_evicted_lines_reported(self):
        c = small_cache(ways=1, sets=4)
        lpa = c.lines_per_alloc
        c.access(0)
        c.access(1)
        r = c.access(4 * lpa)  # same set, way conflict
        assert set(r.evicted_lines) == {0, 1}
        assert not c.contains_line(0)

    def test_random_replacement_uses_rng(self):
        # with many conflicting allocations both ways get victimized
        victims = set()
        c = small_cache(ways=2, sets=1, seed=3)
        lpa = c.lines_per_alloc
        for alloc in range(50):
            r = c.access(alloc * lpa)
            if r.evicted_alloc_id is not None:
                victims.add(r.evicted_alloc_id % 2)
        assert victims == {0, 1}


class TestMaintenance:
    def test_drop_line(self):
        c = small_cache()
        c.access(0)
        assert c.drop_line(0) is True
        assert c.drop_line(0) is False
        assert not c.contains_line(0)
        assert c.contains_frame(0)  # frame survives

    def test_drop_frame(self):
        c = small_cache()
        c.access(0)
        c.access(1)
        assert set(c.drop_frame(0)) == {0, 1}
        assert not c.contains_frame(0)
        assert c.drop_frame(0) == ()

    def test_counters_and_reset(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        assert c.n_accesses == 2 and c.n_line_hits == 1
        assert c.hit_rate == pytest.approx(0.5)
        c.reset_counters()
        assert c.n_accesses == 0
        assert c.hit_rate == 0.0


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
    def test_capacity_never_exceeded(self, lines):
        c = small_cache(ways=2, sets=4)
        for line in lines:
            c.access(line)
        assert c.n_frames_used <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_immediate_re_access_always_hits(self, lines):
        c = small_cache()
        for line in lines:
            c.access(line)
            assert c.access(line).line_hit
