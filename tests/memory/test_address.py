"""Tests for address arithmetic and segment translation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryModelError
from repro.machine.config import (
    BLOCK_BYTES,
    PAGE_BYTES,
    SUBBLOCK_BYTES,
    SUBPAGE_BYTES,
)
from repro.memory.address import (
    ContextAddressSpace,
    SegmentTranslationTable,
    align_up,
    block_of,
    page_of,
    subblock_of,
    subpage_of,
    subpage_base,
    word_of,
)

addresses = st.integers(min_value=0, max_value=2**40)


class TestGranularities:
    def test_published_sizes(self):
        assert SUBPAGE_BYTES == 128
        assert SUBBLOCK_BYTES == 64
        assert BLOCK_BYTES == 2048
        assert PAGE_BYTES == 16384

    @given(addresses)
    def test_containment_chain(self, addr):
        # word ⊆ sub-block ⊆ subpage ⊆ block ⊆ page
        assert subblock_of(addr) == word_of(addr) * 8 // SUBBLOCK_BYTES
        assert subpage_of(addr) * SUBPAGE_BYTES <= addr < (subpage_of(addr) + 1) * SUBPAGE_BYTES
        assert block_of(addr) == subpage_of(addr) * SUBPAGE_BYTES // BLOCK_BYTES
        assert page_of(addr) == addr // PAGE_BYTES

    @given(st.integers(min_value=0, max_value=2**32))
    def test_subpage_base_roundtrip(self, sp):
        assert subpage_of(subpage_base(sp)) == sp

    def test_two_subblocks_per_subpage(self):
        assert subblock_of(SUBPAGE_BYTES - 1) - subblock_of(0) == 1


class TestAlignUp:
    @given(addresses, st.sampled_from([8, 64, 128, 2048, 16384]))
    def test_result_aligned_and_minimal(self, addr, alignment):
        result = align_up(addr, alignment)
        assert result % alignment == 0
        assert result >= addr
        assert result - addr < alignment

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(MemoryModelError):
            align_up(10, 0)


class TestSegmentTranslation:
    def test_translate(self):
        stt = SegmentTranslationTable()
        stt.map(ca_base=0x1000, size=0x1000, sva_base=0x9000)
        assert stt.translate(0x1234) == 0x9234

    def test_overlap_rejected(self):
        stt = SegmentTranslationTable()
        stt.map(0x1000, 0x1000, 0x9000)
        with pytest.raises(MemoryModelError):
            stt.map(0x1800, 0x1000, 0xA000)

    def test_adjacent_segments_ok(self):
        stt = SegmentTranslationTable()
        stt.map(0x1000, 0x1000, 0x9000)
        stt.map(0x2000, 0x1000, 0xB000)
        assert stt.translate(0x2000) == 0xB000

    def test_unmapped_rejected(self):
        stt = SegmentTranslationTable()
        with pytest.raises(MemoryModelError):
            stt.translate(0x55)

    def test_readonly_write_rejected(self):
        stt = SegmentTranslationTable()
        stt.map(0, 0x100, 0x9000, writable=False)
        assert stt.translate(0x10) == 0x9010
        with pytest.raises(MemoryModelError):
            stt.translate(0x10, for_write=True)


class TestContextAddressSpace:
    def test_attach_sequential_non_overlapping(self):
        ctx = ContextAddressSpace()
        ca1 = ctx.attach(0x100000, 300)
        ca2 = ctx.attach(0x200000, 300)
        assert ca2 >= ca1 + 300
        assert ctx.translate(ca1 + 5) == 0x100005
        assert ctx.translate(ca2 + 5) == 0x200005

    def test_ca_bases_subpage_aligned(self):
        ctx = ContextAddressSpace()
        ca = ctx.attach(0x100000, 100)
        assert ca % SUBPAGE_BYTES == 0
