"""Tests for the first-level (sub-)cache model."""

import numpy as np
import pytest

from repro.machine.config import MachineConfig, SUBBLOCK_BYTES, SUBPAGE_BYTES


def make_subcache(seed=0):
    from repro.memory.subcache import SubCache

    return SubCache(MachineConfig.ksr1(1).subcache, np.random.default_rng(seed))


class TestGeometry:
    def test_published_geometry(self):
        cfg = MachineConfig.ksr1(1).subcache
        assert cfg.total_bytes == 256 * 1024
        assert cfg.ways == 2
        assert cfg.line_bytes == 64
        assert cfg.alloc_bytes == 2048
        assert cfg.n_sets == 64
        assert cfg.lines_per_alloc == 32


class TestAccessPatterns:
    def test_words_within_subblock_hit_after_first(self):
        sc = make_subcache()
        first = sc.access(0x1000)
        assert not first.hit
        for offset in range(8, SUBBLOCK_BYTES, 8):
            assert sc.access(0x1000 + offset).hit

    def test_adjacent_subblock_misses_same_block(self):
        sc = make_subcache()
        sc.access(0x1000)
        r = sc.access(0x1000 + SUBBLOCK_BYTES)
        assert not r.hit and not r.block_allocated

    def test_block_stride_allocates_every_time(self):
        # the access pattern of the paper's +50 % measurement
        sc = make_subcache()
        for i in range(8):
            r = sc.access(i * 2048)
            assert r.block_allocated

    def test_drop_subpage_purges_both_subblocks(self):
        sc = make_subcache()
        sc.access(0x1000)
        sc.access(0x1000 + SUBBLOCK_BYTES)
        sc.drop_subpage(0x1000 // SUBPAGE_BYTES)
        assert not sc.contains(0x1000)
        assert not sc.contains(0x1000 + SUBBLOCK_BYTES)

    def test_counters(self):
        sc = make_subcache()
        sc.access(0)
        sc.access(0)
        sc.access(64)
        assert sc.n_accesses == 3
        assert sc.n_misses == 2
        assert sc.hit_rate == pytest.approx(1 / 3)


class TestCapacityBehaviour:
    def test_working_set_larger_than_cache_thrashes(self):
        """A 1 MB sweep cannot be held by the 256 KB sub-cache — the
        setup the paper uses to measure local-cache latency."""
        sc = make_subcache()
        one_mb_subblocks = (1 << 20) // SUBBLOCK_BYTES
        # two sweeps; second sweep should still miss heavily
        for _ in range(2):
            for i in range(one_mb_subblocks):
                sc.access(i * SUBBLOCK_BYTES)
        assert sc.hit_rate < 0.5

    def test_small_working_set_stays_resident(self):
        sc = make_subcache()
        subblocks = (64 * 1024) // SUBBLOCK_BYTES  # 64 KB fits easily
        for _ in range(3):
            for i in range(subblocks):
                sc.access(i * SUBBLOCK_BYTES)
        assert sc.hit_rate > 0.6
