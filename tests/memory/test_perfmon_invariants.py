"""Property tests for the performance monitor's accounting invariants.

Two layers: algebraic properties of :class:`PerfMonitor` itself
(hypothesis over synthetic counter values), and run-level invariants
checked on small simulated workloads (the counters a real machine
produces must satisfy the relations the paper's analysis relies on).
"""

from dataclasses import fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.memory.perfmon import PerfMonitor
from repro.sync.locks import LockWorkloadParams, TicketReadWriteLock, run_lock_workload


def _monitors():
    """Strategy: a PerfMonitor with arbitrary non-negative counters."""
    kwargs = {}
    for f in fields(PerfMonitor):
        if isinstance(f.default, float):
            kwargs[f.name] = st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False)
        else:
            kwargs[f.name] = st.integers(0, 10**9)
    return st.builds(PerfMonitor, **kwargs)


class TestAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(pm=_monitors())
    def test_accesses_are_hits_plus_misses(self, pm):
        assert pm.total_memory_accesses == pm.subcache_hits + pm.subcache_misses

    @settings(max_examples=50, deadline=None)
    @given(monitors=st.lists(_monitors(), max_size=5))
    def test_aggregate_is_fieldwise_sum(self, monitors):
        total = PerfMonitor.aggregate(monitors)
        for f in fields(PerfMonitor):
            assert getattr(total, f.name) == pytest.approx(
                sum(getattr(m, f.name) for m in monitors)
            )

    @settings(max_examples=50, deadline=None)
    @given(a=_monitors(), b=_monitors())
    def test_aggregate_matches_addition(self, a, b):
        assert PerfMonitor.aggregate([a, b]).snapshot() == (a + b).snapshot()

    @settings(max_examples=50, deadline=None)
    @given(pm=_monitors())
    def test_reset_zeroes_everything(self, pm):
        pm.reset()
        assert all(v == 0 for v in pm.snapshot().values())
        assert pm.derived() == {
            "subcache_miss_rate": 0.0,
            "local_miss_rate": 0.0,
            "avg_ring_latency": 0.0,
            "ring_wait_fraction": 0.0,
        }

    @settings(max_examples=50, deadline=None)
    @given(pm=_monitors())
    def test_rates_are_proper_fractions(self, pm):
        assert 0.0 <= pm.subcache_miss_rate <= 1.0
        assert 0.0 <= pm.local_miss_rate <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(a=_monitors(), b=_monitors())
    def test_diff_inverts_addition(self, a, b):
        combined = a + b
        recovered = combined.diff(a)
        for f in fields(PerfMonitor):
            # float counters lose low bits when a huge a meets a tiny b:
            # allow the cancellation error of (a + b) - a
            tol = max(abs(getattr(a, f.name)), 1.0) * 1e-9
            assert getattr(recovered, f.name) == pytest.approx(
                getattr(b, f.name), rel=1e-9, abs=tol
            )


def _run_small_machine(n_procs: int, read_fraction: float, seed: int) -> KsrMachine:
    """Run a tiny lock workload and return the machine for inspection."""
    config = MachineConfig.ksr1(n_cells=n_procs, seed=seed)
    machine = KsrMachine(config)
    lock = TicketReadWriteLock(SharedMemory(machine))
    params = LockWorkloadParams(
        ops_per_processor=4, read_fraction=read_fraction, seed=seed
    )
    run_lock_workload(machine, lock, params, n_threads=n_procs)
    return machine


class TestRunInvariants:
    @settings(max_examples=6, deadline=None)
    @given(
        n_procs=st.integers(2, 4),
        read_fraction=st.sampled_from([0.0, 0.5, 1.0]),
        seed=st.integers(0, 2**16),
    )
    def test_counters_from_a_real_run(self, n_procs, read_fraction, seed):
        machine = _run_small_machine(n_procs, read_fraction, seed)
        for cell in machine.cells:
            pm = cell.perfmon
            assert pm.total_memory_accesses == pm.subcache_hits + pm.subcache_misses
            assert pm.ring_wait_cycles <= pm.ring_cycles
            assert pm.ring_cycles >= 0.0
            # a local-cache lookup only happens on a sub-cache miss
            assert pm.local_cache_hits + pm.local_cache_misses <= pm.subcache_misses
        total = machine.total_perf()
        expected = PerfMonitor.aggregate(cell.perfmon for cell in machine.cells)
        assert total.snapshot() == expected.snapshot()
        assert total.ring_wait_cycles <= total.ring_cycles
        machine.reset_perf()
        assert all(v == 0 for v in machine.total_perf().snapshot().values())
