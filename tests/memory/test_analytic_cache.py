"""Tests for the StatCache-style analytic model, including validation
against the exact event-level cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryModelError
from repro.machine.config import CacheConfig, SUBPAGE_BYTES, WORD_BYTES
from repro.memory.analytic_cache import (
    AnalyticCache,
    fixpoint_miss_ratio,
    time_distances,
)
from repro.memory.cache_sets import SetAssociativeCache
from repro.memory.streams import gather, sequential

WORDS_PER_SUBPAGE = SUBPAGE_BYTES // WORD_BYTES


class TestTimeDistances:
    def test_basic(self):
        ids = np.array([1, 2, 1, 1, 3, 2])
        d, n_cold = time_distances(ids)
        assert list(d) == [-1, -1, 2, 1, -1, 4]
        assert n_cold == 3

    def test_empty(self):
        d, n_cold = time_distances(np.empty(0, dtype=np.int64))
        assert d.size == 0 and n_cold == 0

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive(self, ids_list):
        ids = np.array(ids_list)
        d, n_cold = time_distances(ids)
        last: dict[int, int] = {}
        for i, x in enumerate(ids_list):
            expected = i - last[x] if x in last else -1
            assert d[i] == expected
            last[x] = i
        assert n_cold == len(set(ids_list))


class TestFixpoint:
    def test_all_cold_stream(self):
        ids = np.arange(100)
        d, n_cold = time_distances(ids)
        m, p = fixpoint_miss_ratio(d, n_cold, n_lines=1000)
        assert m == pytest.approx(1.0)
        assert np.all(p == 1.0)

    def test_tiny_working_set_all_hits_after_cold(self):
        ids = np.tile(np.arange(4), 100)
        d, n_cold = time_distances(ids)
        m, _ = fixpoint_miss_ratio(d, n_cold, n_lines=10_000)
        assert m == pytest.approx(4 / 400, abs=1e-3)

    def test_thrashing_working_set(self):
        # 1000 distinct lines cycled through a 10-line cache: ~all miss
        ids = np.tile(np.arange(1000), 3)
        d, n_cold = time_distances(ids)
        m, _ = fixpoint_miss_ratio(d, n_cold, n_lines=10)
        assert m > 0.95

    def test_invalid_cache_size(self):
        with pytest.raises(MemoryModelError):
            fixpoint_miss_ratio(np.array([-1]), 1, n_lines=0)


class TestAgainstExactSimulator:
    """The analytic model should land near the event-level cache with
    random replacement, across qualitatively different streams."""

    CONFIG = CacheConfig(total_bytes=64 * 1024, ways=4, line_bytes=128, alloc_bytes=2048)

    def _exact_miss_ratio(self, subpage_ids: np.ndarray, seed: int = 0) -> float:
        # event-level cache at subpage granularity
        cache = SetAssociativeCache(self.CONFIG, np.random.default_rng(seed))
        misses = sum(0 if cache.access(int(sp)).line_hit else 1 for sp in subpage_ids)
        return misses / len(subpage_ids)

    def _compare(self, stream, tol):
        model = AnalyticCache(self.CONFIG).simulate(stream)
        exact = np.mean(
            [self._exact_miss_ratio(stream.subpages, seed) for seed in range(3)]
        )
        assert model.miss_ratio == pytest.approx(exact, abs=tol)

    def test_fits_in_cache(self):
        # 32 KB working set in a 64 KB cache, swept 4 times
        self._compare(sequential(0, 4096).repeated(4), tol=0.05)

    def test_thrashes_cache(self):
        # 256 KB working set in a 64 KB cache
        self._compare(sequential(0, 32768).repeated(2), tol=0.08)

    def test_random_gather(self):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 20_000, size=30_000)
        self._compare(gather(0, idx), tol=0.08)

    def test_skewed_gather(self):
        rng = np.random.default_rng(2)
        idx = (rng.zipf(1.5, size=30_000) % 40_000).astype(np.int64)
        self._compare(gather(0, idx), tol=0.08)


class TestAnalyticCacheResults:
    CONFIG = CacheConfig(total_bytes=64 * 1024, ways=4, line_bytes=128, alloc_bytes=2048)

    def test_warm_iteration_drops_cold_misses(self):
        stream = sequential(0, 2048)  # 16 KB, fits in 64 KB easily
        cold = AnalyticCache(self.CONFIG).simulate(stream)
        warm = AnalyticCache(self.CONFIG).simulate(stream, iterations=3)
        assert cold.miss_ratio == pytest.approx(1.0)
        assert warm.miss_ratio < 0.1

    def test_word_hits_account_for_weights(self):
        stream = sequential(0, 1600)  # 100 subpages, 16 words each
        res = AnalyticCache(self.CONFIG).simulate(stream)
        assert res.n_word_accesses == 1600
        assert res.expected_word_hits == pytest.approx(1600 - res.expected_line_misses)

    def test_frame_allocs_bounded_by_footprint(self):
        stream = sequential(0, 65536)
        res = AnalyticCache(self.CONFIG).simulate(stream)
        n_pages_touched = len(np.unique(stream.mapped(self.CONFIG.alloc_bytes // 128)))
        assert res.expected_frame_allocs >= n_pages_touched * 0.99

    def test_empty_stream(self):
        res = AnalyticCache(self.CONFIG).simulate(sequential(0, 0))
        assert res.n_touches == 0 and res.miss_ratio == 0.0

    def test_bad_iterations(self):
        with pytest.raises(MemoryModelError):
            AnalyticCache(self.CONFIG).simulate(sequential(0, 16), iterations=0)
