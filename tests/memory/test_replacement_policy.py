"""Tests for the replacement-policy option (random vs LRU ablation)."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.machine.config import CacheConfig
from repro.memory.cache_sets import SetAssociativeCache

CONFIG = CacheConfig(total_bytes=8 * 256, ways=2, line_bytes=64, alloc_bytes=256)


def cache(policy, seed=0):
    return SetAssociativeCache(CONFIG, np.random.default_rng(seed), policy=policy)


class TestLru:
    def test_unknown_policy_rejected(self):
        with pytest.raises(MemoryModelError):
            cache("clock")

    def test_lru_evicts_least_recent(self):
        c = cache("lru")
        lpa = c.lines_per_alloc
        # three allocation units in set 0 (4 sets): ids 0, 4, 8
        c.access(0 * lpa)
        c.access(4 * lpa)
        c.access(0 * lpa)  # unit 0 is now most recent
        result = c.access(8 * lpa)  # set full: LRU victim is unit 4
        assert result.evicted_alloc_id == 4
        assert c.contains_frame(0)

    def test_lru_touch_refreshes_recency(self):
        c = cache("lru")
        lpa = c.lines_per_alloc
        c.access(0 * lpa)
        c.access(4 * lpa)
        c.access(0 * lpa)
        c.access(4 * lpa)  # order now 0, 4
        assert c.access(8 * lpa).evicted_alloc_id == 0

    def test_lru_cyclic_sweep_worst_case(self):
        """Cyclic over-capacity sweep: LRU hit rate collapses while
        random replacement keeps a fraction — why random replacement
        is a defensible default, per the ablation benchmark."""

        def hit_rate(policy):
            c = cache(policy, seed=3)
            lpa = c.lines_per_alloc
            for _ in range(6):
                for unit in range(12):  # 3 units per 2-way set: every
                    c.access(unit * lpa)  # set is oversubscribed
            return c.hit_rate

        assert hit_rate("lru") < 0.05
        assert hit_rate("random") > 0.10

    def test_policies_agree_under_capacity(self):
        def hit_rate(policy):
            c = cache(policy)
            lpa = c.lines_per_alloc
            for _ in range(3):
                for unit in range(6):
                    c.access(unit * lpa)
            return c.hit_rate

        assert hit_rate("lru") == hit_rate("random") == pytest.approx(2 / 3)
