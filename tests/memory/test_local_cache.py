"""Tests for the second-level (local) cache and its coherence states."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.machine.config import MachineConfig
from repro.memory.local_cache import LocalCache, SubpageState


def make_local_cache(seed=0):
    return LocalCache(MachineConfig.ksr1(1).local_cache, np.random.default_rng(seed))


class TestGeometry:
    def test_published_geometry(self):
        cfg = MachineConfig.ksr1(1).local_cache
        assert cfg.total_bytes == 32 * 1024 * 1024
        assert cfg.ways == 16
        assert cfg.line_bytes == 128
        assert cfg.alloc_bytes == 16384
        assert cfg.lines_per_alloc == 128


class TestStates:
    def test_fill_and_query(self):
        lc = make_local_cache()
        fill = lc.fill(10, SubpageState.SHARED)
        assert fill.page_allocated
        assert lc.state_of(10) is SubpageState.SHARED
        assert lc.is_valid(10)

    def test_fill_invalid_rejected(self):
        lc = make_local_cache()
        with pytest.raises(ProtocolError):
            lc.fill(10, SubpageState.INVALID)

    def test_invalidate_keeps_placeholder(self):
        lc = make_local_cache()
        lc.fill(10, SubpageState.SHARED)
        assert lc.invalidate(10) is True
        assert lc.contains(10)
        assert not lc.is_valid(10)
        assert lc.invalidate(10) is False  # already invalid

    def test_invalidate_absent_is_noop(self):
        assert make_local_cache().invalidate(99) is False

    def test_snarf_revives_placeholder_only(self):
        lc = make_local_cache()
        lc.fill(10, SubpageState.SHARED)
        assert lc.snarf(10) is False  # valid copies don't snarf
        lc.invalidate(10)
        assert lc.snarf(10) is True
        assert lc.state_of(10) is SubpageState.SHARED
        assert lc.n_snarfs == 1

    def test_snarf_absent_is_noop(self):
        assert make_local_cache().snarf(5) is False

    def test_set_state_requires_presence(self):
        lc = make_local_cache()
        with pytest.raises(ProtocolError):
            lc.set_state(3, SubpageState.EXCLUSIVE)

    def test_drop_removes_completely(self):
        lc = make_local_cache()
        lc.fill(10, SubpageState.EXCLUSIVE)
        lc.drop(10)
        assert not lc.contains(10)

    def test_state_properties(self):
        assert not SubpageState.INVALID.valid
        assert SubpageState.SHARED.valid and not SubpageState.SHARED.writable
        assert SubpageState.EXCLUSIVE.writable
        assert SubpageState.ATOMIC.writable


class TestAllocation:
    def test_same_page_subpages_share_frame(self):
        lc = make_local_cache()
        first = lc.fill(0, SubpageState.SHARED)  # page 0
        second = lc.fill(1, SubpageState.SHARED)  # same 16 KB page
        assert first.page_allocated and not second.page_allocated

    def test_eviction_reports_displaced_subpages(self):
        lc = make_local_cache()
        n_sets = MachineConfig.ksr1(1).local_cache.n_sets
        lines_per_page = 128
        # overflow set 0 with 17 pages mapping to it
        evicted = []
        for k in range(17):
            page = k * n_sets
            fill = lc.fill(page * lines_per_page, SubpageState.SHARED)
            evicted.extend(fill.evicted_subpages)
        assert len(evicted) == 1  # exactly one page displaced, one subpage in it
        assert not lc.contains(evicted[0])
