"""Tests for the hardware performance monitor model."""

import pytest

from repro.memory.perfmon import PerfMonitor


class TestPerfMonitor:
    def test_addition_aggregates(self):
        a = PerfMonitor(subcache_misses=3, ring_cycles=100.0)
        b = PerfMonitor(subcache_misses=4, ring_cycles=50.0)
        total = a + b
        assert total.subcache_misses == 7
        assert total.ring_cycles == pytest.approx(150.0)

    def test_reset(self):
        pm = PerfMonitor(subcache_misses=3, ring_cycles=10.0)
        pm.reset()
        assert pm.subcache_misses == 0
        assert pm.ring_cycles == 0.0

    def test_diff(self):
        pm = PerfMonitor(ring_transactions=10)
        before = pm.copy()
        pm.ring_transactions += 5
        assert pm.diff(before).ring_transactions == 5

    def test_avg_ring_latency(self):
        pm = PerfMonitor(ring_transactions=4, ring_cycles=700.0)
        assert pm.avg_ring_latency == pytest.approx(175.0)

    def test_avg_ring_latency_no_traffic(self):
        assert PerfMonitor().avg_ring_latency == 0.0

    def test_total_memory_accesses(self):
        pm = PerfMonitor(subcache_hits=10, subcache_misses=5)
        assert pm.total_memory_accesses == 15

    def test_snapshot_is_plain_dict(self):
        snap = PerfMonitor(snarfs=2).snapshot()
        assert snap["snarfs"] == 2
        assert isinstance(snap, dict)

    def test_copy_is_independent(self):
        pm = PerfMonitor(snarfs=1)
        clone = pm.copy()
        pm.snarfs = 99
        assert clone.snarfs == 1
