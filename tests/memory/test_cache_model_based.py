"""Model-based (stateful) testing of the set-associative cache.

The LRU policy is deterministic, so the cache can be checked
step-by-step against an independent reference model under arbitrary
hypothesis-generated access/drop sequences.  (Random replacement is
covered statistically in test_cache_sets/test_analytic_cache.)
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.machine.config import CacheConfig
from repro.memory.cache_sets import SetAssociativeCache

CONFIG = CacheConfig(total_bytes=4 * 2 * 256, ways=2, line_bytes=64, alloc_bytes=256)
LINES_PER_ALLOC = 4
N_SETS = 4  # derived: 8 frames / 2 ways


class _ReferenceLru:
    """Straight-line reference: per-set ordered dict of frames."""

    def __init__(self):
        self.sets = [dict() for _ in range(N_SETS)]  # alloc_id -> set(lines)

    def access(self, line_id):
        alloc = line_id // LINES_PER_ALLOC
        s = self.sets[alloc % N_SETS]
        if alloc in s:
            lines = s.pop(alloc)
            s[alloc] = lines  # refresh recency
            hit = line_id in lines
            lines.add(line_id)
            return hit, False
        if len(s) >= 2:
            victim = next(iter(s))
            s.pop(victim)
        s[alloc] = {line_id}
        return False, True

    def contains_line(self, line_id):
        alloc = line_id // LINES_PER_ALLOC
        return line_id in self.sets[alloc % N_SETS].get(alloc, ())

    def drop_line(self, line_id):
        alloc = line_id // LINES_PER_ALLOC
        self.sets[alloc % N_SETS].get(alloc, set()).discard(line_id)

    def drop_frame(self, alloc):
        self.sets[alloc % N_SETS].pop(alloc, None)

    def frames_used(self):
        return sum(len(s) for s in self.sets)


class LruCacheMachine(RuleBasedStateMachine):
    """Drive the real cache and the reference in lockstep."""

    def __init__(self):
        super().__init__()
        self.cache = SetAssociativeCache(
            CONFIG, np.random.default_rng(0), policy="lru"
        )
        self.reference = _ReferenceLru()

    @rule(line=st.integers(min_value=0, max_value=63))
    def access(self, line):
        result = self.cache.access(line)
        ref_hit, ref_alloc = self.reference.access(line)
        assert result.line_hit == ref_hit
        assert result.frame_allocated == ref_alloc

    @rule(line=st.integers(min_value=0, max_value=63))
    def drop_line(self, line):
        self.cache.drop_line(line)
        self.reference.drop_line(line)

    @rule(alloc=st.integers(min_value=0, max_value=15))
    def drop_frame(self, alloc):
        self.cache.drop_frame(alloc)
        self.reference.drop_frame(alloc)

    @invariant()
    def same_occupancy(self):
        assert self.cache.n_frames_used == self.reference.frames_used()

    @invariant()
    def same_contents_sample(self):
        for line in (0, 7, 21, 42, 63):
            assert self.cache.contains_line(line) == self.reference.contains_line(line)


TestLruModelBased = LruCacheMachine.TestCase
TestLruModelBased.settings = settings(max_examples=40, stateful_step_count=60, deadline=None)
