"""Tests for the scalability metrics, anchored on the paper's tables."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.metrics.speedup import (
    ScalingTable,
    efficiency,
    is_superunitary_step,
    karp_flatt_serial_fraction,
    speedup,
)

# Table 1 of the paper (Conjugate Gradient, n=14000)
CG_TABLE = [
    (1, 1638.85970),
    (2, 930.47700),
    (4, 565.22150),
    (8, 259.55210),
    (16, 126.51990),
    (32, 72.00830),
]
# Table 2 (Integer Sort, 2^23 keys)
IS_TABLE = [
    (1, 692.95492),
    (2, 351.03866),
    (4, 180.95085),
    (8, 95.79978),
    (16, 54.80835),
    (30, 36.56198),
    (32, 36.63433),
]


class TestAgainstPaperTables:
    def test_cg_speedups(self):
        t1 = CG_TABLE[0][1]
        published = {2: 1.76131, 4: 2.89950, 8: 6.31418, 16: 12.95340, 32: 22.75930}
        for p, tp in CG_TABLE[1:]:
            assert speedup(t1, tp) == pytest.approx(published[p], abs=1e-4)

    def test_cg_serial_fractions(self):
        t1 = CG_TABLE[0][1]
        published = {2: 0.135518, 4: 0.126516, 8: 0.038141, 16: 0.015680, 32: 0.013097}
        for p, tp in CG_TABLE[1:]:
            assert karp_flatt_serial_fraction(t1, tp, p) == pytest.approx(
                published[p], abs=1e-4
            )

    def test_is_serial_fraction_rises(self):
        t1 = IS_TABLE[0][1]
        fractions = [karp_flatt_serial_fraction(t1, tp, p) for p, tp in IS_TABLE[1:]]
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.013166, abs=1e-4)
        assert fractions[-1] == pytest.approx(0.022314, abs=1e-4)

    def test_cg_superunitary_between_4_and_16(self):
        table = ScalingTable.from_pairs(CG_TABLE)
        steps = table.superunitary_steps()
        assert (4, 8) in steps
        assert (8, 16) in steps
        assert (16, 32) not in steps

    def test_cg_efficiency_column(self):
        t1 = CG_TABLE[0][1]
        assert efficiency(t1, 930.477, 2) == pytest.approx(0.881, abs=1e-3)
        assert efficiency(t1, 72.0083, 32) == pytest.approx(0.711, abs=1e-3)


class TestValidation:
    def test_speedup_needs_positive_times(self):
        with pytest.raises(ConfigError):
            speedup(0, 1)
        with pytest.raises(ConfigError):
            speedup(1, -1)

    def test_serial_fraction_needs_p2(self):
        with pytest.raises(ConfigError):
            karp_flatt_serial_fraction(1.0, 1.0, 1)

    def test_efficiency_needs_p1(self):
        with pytest.raises(ConfigError):
            efficiency(1.0, 1.0, 0)

    def test_superunitary_order(self):
        with pytest.raises(ConfigError):
            is_superunitary_step(1.0, 4, 2.0, 4)


class TestScalingTable:
    def test_rows_match_direct_computation(self):
        table = ScalingTable.from_pairs(CG_TABLE)
        rows = table.points()
        assert rows[0].serial_fraction is None
        assert rows[0].speedup == 1.0
        assert rows[-1].processors == 32
        assert rows[-1].speedup == pytest.approx(22.7593, abs=1e-3)

    def test_requires_baseline(self):
        table = ScalingTable()
        table.add(2, 10.0)
        with pytest.raises(ConfigError):
            table.points()

    def test_requires_increasing_p(self):
        table = ScalingTable()
        table.add(4, 10.0)
        with pytest.raises(ConfigError):
            table.add(2, 20.0)

    def test_row_formatting(self):
        table = ScalingTable.from_pairs(CG_TABLE[:2])
        rows = table.points()
        assert rows[0].row()[4] == "-"
        assert isinstance(rows[1].row()[4], float)


class TestProperties:
    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.integers(min_value=2, max_value=1024),
    )
    def test_perfect_scaling_has_zero_serial_fraction(self, t1, p):
        assert karp_flatt_serial_fraction(t1, t1 / p, p) == pytest.approx(0.0, abs=1e-9)

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.integers(min_value=2, max_value=512),
    )
    def test_amdahl_roundtrip(self, f, p):
        """Times generated from Amdahl's law recover the serial
        fraction exactly."""
        t1 = 100.0
        tp = t1 * (f + (1 - f) / p)
        assert karp_flatt_serial_fraction(t1, tp, p) == pytest.approx(f, rel=1e-6)
