"""Shared fixtures: small machine configurations used across the suite.

Timer interrupts are disabled in the default fixtures so latency
assertions are exact; lock tests re-enable them explicitly.
"""

from __future__ import annotations

import pytest

from repro.machine.config import MachineConfig, TimerConfig


def quiet_ksr1(n_cells: int = 4, *, seed: int = 7) -> MachineConfig:
    """A KSR-1 with timer interrupts off (deterministic latencies)."""
    return MachineConfig.ksr1(
        n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
    )


def quiet_ksr2(n_cells: int = 64, *, seed: int = 7) -> MachineConfig:
    """A KSR-2 with timer interrupts off."""
    return MachineConfig.ksr2(
        n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
    )


@pytest.fixture
def ksr1_config() -> MachineConfig:
    """Quiet 4-cell KSR-1."""
    return quiet_ksr1()


@pytest.fixture
def ksr1_32_config() -> MachineConfig:
    """Quiet fully populated 32-cell KSR-1 ring."""
    return quiet_ksr1(32)


@pytest.fixture
def ksr2_config() -> MachineConfig:
    """Quiet two-ring 64-cell KSR-2."""
    return quiet_ksr2()


@pytest.fixture
def machine(ksr1_config):
    """A fresh quiet 4-cell machine."""
    from repro.machine.ksr import KsrMachine

    return KsrMachine(ksr1_config)
