"""Tests for the analytic ring-load model, including cross-validation
against the cycle-level slotted ring."""

import numpy as np
import pytest

from repro.machine.config import MachineConfig
from repro.ring.contention import RingLoadModel, effective_remote_latency
from repro.ring.slotted_ring import SlottedRing

RING = MachineConfig.ksr1(32).ring


class TestShape:
    def test_single_processor_base_latency(self):
        model = RingLoadModel(RING)
        assert model.effective_latency(1) == pytest.approx(RING.remote_latency_cycles)

    def test_monotone_in_processors(self):
        model = RingLoadModel(RING)
        lats = [model.effective_latency(p) for p in range(1, 33)]
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))

    def test_think_time_relieves_load(self):
        model = RingLoadModel(RING)
        assert model.effective_latency(32, think_cycles=2000) < model.effective_latency(
            32, think_cycles=0
        )

    def test_paper_anchor_8pct_at_32(self):
        """Section 3.1: ~8 % latency increase when all 32 processors
        stream distinct remote accesses."""
        model = RingLoadModel(RING)
        ratio = model.effective_latency(32) / RING.remote_latency_cycles
        assert 1.04 < ratio < 1.20

    def test_light_at_16(self):
        """Section 3.3.2: 'the network is not a bottleneck ... until
        about 16 processors'."""
        model = RingLoadModel(RING)
        ratio = model.effective_latency(16) / RING.remote_latency_cycles
        assert ratio < 1.06

    def test_saturation_flag(self):
        model = RingLoadModel(RING)
        assert not model.is_saturated(8)
        assert model.is_saturated(64)  # hypothetical overload

    def test_utilization_bounds(self):
        model = RingLoadModel(RING)
        for p in (1, 8, 32, 128):
            assert 0.0 <= model.utilization(p) <= 1.0

    def test_wrapper(self):
        assert effective_remote_latency(RING, 4) == RingLoadModel(RING).effective_latency(4)


class TestAgainstSlottedRing:
    """The closed form should track the cycle-level model within ~10 %
    for back-to-back remote readers."""

    @pytest.mark.parametrize("n_procs", [2, 8, 16, 24, 32])
    def test_latency_matches(self, n_procs):
        ring = SlottedRing(RING, np.random.default_rng(0))
        next_free = [0.0] * n_procs
        latencies = []
        subpage = 0
        for _ in range(1500):
            cell = int(np.argmin(next_free))
            grant = ring.transact(next_free[cell], subpage)
            subpage += 1
            latencies.append(grant.total_cycles)
            next_free[cell] = grant.completed_at
        measured = float(np.mean(latencies[300:]))
        predicted = RingLoadModel(RING).effective_latency(n_procs)
        assert predicted == pytest.approx(measured, rel=0.10)
