"""ArdRouter's explicit transaction table."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.machine.ksr import KsrMachine
from repro.ring.ard import ArdRouter, ArdTransaction, ArdTxnState
from repro.sim.process import Compute, Read, Write
from tests.conftest import quiet_ksr2


class TestLifecycle:
    def test_open_tables_a_pending_transaction(self):
        ard = ArdRouter(ring_index=0)
        txn = ard.open(subpage_id=7, src_ring=0, dst_ring=1, at=100.0)
        assert isinstance(txn, ArdTransaction)
        assert txn.state is ArdTxnState.PENDING
        assert txn.resolved_at is None
        assert ard.outstanding == 1
        assert ard.pending_transactions() == [txn]

    def test_txn_ids_are_sequential(self):
        ard = ArdRouter(ring_index=0)
        a = ard.open(1, 0, 1, at=0.0)
        b = ard.open(2, 0, 1, at=1.0)
        assert (a.txn_id, b.txn_id) == (0, 1)

    def test_complete_resolves_and_counts(self):
        ard = ArdRouter(ring_index=0)
        txn = ard.open(7, 0, 1, at=100.0)
        ard.complete(txn, at=250.0)
        assert txn.state is ArdTxnState.COMPLETED
        assert txn.resolved_at == 250.0
        assert ard.outstanding == 0
        assert (ard.n_opened, ard.n_completed, ard.n_timed_out) == (1, 1, 0)

    def test_timeout_resolves_and_counts(self):
        ard = ArdRouter(ring_index=0)
        txn = ard.open(7, 0, 1, at=100.0)
        ard.timeout(txn, at=900.0)
        assert txn.state is ArdTxnState.TIMED_OUT
        assert (ard.n_opened, ard.n_completed, ard.n_timed_out) == (1, 0, 1)

    def test_pending_transactions_oldest_first(self):
        ard = ArdRouter(ring_index=0)
        txns = [ard.open(i, 0, 1, at=float(i)) for i in range(3)]
        ard.complete(txns[1], at=10.0)
        assert ard.pending_transactions() == [txns[0], txns[2]]


class TestDoubleResolution:
    def test_completing_twice_raises_naming_the_txn(self):
        ard = ArdRouter(ring_index=0)
        txn = ard.open(7, 0, 1, at=100.0)
        ard.complete(txn, at=250.0)
        with pytest.raises(SimulationError, match=rf"txn #{txn.txn_id}.*completed"):
            ard.complete(txn, at=300.0)

    def test_timeout_after_complete_raises(self):
        ard = ArdRouter(ring_index=0)
        txn = ard.open(7, 0, 1, at=100.0)
        ard.complete(txn, at=250.0)
        with pytest.raises(SimulationError, match="resolved twice"):
            ard.timeout(txn, at=300.0)

    def test_foreign_transaction_rejected(self):
        ard_a = ArdRouter(ring_index=0)
        ard_b = ArdRouter(ring_index=1)
        txn = ard_a.open(7, 0, 1, at=100.0)
        with pytest.raises(SimulationError, match="not tabled"):
            ard_b.complete(txn, at=250.0)


class TestValidation:
    def test_negative_crossing_cost_rejected(self):
        with pytest.raises(ValueError):
            ArdRouter(ring_index=0, crossing_cycles=-1.0)


class TestInSimulation:
    def test_cross_ring_traffic_opens_and_resolves_transactions(self):
        # KSR-2: cells 0 and 33 live on different leaf rings, so their
        # shared addresses force inter-ring paths through the ARDs.
        machine = KsrMachine(quiet_ksr2(64))

        def worker():
            for i in range(20):
                yield Read(i * 128)
                yield Write(i * 128, i)
                yield Compute(20)

        machine.spawn("a", worker(), cell_id=0)
        machine.spawn("b", worker(), cell_id=33)
        machine.run()
        opened = sum(a.n_opened for a in machine.hierarchy.ards)
        resolved = sum(a.n_completed + a.n_timed_out for a in machine.hierarchy.ards)
        assert opened > 0
        assert resolved == opened
        assert all(a.outstanding == 0 for a in machine.hierarchy.ards)
