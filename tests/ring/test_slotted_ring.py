"""Tests for the slotted pipelined ring model."""

import numpy as np
import pytest

from repro.machine.config import MachineConfig
from repro.ring.slotted_ring import SlottedRing


def make_ring(seed=0):
    return SlottedRing(MachineConfig.ksr1(32).ring, np.random.default_rng(seed))


class TestGeometry:
    def test_published_remote_latency(self):
        cfg = MachineConfig.ksr1(32).ring
        assert cfg.remote_latency_cycles == pytest.approx(175.0)
        assert cfg.total_slots == 24
        assert cfg.n_subrings == 2
        assert cfg.slots_per_subring == 12

    def test_address_interleaving(self):
        ring = make_ring()
        assert ring.subring_of(0) != ring.subring_of(1)
        assert ring.subring_of(0) == ring.subring_of(2)


class TestUncontended:
    def test_single_transaction_near_published_latency(self):
        ring = make_ring()
        grant = ring.transact(0.0, subpage_id=4)
        # latency = jitter (< slot spacing) + circuit + overhead
        assert 175.0 <= grant.total_cycles <= 175.0 + ring.config.slot_spacing_cycles
        assert grant.wait_cycles < ring.config.slot_spacing_cycles

    def test_responder_position_irrelevant(self):
        """Unidirectional ring: one circuit regardless of distance —
        the transact API doesn't even take a distance."""
        ring = make_ring()
        a = ring.transact(0.0, 0)
        b = ring.transact(1000.0, 2)
        assert a.total_cycles == pytest.approx(b.total_cycles, abs=ring.config.slot_spacing_cycles)

    def test_custom_overhead(self):
        ring = make_ring()
        grant = ring.transact(0.0, 0, overhead_cycles=0.0)
        assert grant.completed_at - grant.injected_at == pytest.approx(
            ring.config.circuit_cycles
        )


class TestContention:
    def test_light_load_no_queueing(self):
        ring = make_ring()
        for i in range(6):
            grant = ring.transact(float(i * 500), subpage_id=2 * i)
            assert grant.wait_cycles < ring.config.slot_spacing_cycles

    def test_oversubscription_queues(self):
        """More simultaneous transactions than slots on one sub-ring
        must wait for slot turnover."""
        ring = make_ring()
        grants = [ring.transact(0.0, subpage_id=2 * i) for i in range(20)]
        waits = [g.wait_cycles for g in grants]
        assert max(waits) > ring.config.circuit_cycles * 0.5
        assert ring.mean_wait_cycles > 0

    def test_subrings_independent(self):
        ring = make_ring()
        # saturate sub-ring 0
        for i in range(12):
            ring.transact(0.0, subpage_id=0)
        # sub-ring 1 still uncontended
        grant = ring.transact(0.0, subpage_id=1)
        assert grant.wait_cycles < ring.config.slot_spacing_cycles

    def test_full_population_latency_increase_is_moderate(self):
        """The paper: ~8 % latency growth with 32 processors doing
        back-to-back distinct remote accesses."""
        ring = make_ring()
        base = ring.config.remote_latency_cycles
        # steady state: 32 cells re-issuing immediately on completion
        next_free = [0.0] * 32
        latencies = []
        subpage = 0
        for _ in range(2000):
            cell = int(np.argmin(next_free))
            now = next_free[cell]
            grant = ring.transact(now, subpage)
            subpage += 1
            latencies.append(grant.total_cycles)
            next_free[cell] = grant.completed_at
        steady = float(np.mean(latencies[500:]))
        assert 1.0 < steady / base < 1.25


class TestHeapEquivalence:
    """The O(log slots) grant heap must be bit-for-bit equivalent to
    the linear earliest-free-slot scan it replaced."""

    class _ReferenceRing:
        """The pre-heap algorithm: min() scan over a free-time list,
        one uniform jitter draw per transaction."""

        def __init__(self, config, rng):
            self.config = config
            self.rng = rng
            self._free = [
                [0.0] * config.slots_per_subring for _ in range(config.n_subrings)
            ]

        def transact(self, now, subpage_id, *, overhead_cycles=None):
            cfg = self.config
            if overhead_cycles is None:
                overhead_cycles = cfg.protocol_overhead_cycles
            subring = subpage_id % cfg.n_subrings
            free = self._free[subring]
            earliest = now + float(self.rng.uniform(0.0, cfg.slot_spacing_cycles))
            slot = min(range(len(free)), key=free.__getitem__)
            injected = max(earliest, free[slot])
            free[slot] = injected + cfg.slot_hold_cycles
            completed = injected + cfg.circuit_cycles + overhead_cycles
            return (injected, completed, subring)

    def test_grant_sequence_matches_linear_scan_reference(self):
        cfg = MachineConfig.ksr1(32).ring
        ring = SlottedRing(cfg, np.random.default_rng(42))
        ref = self._ReferenceRing(cfg, np.random.default_rng(42))
        rng = np.random.default_rng(7)  # workload shape, not ring jitter
        now = 0.0
        for i in range(3000):
            now += float(rng.integers(0, 40))
            subpage = int(rng.integers(0, 64))
            overhead = 0.0 if i % 5 == 0 else None
            got = ring.transact(now, subpage, overhead_cycles=overhead)
            want = ref.transact(now, subpage, overhead_cycles=overhead)
            assert (got.injected_at, got.completed_at, got.subring) == want

    def test_batched_jitter_consumes_identical_stream(self):
        """uniform(0, s, size=N) must yield the same values as N single
        uniform(0, s) draws — the batching optimisation depends on it."""
        a = np.random.default_rng(11).uniform(0.0, 3.5, size=600)
        gen = np.random.default_rng(11)
        b = [gen.uniform(0.0, 3.5) for _ in range(600)]
        assert a.tolist() == b


class TestAccounting:
    def test_counters(self):
        ring = make_ring()
        ring.transact(0.0, 0)
        ring.transact(0.0, 1)
        assert ring.n_transactions == 2
        assert ring.total_transit_cycles > 0

    def test_utilization_bounds(self):
        ring = make_ring()
        for i in range(10):
            ring.transact(0.0, i)
        u = ring.utilization(horizon=1000.0)
        assert 0.0 < u <= 1.0
        assert ring.utilization(0) == 0.0

    def test_piggyback_window(self):
        ring = make_ring()
        grant = ring.transact(0.0, 0)
        lo, hi = ring.piggyback_window(grant)
        assert lo == grant.injected_at and hi == grant.completed_at
