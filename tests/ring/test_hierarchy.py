"""Tests for the two-level ring hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.ring.hierarchy import RingHierarchy
from repro.util.rng import SeedStream
from tests.conftest import quiet_ksr1, quiet_ksr2


def make_hierarchy(config):
    return RingHierarchy(config, SeedStream(config.seed))


class TestTopology:
    def test_single_ring_machine(self):
        h = make_hierarchy(quiet_ksr1(32))
        assert len(h.leaf_rings) == 1

    def test_two_ring_machine(self):
        h = make_hierarchy(quiet_ksr2(64))
        assert len(h.leaf_rings) == 2
        assert h.ring_of(0) == 0
        assert h.ring_of(32) == 1

    def test_level1_has_more_bandwidth(self):
        h = make_hierarchy(quiet_ksr2(64))
        assert h.level1.config.total_slots > h.leaf_rings[0].config.total_slots

    def test_validate_cells(self):
        h = make_hierarchy(quiet_ksr1(4))
        h.validate_cells(0, 3)
        with pytest.raises(ConfigError):
            h.validate_cells(4)


class TestSameRingTransactions:
    def test_same_ring_single_leg(self):
        h = make_hierarchy(quiet_ksr1(32))
        t = h.transact(0.0, src_cell=0, dst_cell=31, subpage_id=0)
        assert not t.crossed_rings
        assert len(t.legs) == 1
        assert t.total_cycles >= h.config.ring.remote_latency_cycles

    def test_dst_none_stays_local(self):
        h = make_hierarchy(quiet_ksr1(32))
        t = h.transact(0.0, src_cell=5, dst_cell=None, subpage_id=0)
        assert not t.crossed_rings


class TestCrossRingTransactions:
    def test_cross_ring_three_legs(self):
        h = make_hierarchy(quiet_ksr2(64))
        t = h.transact(0.0, src_cell=0, dst_cell=40, subpage_id=0)
        assert t.crossed_rings
        assert len(t.legs) == 3

    def test_cross_ring_latency_jump(self):
        """The paper's 'sudden jump' when crossing the level-1 ring."""
        h = make_hierarchy(quiet_ksr2(64))
        same = h.transact(0.0, 0, 31, 0).total_cycles
        cross = h.transact(0.0, 0, 40, 2).total_cycles
        assert cross > same * 2

    def test_uncontended_latency_matches_transact(self):
        h = make_hierarchy(quiet_ksr2(64))
        analytic = h.uncontended_latency(0, 40)
        timing = h.transact(0.0, 0, 40, 0)
        # transact adds only slot-alignment jitter on each leg
        jitter_bound = 3 * h.config.ring.slot_spacing_cycles
        assert timing.total_cycles == pytest.approx(analytic, abs=jitter_bound)

    def test_uncontended_same_ring_is_published_latency(self):
        h = make_hierarchy(quiet_ksr1(32))
        assert h.uncontended_latency(0, 5) == pytest.approx(175.0)


class TestAccounting:
    def test_transaction_counter_spans_rings(self):
        h = make_hierarchy(quiet_ksr2(64))
        h.transact(0.0, 0, 40, 0)
        assert h.n_transactions == 3
