"""Scheduler: lifecycle, admission control, coalescing, determinism."""

from __future__ import annotations

import threading

import pytest

from repro.experiments.locks import run_figure3
from repro.service.backends import InlineBackend
from repro.service.cache2 import ShardedResultCache
from repro.service.jobs import JobSpec, ServiceError
from repro.service.scheduler import RejectedError, Scheduler


def make_scheduler(tmp_path, **kwargs):
    cache = ShardedResultCache(tmp_path / "cache")
    kwargs.setdefault("workers", 1)
    return Scheduler(InlineBackend(), cache, **kwargs)


def point_spec(**params) -> JobSpec:
    return JobSpec.from_request({"kind": "point", "params": params})


class TestLifecycle:
    def test_point_job_completes(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            job = scheduler.submit(point_spec(n_procs=2, ops=3))
            assert job.wait(120)
            assert job.status == "done"
            assert job.payload is not None and job.payload["seconds"] > 0
            assert job.cache["misses"] == 1 and job.cache["hits"] == 0
        finally:
            scheduler.close()

    def test_resubmit_served_from_cache(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            first = scheduler.submit(point_spec(n_procs=2, ops=3))
            assert first.wait(120)
            second = scheduler.submit(point_spec(n_procs=2, ops=3))
            assert second.wait(120)
            assert second.payload == first.payload
            assert second.cache["hits"] == 1 and second.cache["misses"] == 0
        finally:
            scheduler.close()

    def test_failed_job_reports_error(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            # dead-simple failure: a lock kind the point fn rejects at
            # run time is impossible (validated at parse), so drive a
            # genuine runtime error through an invalid machine size
            job = scheduler.submit(point_spec(n_procs=0, ops=3))
            assert job.wait(120)
            assert job.status == "failed"
            assert job.error
        finally:
            scheduler.close()

    def test_experiment_payload_matches_direct_run(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            spec = JobSpec.from_request({
                "kind": "experiment", "experiment": "fig3",
                "params": {"procs": [2], "ops": 3},
            })
            job = scheduler.submit(spec)
            assert job.wait(300)
            assert job.status == "done"
            direct = run_figure3(proc_counts=[2], ops=3)
            assert job.payload["rendered"] == direct.render()
            assert job.payload["rows"] == direct.rows
        finally:
            scheduler.close()

    def test_obs_request_carries_capture_summaries(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            spec = JobSpec.from_request(
                {"kind": "point", "params": {"n_procs": 2, "ops": 3}, "obs": True}
            )
            job = scheduler.submit(spec)
            assert job.wait(120)
            assert job.status == "done"
            assert len(job.obs) == 1
            summary = job.obs[0]
            assert summary["n_cells"] >= 2
            assert "ring_transactions" in summary["totals"]
        finally:
            scheduler.close()


def _gate_execute(monkeypatch, gate: threading.Event):
    """Make any job with ops=999 park until ``gate`` is set."""
    original = JobSpec.execute

    def execute(self, runner):
        if self.param_dict().get("ops") == 999:
            gate.wait(120)
            return {"blocked": True}
        return original(self, runner)

    monkeypatch.setattr(JobSpec, "execute", execute)


class TestAdmission:
    def test_queue_full_rejects_with_retry_after(self, tmp_path, monkeypatch):
        scheduler = make_scheduler(tmp_path, queue_cap=1)
        gate = threading.Event()
        _gate_execute(monkeypatch, gate)
        try:
            blocked = scheduler.submit(point_spec(ops=999))  # parks the worker
            with pytest.raises(RejectedError) as err:
                scheduler.submit(point_spec(ops=4))
            assert err.value.status == 429
            assert err.value.retry_after >= 1.0
            assert scheduler.rejected == 1
            gate.set()
            assert blocked.wait(120)
        finally:
            gate.set()
            scheduler.close()

    def test_oversized_job_refused_up_front(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_points=5)
        try:
            spec = JobSpec.from_request({
                "kind": "campaign",
                "params": {"procs": [2, 4, 8], "rates": [0.0, 1e-5, 1e-4]},
            })
            with pytest.raises(ServiceError) as err:
                scheduler.submit(spec)
            assert err.value.status == 413
        finally:
            scheduler.close()

    def test_identical_concurrent_submissions_coalesce(self, tmp_path, monkeypatch):
        scheduler = make_scheduler(tmp_path, queue_cap=4)
        gate = threading.Event()
        _gate_execute(monkeypatch, gate)
        try:
            first = scheduler.submit(point_spec(ops=999))
            second = scheduler.submit(point_spec(ops=999))
            assert second is first, "identical in-flight spec must coalesce"
            assert scheduler.stats()["coalesced"] == 1
            gate.set()
            assert first.wait(120) and first.status == "done"
        finally:
            gate.set()
            scheduler.close()

    def test_distinct_specs_do_not_coalesce(self, tmp_path):
        scheduler = make_scheduler(tmp_path, queue_cap=4)
        try:
            a = scheduler.submit(point_spec(ops=3))
            b = scheduler.submit(point_spec(ops=4))
            assert b is not a
            assert a.wait(120) and b.wait(120)
        finally:
            scheduler.close()


class TestConcurrentAdmission:
    """Many threads slam the scheduler with identical specs at once."""

    def test_identical_specs_from_many_threads_coalesce_to_one_job(
        self, tmp_path, monkeypatch
    ):
        scheduler = make_scheduler(tmp_path, queue_cap=4)
        gate = threading.Event()
        _gate_execute(monkeypatch, gate)
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        jobs: list = [None] * n_threads

        def slam(index: int) -> None:
            barrier.wait(timeout=30)
            jobs[index] = scheduler.submit(point_spec(ops=999))

        try:
            threads = [
                threading.Thread(target=slam, args=(i,)) for i in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            # every submitter holds the SAME in-flight job object
            assert all(job is jobs[0] for job in jobs)
            assert scheduler.stats()["coalesced"] == n_threads - 1
            assert scheduler.stats()["submitted"] == n_threads
            gate.set()
            assert jobs[0].wait(120) and jobs[0].status == "done"
            # one execution, observed by everyone
            assert scheduler.stats()["completed"] == 1
        finally:
            gate.set()
            scheduler.close()

    def test_concurrent_overflow_rejections_price_retry_after(
        self, tmp_path, monkeypatch
    ):
        scheduler = make_scheduler(tmp_path, queue_cap=2)
        gate = threading.Event()
        _gate_execute(monkeypatch, gate)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes: list = [None] * n_threads

        def slam(index: int) -> None:
            barrier.wait(timeout=30)
            try:
                # distinct specs: no coalescing, pure queue pressure
                outcomes[index] = scheduler.submit(point_spec(ops=999, seed=index))
            except RejectedError as exc:
                outcomes[index] = exc

        try:
            # ops=999 parks the single worker, so accepted jobs pile up
            threads = [
                threading.Thread(target=slam, args=(i,)) for i in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            rejections = [o for o in outcomes if isinstance(o, RejectedError)]
            accepted = [o for o in outcomes if not isinstance(o, RejectedError)]
            assert len(accepted) == 2, "accepted set must respect queue_cap"
            assert len(rejections) == n_threads - 2
            for rejection in rejections:
                assert rejection.status == 429
                assert rejection.retry_after >= 1.0
            assert scheduler.rejected == len(rejections)
            gate.set()
            for job in accepted:
                assert job.wait(120)
        finally:
            gate.set()
            scheduler.close()


class TestGracefulClose:
    def test_close_drains_accepted_jobs_and_reports_zero_stranded(self, tmp_path):
        scheduler = make_scheduler(tmp_path, queue_cap=8)
        jobs = [scheduler.submit(point_spec(ops=3, seed=i)) for i in range(4)]
        stranded = scheduler.close(deadline=120)
        assert stranded == 0
        assert all(job.status == "done" for job in jobs)
        assert scheduler.stats()["stranded"] == 0

    def test_close_is_idempotent(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        assert scheduler.close() == 0
        assert scheduler.close() == 0


class TestStats:
    def test_stats_counters(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        try:
            job = scheduler.submit(point_spec(ops=3))
            assert job.wait(120)
            stats = scheduler.stats()
            assert stats["submitted"] == 1
            assert stats["completed"] == 1
            assert stats["backend"] == "inline"
        finally:
            scheduler.close()
