"""Consistent-hash ring: determinism, balance, resize stability."""

from __future__ import annotations

import pytest

from repro.service.fleet.ring import DEFAULT_VNODES, HashRing

WORKERS = [f"worker-{i}" for i in range(4)]
KEYS = [f"key-{i:05d}" for i in range(4000)]


class TestLookup:
    def test_owner_is_deterministic_across_instances(self):
        a = HashRing(WORKERS)
        b = HashRing(reversed(WORKERS))  # construction order must not matter
        for key in KEYS[:200]:
            assert a.owner(key) == b.owner(key)

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.owner("anything")
        with pytest.raises(LookupError):
            ring.replicas("anything", 2)

    def test_membership_protocol(self):
        ring = HashRing(WORKERS)
        assert len(ring) == 4
        assert "worker-0" in ring and "worker-9" not in ring
        assert ring.nodes() == sorted(WORKERS)
        ring.add("worker-0")  # idempotent
        ring.remove("worker-9")  # absent: no-op
        assert len(ring) == 4

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(WORKERS, vnodes=0)


class TestBalance:
    def test_keys_spread_over_all_workers(self):
        ring = HashRing(WORKERS, vnodes=DEFAULT_VNODES)
        counts = {w: 0 for w in WORKERS}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        shares = [c / len(KEYS) for c in counts.values()]
        # 64 vnodes keeps a 4-worker fleet within loose bounds of 1/4.
        assert min(shares) > 0.10
        assert max(shares) < 0.45


class TestResizeStability:
    def test_removal_only_moves_the_dead_workers_keys(self):
        ring = HashRing(WORKERS)
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("worker-2")
        for key, old_owner in before.items():
            new_owner = ring.owner(key)
            if old_owner != "worker-2":
                assert new_owner == old_owner, "surviving keys must not move"
            else:
                assert new_owner != "worker-2"

    def test_addition_only_pulls_keys_to_the_new_worker(self):
        ring = HashRing(WORKERS)
        before = {key: ring.owner(key) for key in KEYS}
        ring.add("worker-new")
        moved = 0
        for key, old_owner in before.items():
            new_owner = ring.owner(key)
            if new_owner != old_owner:
                assert new_owner == "worker-new"
                moved += 1
        # ~K/(N+1) of the keyspace moves, nothing close to a reshuffle.
        assert 0 < moved < len(KEYS) // 2


class TestReplicas:
    def test_owner_first_distinct_and_capped(self):
        ring = HashRing(WORKERS)
        for key in KEYS[:100]:
            replicas = ring.replicas(key, 3)
            assert replicas[0] == ring.owner(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
        assert len(ring.replicas("k", 99)) == len(WORKERS)

    def test_successors_exclude_self_and_cap(self):
        ring = HashRing(WORKERS)
        successors = ring.successors("worker-0", 2)
        assert len(successors) == 2
        assert "worker-0" not in successors
        assert len(set(successors)) == 2
        assert ring.successors("worker-0", 99) == ring.successors("worker-0", 3)
        with pytest.raises(LookupError):
            ring.successors("not-a-member", 1)

    def test_single_worker_has_no_successors(self):
        ring = HashRing(["only"])
        assert ring.successors("only", 2) == []
        assert ring.replicas("k", 3) == ["only"]
