"""Batching policy: slicing, admission pricing, coalescing."""

from __future__ import annotations

import pytest

from repro.service.batching import JobTable, estimate_points, split_batches
from repro.service.jobs import JobSpec


def spec(body: dict) -> JobSpec:
    return JobSpec.from_request(body)


class TestSplitBatches:
    def test_splits_in_order(self):
        batches = list(split_batches(list(range(7)), 3))
        assert batches == [[0, 1, 2], [3, 4, 5], [6]]

    def test_exact_multiple(self):
        assert list(split_batches([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_empty(self):
        assert list(split_batches([], 4)) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(split_batches([1], 0))


class TestEstimatePoints:
    def test_point_is_one(self):
        assert estimate_points(spec({"kind": "point"})) == 1

    def test_campaign_is_grid_size(self):
        s = spec({"kind": "campaign",
                  "params": {"procs": [2, 4, 8], "rates": [0.0, 1e-4]}})
        assert estimate_points(s) == 6

    def test_experiment_scales_with_procs(self):
        small = spec({"kind": "experiment", "experiment": "fig3",
                      "params": {"procs": [2]}})
        big = spec({"kind": "experiment", "experiment": "fig3",
                    "params": {"procs": [2, 4, 8]}})
        assert estimate_points(big) == 3 * estimate_points(small)


class TestJobTable:
    def test_claim_then_coalesce(self):
        table = JobTable()
        assert table.claim("k", "job-a") is None
        assert table.claim("k", "job-b") == "job-a"
        assert table.coalesced == 1
        assert table.inflight_count() == 1

    def test_release_allows_fresh_claim(self):
        table = JobTable()
        table.claim("k", "job-a")
        table.release("k")
        assert table.claim("k", "job-b") is None

    def test_distinct_specs_independent(self):
        table = JobTable()
        assert table.claim("k1", "a") is None
        assert table.claim("k2", "b") is None
        assert table.inflight_count() == 2


class TestJobSpecCanonical:
    def test_identical_requests_identical_canonical(self):
        a = spec({"kind": "experiment", "experiment": "fig3",
                  "params": {"ops": 5, "procs": [2, 8]}})
        b = spec({"kind": "experiment", "experiment": "fig3",
                  "params": {"procs": [2, 8], "ops": 5}})
        assert a.canonical() == b.canonical()

    def test_defaults_make_sparse_and_full_requests_equal(self):
        sparse = spec({"kind": "point"})
        full = spec({"kind": "point",
                     "params": {"lock": "rw", "n_procs": 8, "read_fraction": 0.0,
                                "ops": 10, "seed": 303, "fault_rate": 0.0}})
        assert sparse.canonical() == full.canonical()

    def test_obs_flag_changes_identity(self):
        assert spec({"kind": "point"}).canonical() != \
            spec({"kind": "point", "obs": True}).canonical()

    def test_param_change_changes_identity(self):
        a = spec({"kind": "point", "params": {"ops": 10}})
        b = spec({"kind": "point", "params": {"ops": 11}})
        assert a.canonical() != b.canonical()
