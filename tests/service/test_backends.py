"""Execution backends: equivalence, persistence, registry, harvesting."""

from __future__ import annotations

import pytest

from repro.experiments.locks import measure_lock
from repro.experiments.sweep import SweepRunner
from repro.obs import ObsSpec
from repro.service.backends import (
    BackendSweepRunner,
    InlineBackend,
    ProcessPoolBackend,
    harvest_captures,
    make_backend,
    register_backend,
)
from repro.service.cache2 import ShardedResultCache

from tests.experiments.test_sweep import square


class TestBackends:
    def test_inline_matches_process(self):
        calls = [dict(x=i) for i in range(5)]
        inline = InlineBackend().map(square, calls)
        pool = ProcessPoolBackend(jobs=2)
        try:
            assert pool.map(square, calls) == inline == [0, 1, 4, 9, 16]
        finally:
            pool.close()

    def test_process_pool_persists_across_maps(self):
        pool = ProcessPoolBackend(jobs=2)
        try:
            pool.map(square, [dict(x=1), dict(x=2)])
            first = pool._pool
            pool.map(square, [dict(x=3), dict(x=4)])
            assert pool._pool is first, "pool must be reused, not rebuilt"
        finally:
            pool.close()

    def test_single_call_stays_in_process(self):
        pool = ProcessPoolBackend(jobs=2)
        try:
            assert pool.map(square, [dict(x=7)]) == [49]
            assert pool._pool is None, "no pool spawned for one point"
        finally:
            pool.close()

    def test_simulation_point_bit_identical(self):
        calls = [
            dict(kind="hardware", n_procs=p, read_fraction=0.0, ops=5, seed=303)
            for p in (2, 4)
        ]
        pool = ProcessPoolBackend(jobs=2)
        try:
            assert pool.map(measure_lock, calls) == InlineBackend().map(measure_lock, calls)
        finally:
            pool.close()


class TestRegistry:
    def test_make_backend_specs(self):
        assert make_backend("inline").name == "inline"
        backend = make_backend("process:3")
        assert backend.jobs == 3
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_register_backend_is_pluggable(self):
        class Fake(InlineBackend):
            name = "fake"

        register_backend("fake", lambda jobs: Fake())
        try:
            assert make_backend("fake").name == "fake"
        finally:
            from repro.service import backends

            del backends._REGISTRY["fake"]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)


class TestBackendSweepRunner:
    def test_matches_plain_runner_with_cache(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        runner = BackendSweepRunner(InlineBackend(), cache=cache)
        calls = [dict(x=i) for i in range(4)]
        assert runner.map(square, calls) == SweepRunner().map(square, calls)
        assert cache.misses == 4
        assert runner.map(square, calls) == [0, 1, 4, 9]
        assert cache.hits == 4

    def test_max_batch_slices_execution(self):
        seen = []

        class Recording(InlineBackend):
            def map(self, func, calls):
                seen.append(len(calls))
                return super().map(func, calls)

        runner = BackendSweepRunner(Recording(), max_batch=2)
        runner.map(square, [dict(x=i) for i in range(5)])
        assert seen == [2, 2, 1]

    def test_harvests_captures_from_tuples(self):
        runner = BackendSweepRunner(InlineBackend())
        calls = [
            dict(kind="hardware", n_procs=2, read_fraction=0.0, ops=3,
                 seed=303, obs=ObsSpec())
        ]
        values = runner.map(measure_lock, calls)
        assert isinstance(values[0], tuple)
        assert len(runner.captures) == 1
        assert runner.captures[0].n_cells >= 2

    def test_harvest_ignores_plain_values(self):
        assert harvest_captures([1.0, (2.0, "x"), None]) == []
