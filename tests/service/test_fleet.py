"""Federated fleet, end to end: routing, handoff, replication, tenancy.

Every test runs a real coordinator + worker fleet on loopback sockets
(:class:`LocalFleet`), so the wire protocol, the consistent-hash
routing, the read-through and the replication paths are exercised
exactly as they would be across machines.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service.fleet import LocalFleet, TenantPolicy


def get(base: str, path: str, token: str | None = None) -> tuple[int, dict]:
    headers = {"X-Fleet-Token": token} if token else {}
    request = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def post(base: str, body: dict, timeout: float = 600.0) -> tuple[int, dict, dict]:
    request = urllib.request.Request(
        base + "/v1/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture
def fleet(tmp_path):
    """3 workers + coordinator, heartbeat off (tests drive health directly)."""
    with LocalFleet(tmp_path / "fleet", n_workers=3, heartbeat_interval=None) as lf:
        yield lf


FIG2 = {
    "kind": "experiment",
    "experiment": "fig2",
    "params": {"procs": [1, 2], "samples": 50},
    "wait": True,
}


class TestEndpoints:
    def test_coordinator_healthz(self, fleet):
        status, doc = get(fleet.base_url, "/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["role"] == "coordinator"
        assert doc["fleet"]["workers"] == 3
        assert sorted(doc["fleet"]["alive"]) == ["worker-0", "worker-1", "worker-2"]
        assert doc["version"]["code"] and doc["version"]["model"]

    def test_stats_and_workers_surfaces(self, fleet):
        status, doc = get(fleet.base_url, "/v1/stats")
        assert status == 200
        assert doc["scheduler"]["backend"] == "fleet"
        assert doc["fleet"]["replication"] == 2
        status, doc = get(fleet.base_url, "/v1/fleet/workers",
                          token=fleet.auth.secret)
        assert status == 200
        assert set(doc["workers"]) == {"worker-0", "worker-1", "worker-2"}

    def test_catalog_matches_single_daemon(self, fleet):
        status, doc = get(fleet.base_url, "/v1/experiments")
        assert status == 200
        assert set(doc["experiments"]) == {"fig2", "fig3", "fig4", "fig5"}

    def test_tenant_must_be_a_string(self, fleet):
        status, doc, _ = post(
            fleet.base_url,
            {"kind": "point", "params": {"ops": 3}, "tenant": 123},
        )
        assert status == 400 and "tenant" in doc["error"]


class TestAcceptance:
    """The ISSUE's fleet acceptance bar, end to end over real HTTP."""

    def test_fig2_byte_identical_and_resubmit_cache_served(self, fleet):
        from repro.experiments.latency import run_figure2

        status, first, _ = post(fleet.base_url, FIG2)
        assert status == 200 and first["status"] == "done"
        direct = run_figure2(proc_counts=[1, 2], samples=50)
        assert first["result"]["rendered"] == direct.render()
        assert first["result"]["rows"] == direct.rows

        status, second, _ = post(fleet.base_url, FIG2)
        assert status == 200 and second["status"] == "done"
        assert json.dumps(second["result"], sort_keys=True) == json.dumps(
            first["result"], sort_keys=True
        )
        stats = second["cache"]
        lookups = stats["hits"] + stats["misses"]
        assert lookups > 0
        assert stats["hits"] / lookups >= 0.95
        assert stats["fleet"] is True

    def test_points_spread_over_shards(self, fleet):
        status, doc, _ = post(fleet.base_url, FIG2)
        assert status == 200 and doc["status"] == "done"
        populated = [
            wid for wid in fleet.workers
            if fleet.worker_app(wid).cache.entry_count() > 0
        ]
        assert len(populated) >= 2, "routing should shard points, not pile them up"

    def test_worker_death_mid_campaign_hands_off_and_completes(self, tmp_path):
        campaign = {
            "kind": "campaign",
            "params": {"procs": [2, 3], "rates": [0.0, 1e-5, 1e-4], "ops": 3},
            "wait": True,
        }
        # Reference pass on a healthy fleet; note which shards own points.
        with LocalFleet(tmp_path / "a", n_workers=3, heartbeat_interval=None) as healthy:
            status, reference, _ = post(healthy.base_url, campaign)
            assert status == 200 and reference["status"] == "done"
            victim = next(
                wid for wid in healthy.workers
                if healthy.worker_app(wid).cache.entry_count() > 0
            )
        # Same worker ids => same ring placement: killing `victim` is
        # guaranteed to orphan at least one of the campaign's points.
        with LocalFleet(tmp_path / "b", n_workers=3, heartbeat_interval=None) as lf:
            lf.kill_worker(victim)
            status, doc, _ = post(lf.base_url, campaign)
            assert status == 200 and doc["status"] == "done", "no job may be lost"
            assert json.dumps(doc["result"], sort_keys=True) == json.dumps(
                reference["result"], sort_keys=True
            )
            assert lf.client.handoffs >= 1
            status, workers = get(lf.base_url, "/v1/fleet/workers",
                                  token=lf.auth.secret)
            assert victim not in workers["alive"]

    def test_replication_then_owner_death_still_serves_from_cache(self, fleet):
        body = {"kind": "point", "params": {"ops": 3, "n_procs": 2}, "wait": True}
        status, first, _ = post(fleet.base_url, body)
        assert status == 200 and first["status"] == "done"
        assert first["cache"]["misses"] == 1
        for wid in fleet.workers:
            fleet.worker_app(wid).join_replication()
        holders = [
            wid for wid in fleet.workers
            if fleet.worker_app(wid).cache.entry_count() > 0
        ]
        # replication=2: the computed point lives on its owner plus one
        # ring successor, pushed off the request path.
        assert len(holders) == 2
        assert sum(fleet.worker_app(w).replicated_out for w in fleet.workers) >= 1
        assert sum(fleet.worker_app(w).replicated_in for w in fleet.workers) >= 1
        # Kill one copy: the survivor answers, locally or via
        # read-through — never a recompute.
        fleet.kill_worker(holders[0])
        status, second, _ = post(fleet.base_url, body)
        assert status == 200 and second["status"] == "done"
        assert second["cache"]["hits"] == 1 and second["cache"]["misses"] == 0
        assert second["result"] == first["result"]


class TestTenancy:
    def test_quota_429_carries_retry_after(self, tmp_path):
        with LocalFleet(
            tmp_path / "fleet",
            n_workers=1,
            heartbeat_interval=None,
            policies={"limited": TenantPolicy(rate=0.01, burst=1)},
        ) as lf:
            ok = {"kind": "point", "params": {"ops": 3, "seed": 1},
                  "tenant": "limited", "wait": True}
            status, doc, _ = post(lf.base_url, ok)
            assert status == 200 and doc["status"] == "done"
            status, doc, headers = post(
                lf.base_url,
                {"kind": "point", "params": {"ops": 3, "seed": 2}, "tenant": "limited"},
            )
            assert status == 429
            assert doc["retry_after"] > 0
            assert int(headers["Retry-After"]) >= 1
            stats = get(lf.base_url, "/v1/stats")[1]["scheduler"]
            assert stats["rejected_quota"] == 1
            assert stats["tenants"]["limited"]["rejected_quota"] == 1

    def test_per_tenant_counters_in_stats(self, fleet):
        for tenant in ("alpha", "beta"):
            status, doc, _ = post(
                fleet.base_url,
                {"kind": "point", "params": {"ops": 3}, "tenant": tenant, "wait": True},
            )
            assert status == 200 and doc["status"] == "done"
        tenants = get(fleet.base_url, "/v1/stats")[1]["scheduler"]["tenants"]
        assert tenants["alpha"]["completed"] == 1
        assert tenants["beta"]["completed"] == 1


class TestDraining:
    def test_coordinator_drain_rejects_with_503(self, fleet):
        fleet.coordinator.begin_shutdown()
        status, doc, headers = post(
            fleet.base_url, {"kind": "point", "params": {"ops": 3}}
        )
        assert status == 503 and "draining" in doc["error"]
        assert headers.get("Retry-After")

    def test_draining_worker_is_excluded_by_health_check(self, fleet):
        assert fleet.client.check_health() == {
            "worker-0": True, "worker-1": True, "worker-2": True,
        }
        fleet.worker_app("worker-1").begin_shutdown()
        alive = fleet.client.check_health()
        assert alive["worker-1"] is False
        assert fleet.client.workers["worker-1"].reason == "draining"
        assert "worker-1" not in fleet.client.ring


class TestLoadgen:
    def test_small_burst_produces_a_report(self, fleet, tmp_path):
        from repro.service.fleet.loadgen import run_loadgen

        out = tmp_path / "BENCH_fleet.json"
        report = run_loadgen(
            fleet.base_url,
            clients=8,
            processes=2,
            duration_s=1.5,
            tenants=2,
            spec_space=4,
            ops=2,
            n_procs=2,
            timeout=60,
            out_path=str(out),
        )
        assert report["totals"]["completed"] > 0
        assert report["totals"]["throughput_jobs_per_s"] > 0
        assert 0.0 <= report["cache"]["served_fraction"] <= 1.0
        assert 0.0 < report["fairness"]["jain_index"] <= 1.0
        assert set(report["tenants"]) <= {"tenant-0", "tenant-1"}
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        on_disk = json.loads(out.read_text())
        assert on_disk["benchmark"] == "fleet-loadgen"
