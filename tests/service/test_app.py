"""End-to-end HTTP tests: a live ksr-serve instance on an ephemeral port."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.app import ServiceApp, make_server


@pytest.fixture
def served(tmp_path):
    """A running server (inline backend: tests stay single-process)."""
    app = ServiceApp(
        str(tmp_path / "cache"), backend="inline", workers=2, queue_cap=4
    )
    server = make_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, app
    server.shutdown()
    thread.join(timeout=10)
    app.close()


def get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def post(base: str, body: dict, timeout: float = 600.0) -> tuple[int, dict, dict]:
    request = urllib.request.Request(
        base + "/v1/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


class TestEndpoints:
    def test_healthz(self, served):
        base, _ = served
        status, doc = get(base, "/healthz")
        assert status == 200 and doc["status"] == "ok"

    def test_stats_shape(self, served):
        base, _ = served
        status, doc = get(base, "/v1/stats")
        assert status == 200
        assert "cache" in doc and "scheduler" in doc
        assert doc["cache"]["root"]

    def test_catalog_lists_experiments(self, served):
        base, _ = served
        status, doc = get(base, "/v1/experiments")
        assert status == 200
        assert set(doc["experiments"]) == {"fig2", "fig3", "fig4", "fig5"}
        assert "campaign" in doc and "point" in doc

    def test_unknown_endpoint_404(self, served):
        base, _ = served
        assert get(base, "/v1/nope")[0] == 404
        assert get(base, "/v1/jobs/job-999")[0] == 404

    def test_bad_json_400(self, served):
        base, _ = served
        request = urllib.request.Request(
            base + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

    def test_unknown_kind_400(self, served):
        base, _ = served
        status, doc, _ = post(base, {"kind": "teleport"})
        assert status == 400 and "unknown job kind" in doc["error"]


class TestStatusSurfaces:
    def test_healthz_reports_cache_and_version(self, served):
        base, app = served
        status, doc = get(base, "/healthz")
        assert status == 200
        cache = doc["cache"]
        assert cache["root"] == str(app.cache.root)
        for counter in ("entries", "shards", "evictions", "corrupt", "remote_hits"):
            assert counter in cache
        version = doc["version"]
        assert version["code"] and version["model"]

    def test_stats_carry_version(self, served):
        base, _ = served
        status, doc = get(base, "/v1/stats")
        assert status == 200
        assert doc["version"]["code"]
        assert doc["version"]["model"]


class TestGracefulShutdown:
    def test_draining_server_rejects_submissions_with_503(self, served):
        base, app = served
        app.begin_shutdown()
        status, doc = get(base, "/healthz")
        assert status == 200 and doc["status"] == "draining"
        status, doc, headers = post(base, {"kind": "point", "params": {"ops": 3}})
        assert status == 503
        assert "draining" in doc["error"]
        assert headers.get("Retry-After")

    def test_drain_retry_after_tracks_deadline(self, served):
        """Regression: the 503 Retry-After was a hardcoded 5 seconds.

        It must reflect the drain deadline actually remaining — a
        client told to come back in 5s against a 120s drain would just
        burn 24 rejected round-trips.
        """
        base, app = served
        app.begin_shutdown(drain_deadline=120)
        status, doc, headers = post(base, {"kind": "point", "params": {"ops": 3}})
        assert status == 503
        retry = int(headers["Retry-After"])
        assert 100 < retry <= 120, "must be derived from the real deadline"
        # begin_shutdown is latched: a later call cannot push it out
        app.begin_shutdown(drain_deadline=500)
        assert app.drain_retry_after() <= 120

    def test_drain_retry_after_floor_and_expiry(self):
        import time

        from repro.service.app import drain_retry_after

        assert drain_retry_after(None) == 1
        assert drain_retry_after(time.monotonic() - 10) == 1, "past deadline"
        assert drain_retry_after(time.monotonic() + 0.2) == 1, "floor is 1s"
        assert drain_retry_after(time.monotonic() + 4.2) in (4, 5)

    def test_close_drains_and_compacts(self, tmp_path):
        app = ServiceApp(str(tmp_path / "cache"), backend="inline", workers=2)
        from repro.service.jobs import JobSpec

        jobs = [
            app.scheduler.submit(
                JobSpec.from_request({"kind": "point", "params": {"ops": 3, "seed": i}})
            )
            for i in range(3)
        ]
        stranded = app.close(drain_deadline=120)
        assert stranded == 0
        assert all(job.status == "done" for job in jobs)
        assert app.closing


class TestJobs:
    def test_async_submit_then_poll(self, served):
        base, _ = served
        status, doc, _ = post(base, {"kind": "point", "params": {"ops": 3}})
        assert status == 202
        job_id = doc["job_id"]
        for _ in range(600):
            status, doc = get(base, f"/v1/jobs/{job_id}")
            if doc["status"] in ("done", "failed"):
                break
        assert doc["status"] == "done"
        assert doc["result"]["seconds"] > 0

    def test_wait_submit_completes_inline(self, served):
        base, _ = served
        status, doc, _ = post(
            base, {"kind": "point", "params": {"ops": 3}, "wait": True}
        )
        assert status == 200
        assert doc["status"] == "done"
        assert doc["cache"]["misses"] >= 1

    def test_campaign_over_http(self, served):
        base, _ = served
        body = {
            "kind": "campaign",
            "params": {"procs": [2], "rates": [0.0, 1e-4], "ops": 3},
            "wait": True,
        }
        status, doc, _ = post(base, body)
        assert status == 200 and doc["status"] == "done"
        points = doc["result"]["points"]
        assert len(points) == 2
        assert {p["fault_rate"] for p in points} == {0.0, 1e-4}

    def test_oversized_request_413(self, tmp_path):
        app = ServiceApp(str(tmp_path / "cache"), backend="inline", max_points=3)
        server = make_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, doc, _ = post(
                base,
                {"kind": "campaign",
                 "params": {"procs": [2, 4], "rates": [0.0, 1e-4]}},
            )
            assert status == 413 and "split the request" in doc["error"]
        finally:
            server.shutdown()
            thread.join(timeout=10)
            app.close()

    def test_overload_429_with_retry_after(self, tmp_path, monkeypatch):
        from repro.service.jobs import JobSpec

        gate = threading.Event()
        original = JobSpec.execute

        def execute(self, runner):
            if self.param_dict().get("ops") == 999:
                gate.wait(60)
                return {"blocked": True}
            return original(self, runner)

        monkeypatch.setattr(JobSpec, "execute", execute)
        app = ServiceApp(
            str(tmp_path / "cache"), backend="inline", workers=1, queue_cap=1
        )
        server = make_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            post(base, {"kind": "point", "params": {"ops": 999}})  # parks worker
            status, doc, headers = post(base, {"kind": "point", "params": {"ops": 4}})
            assert status == 429
            assert doc["retry_after"] >= 1.0
            assert int(headers["Retry-After"]) >= 1
        finally:
            gate.set()
            server.shutdown()
            thread.join(timeout=10)
            app.close()


class TestAcceptance:
    """The ISSUE's acceptance bar, end to end over real HTTP."""

    def test_fig2_byte_identical_and_cached(self, served):
        from repro.experiments.latency import run_figure2

        base, app = served
        body = {
            "kind": "experiment",
            "experiment": "fig2",
            "params": {"procs": [1, 2], "samples": 50},
            "wait": True,
        }
        status, first, _ = post(base, body)
        assert status == 200 and first["status"] == "done"
        # byte-identical to the serial, cache-less library run
        direct = run_figure2(proc_counts=[1, 2], samples=50)
        assert first["result"]["rendered"] == direct.render()
        assert first["result"]["rows"] == direct.rows
        # the resubmission is served (>=95%) from the sharded cache
        status, second, _ = post(base, body)
        assert status == 200 and second["status"] == "done"
        assert second["result"]["rendered"] == first["result"]["rendered"]
        stats = second["cache"]
        lookups = stats["hits"] + stats["misses"]
        assert lookups > 0
        assert stats["hits"] / lookups >= 0.95
        assert app.cache.entry_count() > 0

    def test_fig3_quick_matches_cli_serial_output(self, served):
        from repro.experiments.locks import run_figure3

        base, _ = served
        body = {
            "kind": "experiment",
            "experiment": "fig3",
            "params": {"procs": [2], "ops": 3},
            "wait": True,
        }
        status, doc, _ = post(base, body)
        assert status == 200 and doc["status"] == "done"
        direct = run_figure3(proc_counts=[2], ops=3)
        assert doc["result"]["rendered"] == direct.render()

    def test_obs_summaries_flow_through(self, served):
        base, _ = served
        body = {"kind": "point", "params": {"ops": 3}, "obs": True, "wait": True}
        status, doc, _ = post(base, body)
        assert status == 200 and doc["status"] == "done"
        assert doc["obs"], "capture summaries missing from response"
        assert doc["obs"][0]["totals"]["ring_transactions"] > 0
