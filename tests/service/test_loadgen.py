"""Unit tests for the load generator's report math.

The integration path (a real burst against a live fleet) lives in
``test_fleet.py``; these pin the pure functions the report is built
from, in particular :func:`percentile`'s nearest-rank edges — the
values ``BENCH_fleet.json`` and the multi-host smoke artifact carry.
"""

from __future__ import annotations

from repro.service.fleet.loadgen import jain_index, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.0) == 0.0
        assert percentile([], 0.5) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_answers_every_quantile(self):
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert percentile([7.5], q) == 7.5

    def test_q_zero_is_first_element(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0

    def test_q_one_clamps_to_last_element(self):
        # rank int(1.0 * n) == n would be out of range; must clamp.
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_two_samples_p50_is_upper(self):
        # nearest-rank: int(0.5 * 2) == 1, the second sample — this is
        # rank selection, not interpolation.
        assert percentile([10.0, 20.0], 0.5) == 20.0

    def test_monotone_in_q(self):
        values = [float(i) for i in range(17)]
        quantiles = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        picks = [percentile(values, q) for q in quantiles]
        assert picks == sorted(picks)
        assert all(p in values for p in picks)


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == 1.0

    def test_one_hog_is_one_over_n(self):
        assert jain_index([9.0, 0.0, 0.0]) == 1.0 / 3.0

    def test_degenerate_inputs(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
