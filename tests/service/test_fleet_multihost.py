"""Multi-host fleet: registration, token auth, rejoin + dead-interval repair.

These tests drive the dynamic-membership surface the ``--worker
--join`` deployment rides on: the ``POST /v1/fleet/register``
handshake, the shared-secret gate on every fleet-plane endpoint, the
rejoin-triggers-repair path, and the dead-interval reaper that
restores the replication factor after a permanent loss.  All over real
loopback sockets via :class:`LocalFleet`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service.app import version_info
from repro.service.fleet import LocalFleet, Registrar, WorkerHandle
from repro.service.fleet.wire import FLEET_TOKEN_HEADER


def get(base: str, path: str, token: str | None = None) -> tuple[int, dict]:
    headers = {FLEET_TOKEN_HEADER: token} if token else {}
    request = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def post_json(
    base: str, path: str, body: dict, token: str | None = None
) -> tuple[int, dict]:
    headers = {"Content-Type": "application/json"}
    if token:
        headers[FLEET_TOKEN_HEADER] = token
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), headers=headers,
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def settle_replication(fleet: LocalFleet, deadline: float = 20.0) -> dict:
    """Wait for async replication pushes to reach the full factor."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        for wid in fleet.workers:
            fleet.worker_app(wid).join_replication()
        report = fleet.client.replication_report()
        if report["keys"] > 0 and report["under_replicated"] == 0:
            return report
        time.sleep(0.05)
    raise AssertionError(f"replication never settled: {report}")


POINT = {"kind": "point", "params": {"ops": 3, "n_procs": 2}, "wait": True}


@pytest.fixture
def fleet(tmp_path):
    """3 workers + coordinator; heartbeat off, tests drive membership."""
    with LocalFleet(
        tmp_path / "fleet", n_workers=3, heartbeat_interval=None,
        dead_interval=0.2,
    ) as lf:
        yield lf


class TestAuthGate:
    """Every fleet control/data-plane call requires the shared token."""

    def test_coordinator_fleet_surfaces_reject_tokenless(self, fleet):
        for path in ("/v1/fleet/workers", "/v1/fleet/replication"):
            status, doc = get(fleet.base_url, path)
            assert status == 401, path
            assert "token" in doc["error"]
            assert get(fleet.base_url, path, token=fleet.auth.secret)[0] == 200

    def test_register_rejects_tokenless_and_bad_token(self, fleet):
        body = {"worker_id": "w", "base_url": "http://127.0.0.1:9"}
        assert post_json(fleet.base_url, "/v1/fleet/register", body)[0] == 401
        status, _ = post_json(
            fleet.base_url, "/v1/fleet/register", body, token="wrong-secret"
        )
        assert status == 401

    def test_worker_fleet_endpoints_reject_tokenless(self, fleet):
        url = fleet.workers["worker-0"].base_url
        for path in ("/v1/fleet/keys", "/v1/fleet/entry/deadbeef"):
            status, doc = get(url, path)
            assert status == 401, path
        # data plane POSTs are gated before the body is even parsed
        for path in ("/v1/fleet/map", "/v1/fleet/entry", "/v1/fleet/repair"):
            status, _ = post_json(url, path, {})
            assert status == 401, path

    def test_public_surfaces_stay_open(self, fleet):
        """/healthz stays tokenless: heartbeats and LBs must reach it."""
        assert get(fleet.base_url, "/healthz")[0] == 200
        assert get(fleet.workers["worker-0"].base_url, "/healthz")[0] == 200
        assert get(fleet.base_url, "/v1/experiments")[0] == 200


class TestRegistration:
    def test_register_admits_new_worker(self, fleet):
        body = {
            "worker_id": "joiner",
            "base_url": "http://127.0.0.1:9",  # unreachable: repair no-ops
            "version": version_info(),
            "fingerprint": "abc123",
        }
        status, doc = post_json(
            fleet.base_url, "/v1/fleet/register", body, token=fleet.auth.secret
        )
        assert status == 200 and doc["admitted"] is True
        assert doc["workers"] == 4
        assert doc["worker"]["registered"] is True
        assert doc["worker"]["fingerprint"] == "abc123"
        assert "joiner" in fleet.client.ring
        assert fleet.client.stats()["registrations"] == 1

    def test_reregistration_is_idempotent_heartbeat(self, fleet):
        body = {
            "worker_id": "joiner",
            "base_url": "http://127.0.0.1:9",
            "version": version_info(),
        }
        for _ in range(3):
            status, doc = post_json(
                fleet.base_url, "/v1/fleet/register", body,
                token=fleet.auth.secret,
            )
            assert status == 200 and doc["workers"] == 4
        assert fleet.client.stats()["registrations"] == 3

    def test_version_mismatch_is_409(self, fleet):
        body = {
            "worker_id": "stale",
            "base_url": "http://127.0.0.1:9",
            "version": {"code": "0000000000000000", "model": "?"},
        }
        status, doc = post_json(
            fleet.base_url, "/v1/fleet/register", body, token=fleet.auth.secret
        )
        assert status == 409 and "version mismatch" in doc["error"]
        assert "stale" not in fleet.client.ring

    def test_bad_bodies_are_400(self, fleet):
        cases = [
            {},
            {"worker_id": "", "base_url": "http://x"},
            {"worker_id": 7, "base_url": "http://x"},
            {"worker_id": "w", "base_url": "ftp://x"},
            {"worker_id": "w", "base_url": "http://x", "version": "str"},
            {"worker_id": "w", "base_url": "http://x", "fingerprint": 9},
        ]
        for body in cases:
            status, _ = post_json(
                fleet.base_url, "/v1/fleet/register", body,
                token=fleet.auth.secret,
            )
            assert status == 400, body

    def test_registrar_loop_registers_real_worker(self, fleet, tmp_path):
        """The worker-side join path, end to end in-process."""
        from repro.service.fleet import FleetWorkerApp, make_worker_server

        app = FleetWorkerApp(
            str(tmp_path / "joiner"), worker_id="joiner", auth=fleet.auth
        )
        server = make_worker_server(app, "127.0.0.1", 0)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        registrar = Registrar(app, fleet.base_url, url, interval=0.2)
        try:
            registrar.start()
            assert registrar.registered.wait(10), registrar.last_error
            status, doc = get(
                fleet.base_url, "/v1/fleet/workers", token=fleet.auth.secret
            )
            assert status == 200 and "joiner" in doc["alive"]
            assert doc["workers"]["joiner"]["base_url"] == url
        finally:
            registrar.stop()
            server.shutdown()
            thread.join(timeout=10)
            app.close(drain_deadline=0)


class TestMembershipSurfaces:
    def test_describe_reports_age_and_version(self):
        handle = WorkerHandle(worker_id="w", base_url="http://x")
        doc = handle.describe()
        assert doc["last_seen_age_s"] is None, "never seen: no fake age"
        assert doc["version"] == {}
        handle.last_seen = time.monotonic()
        handle.version = {"code": "abc", "model": "m"}
        doc = handle.describe()
        # an age in seconds, not a raw monotonic stamp
        assert 0.0 <= doc["last_seen_age_s"] < 5.0
        assert doc["version"]["code"] == "abc"

    def test_workers_surface_carries_age_not_monotonic(self, fleet):
        fleet.client.check_health()
        status, doc = get(
            fleet.base_url, "/v1/fleet/workers", token=fleet.auth.secret
        )
        assert status == 200
        for wid, worker in doc["workers"].items():
            assert worker["last_seen_age_s"] < 60.0, (
                f"{wid}: looks like a raw monotonic stamp, not an age"
            )
            assert "version" in worker and "registered" in worker


class TestRejoinRepair:
    """Regression: a heartbeat rejoin must trigger re-replication."""

    def test_rejoin_triggers_repair_and_read_through(self, fleet):
        victim = "worker-1"
        fleet.kill_worker(victim)
        for _ in range(fleet.client.max_failures):
            fleet.client.check_health()
        assert victim not in fleet.client.ring
        # Keys written while the victim is out live only on survivors.
        status, doc = post_fleet_job(fleet.base_url, POINT)
        assert status == 200 and doc["status"] == "done"
        repairs_before = fleet.client.repairs
        fleet.restart_worker(victim)
        fleet.client.check_health()
        assert victim in fleet.client.ring, "rejoin must re-admit"
        assert fleet.client.repairs == repairs_before + 1, (
            "rejoin without repair: the worker owns ranges it never saw"
        )
        report = fleet.client.replication_report()
        assert report["under_replicated"] == 0
        # And the fleet still serves the point from cache, not recompute.
        status, second = post_fleet_job(fleet.base_url, POINT)
        assert status == 200 and second["status"] == "done"
        assert second["result"] == doc["result"]
        assert second["cache"]["misses"] == 0


class TestDeadIntervalRepair:
    """Permanent loss: reap after the interval, restore the factor."""

    def test_reap_restores_replication_factor(self, fleet):
        status, doc = post_fleet_job(fleet.base_url, POINT)
        assert status == 200 and doc["status"] == "done"
        before = settle_replication(fleet)
        assert before["min_copies"] >= 2
        victim = next(
            wid for wid in fleet.workers
            if fleet.worker_app(wid).cache.entry_count() > 0
        )
        fleet.kill_worker(victim)
        for _ in range(fleet.client.max_failures):
            fleet.client.check_health()
        assert victim not in fleet.client.ring
        assert not fleet.client.reap_dead(), "dead interval not up yet"
        time.sleep(0.25)  # past the fixture's 0.2s dead interval
        assert fleet.client.reap_dead() is True
        report = fleet.client.last_replication
        assert report["pushed"] > 0, "no entries were re-replicated"
        assert report["under_replicated"] == 0
        assert report["alive"] == 2
        assert fleet.client.re_replicated > 0
        # One repair per death: a second reap round is a no-op.
        assert fleet.client.reap_dead() is False

    def test_reap_report_lands_in_stats_surface(self, fleet):
        status, doc = post_fleet_job(fleet.base_url, POINT)
        assert status == 200 and doc["status"] == "done"
        settle_replication(fleet)
        victim = next(
            wid for wid in fleet.workers
            if fleet.worker_app(wid).cache.entry_count() > 0
        )
        fleet.kill_worker(victim)
        for _ in range(fleet.client.max_failures):
            fleet.client.check_health()
        time.sleep(0.25)
        fleet.client.reap_dead()
        status, stats = get(fleet.base_url, "/v1/stats")
        assert status == 200
        fleet_stats = stats["fleet"]
        assert fleet_stats["repairs"] >= 1
        assert fleet_stats["dead_interval"] == 0.2
        assert fleet_stats["replication_status"]["under_replicated"] == 0
        assert fleet_stats["auth"] is True


def post_fleet_job(base: str, body: dict) -> tuple[int, dict]:
    """Submit one job to the coordinator's public (tokenless) API."""
    request = urllib.request.Request(
        base + "/v1/jobs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=600) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())
