"""Sharded cache v2: layout, manifest, LRU eviction, pinning, corruption."""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.service.cache2 import CACHE_FORMAT_VERSION, ShardedResultCache


def make_key(i: int) -> str:
    """Distinct 64-hex keys spread across shards."""
    import hashlib

    return hashlib.sha256(str(i).encode()).hexdigest()


class TestLayout:
    def test_two_level_fanout_path(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(1)
        cache.store(key, "v")
        path = tmp_path / "c" / "objects" / key[:2] / key[2:4] / f"{key}.pkl"
        assert path.exists()

    def test_root_is_absolute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = ShardedResultCache(".c2")
        assert cache.root.is_absolute()
        assert cache.root == tmp_path / ".c2"

    def test_format_marker_written_and_checked(self, tmp_path):
        ShardedResultCache(tmp_path / "c")
        marker = tmp_path / "c" / "CACHE_FORMAT"
        assert marker.read_text().strip() == str(CACHE_FORMAT_VERSION)
        marker.write_text("999\n")
        with pytest.raises(ValueError, match="format"):
            ShardedResultCache(tmp_path / "c")

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultCache(tmp_path / "c", cap_bytes=0)


class TestLoadStore:
    def test_roundtrip_counts(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(2)
        hit, _ = cache.load(key)
        assert not hit and cache.misses == 1
        cache.store(key, {"answer": 42})
        hit, value = cache.load(key)
        assert hit and value == {"answer": 42}
        assert cache.hits == 1

    def test_corrupt_entry_counted_and_deleted(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(3)
        cache.store(key, "good")
        path = cache._path(key)
        path.write_bytes(b"garbage")
        hit, _ = cache.load(key)
        assert not hit
        assert cache.corrupt == 1 and cache.misses == 1
        # the poisoned file is gone, so a rewrite is visible again
        assert not path.exists()
        cache.store(key, "fresh")
        hit, value = cache.load(key)
        assert hit and value == "fresh"

    def test_entry_missing_value_field_is_corrupt(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(4)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"wrong": "shape"}))
        hit, _ = cache.load(key)
        assert not hit and cache.corrupt == 1

    def test_sweeprunner_accepts_cache2(self, tmp_path):
        from repro.experiments.sweep import SweepRunner

        from tests.experiments.test_sweep import square

        cache = ShardedResultCache(tmp_path / "c")
        runner = SweepRunner(cache=cache)
        calls = [dict(x=i) for i in range(4)]
        first = runner.map(square, calls)
        second = runner.map(square, calls)
        assert first == second == [0, 1, 4, 9]
        assert cache.hits == 4 and cache.misses == 4


class TestEviction:
    def _fill(self, cache, n, size=1000, start=0):
        keys = []
        for i in range(start, start + n):
            key = make_key(i)
            cache.store(key, os.urandom(size))
            keys.append(key)
        return keys

    def test_size_cap_enforced_lru(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=6000)
        keys = self._fill(cache, 10)  # ~10x1KB > 6KB cap
        assert cache.resident_bytes() <= 6000
        assert cache.evictions > 0
        # newest entries survive, oldest were dropped
        assert cache.load(keys[-1])[0]
        assert not cache.load(keys[0])[0]

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")  # fill uncapped first
        keys = self._fill(cache, 6)
        # make key 0 the most recently used despite oldest store
        now = 2_000_000_000
        for i, key in enumerate(keys):
            os.utime(cache._path(key), (now + i, now + i))
        os.utime(cache._path(keys[0]), (now + 100, now + 100))
        cache.cap_bytes = 3500
        cache.evict_to_cap()
        assert cache.load(keys[0])[0], "recently used entry must survive"
        assert not cache.load(keys[1])[0], "LRU entry must be evicted"

    def test_pinned_entries_survive_eviction(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=5000)
        with cache.pin_session():
            campaign_keys = self._fill(cache, 3)  # this job's in-flight points
            # a concurrent job (other thread, no pins) blows the cap
            other = threading.Thread(target=self._fill, args=(cache, 8, 1000, 100))
            other.start()
            other.join()
            assert cache.evictions > 0, "cap was never enforced"
            for key in campaign_keys:
                assert cache.load(key)[0], "pinned in-flight entry evicted"

    def test_pins_released_after_session(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=2000)
        with cache.pin_session():
            keys = self._fill(cache, 4)
        # after the session the same keys are ordinary LRU citizens
        self._fill(cache, 4, start=50)
        assert not all(cache.load(k)[0] for k in keys)

    def test_uncapped_never_evicts(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        self._fill(cache, 10)
        assert cache.evict_to_cap() == 0
        assert cache.evictions == 0


class TestPeek:
    def test_peek_returns_value_and_meta_without_counters(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(20)
        cache.store(key, "v", meta={"func": "tests.square"})
        hit, value, meta = cache.peek(key)
        assert hit and value == "v" and meta["func"] == "tests.square"
        assert cache.hits == 0 and cache.misses == 0

    def test_peek_miss_is_silent(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        assert cache.peek(make_key(21)) == (False, None, {})
        assert cache.misses == 0

    def test_peek_unlinks_corrupt_entry(self, tmp_path):
        """A poisoned file must not keep shadowing the key: peek drops
        it so the next store (or replica push) is visible again."""
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(22)
        cache.store(key, "good")
        path = cache._path(key)
        path.write_bytes(b"garbage")
        assert cache.peek(key) == (False, None, {})
        assert not path.exists()
        cache.store(key, "fresh")
        assert cache.peek(key)[1] == "fresh"

    def test_peek_never_consults_remote(self, tmp_path):
        """Peers answer peeks; a remote-consulting peek could ping-pong
        between two workers missing the same key forever."""
        cache = ShardedResultCache(tmp_path / "c")
        calls = []
        cache.remote_fetch = lambda key: calls.append(key) or (True, "remote")
        assert cache.peek(make_key(23))[0] is False
        assert calls == []


class TestReadThrough:
    """Counter invariants of the fleet read-through seam."""

    def test_remote_hit_counts_hit_and_adopts(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(30)
        cache.remote_fetch = lambda k: (True, "remote-value")
        hit, value = cache.load(key)
        assert hit and value == "remote-value"
        assert (cache.hits, cache.remote_hits, cache.misses) == (1, 1, 0)
        # adopted locally: the next load is a plain local hit
        cache.remote_fetch = None
        assert cache.load(key) == (True, "remote-value")
        assert (cache.hits, cache.remote_hits, cache.misses) == (2, 1, 0)

    def test_remote_miss_counts_plain_miss(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        cache.remote_fetch = lambda k: (False, None)
        assert cache.load(make_key(31)) == (False, None)
        assert (cache.hits, cache.remote_hits, cache.misses) == (0, 0, 1)

    def test_corrupt_then_remote_hit_counts_both(self, tmp_path):
        """A corrupt local entry resolved remotely is a miss (the local
        copy was lost) AND a hit (the point was still cache-served)."""
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(32)
        cache.store(key, "good")
        cache._path(key).write_bytes(b"garbage")
        cache.remote_fetch = lambda k: (True, "replica-copy")
        hit, value = cache.load(key)
        assert hit and value == "replica-copy"
        assert cache.corrupt == 1
        assert (cache.hits, cache.remote_hits, cache.misses) == (1, 1, 1)

    def test_raising_remote_degrades_to_miss(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")

        def sick_peer(key):
            raise OSError("connection refused")

        cache.remote_fetch = sick_peer
        assert cache.load(make_key(33)) == (False, None)
        assert (cache.hits, cache.remote_hits, cache.misses) == (0, 0, 1)


class TestKeysAndFingerprint:
    def test_keys_lists_resident_sorted(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        stored = {make_key(i) for i in range(40, 45)}
        for key in stored:
            cache.store(key, key)
        assert cache.keys() == sorted(stored)
        assert cache.hits == 0 and cache.misses == 0

    def test_fingerprint_is_content_only(self, tmp_path):
        a = ShardedResultCache(tmp_path / "a")
        b = ShardedResultCache(tmp_path / "b")
        assert a.fingerprint() == b.fingerprint(), "empty shards match"
        for i in range(50, 53):
            a.store(make_key(i), i)
            b.store(make_key(i), i)
        assert a.fingerprint() == b.fingerprint(), "same keys, same print"
        a.store(make_key(99), "extra")
        assert a.fingerprint() != b.fingerprint()


class TestManifest:
    def test_manifest_tracks_stores(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(7)
        cache.store(key, "v", meta={"func": "tests.square"})
        manifest = cache.manifest()
        assert key in manifest
        assert manifest[key]["func"] == "tests.square"
        assert manifest[key]["size"] > 0

    def test_manifest_drops_evicted(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=2500)
        for i in range(6):
            cache.store(make_key(i), os.urandom(1000))
        manifest = cache.manifest()
        assert len(manifest) == cache.entry_count()
        for key in manifest:
            assert cache._path(key).exists()

    def test_compact_manifest_round_trips(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        for i in range(5):
            cache.store(make_key(i), i)
        before = cache.manifest()
        cache.compact_manifest()
        assert cache.manifest() == before
        # exactly one line per live entry after compaction
        lines = (tmp_path / "c" / "manifest.jsonl").read_text().splitlines()
        assert len(lines) == 5


class TestConcurrency:
    def test_parallel_stores_and_loads(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        errors = []

        def work(base):
            try:
                for i in range(30):
                    key = make_key(base * 1000 + i)
                    cache.store(key, (base, i))
                    hit, value = cache.load(key)
                    assert hit and value == (base, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits == 120

    def test_stats_shape(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=1 << 20)
        stats = cache.stats()
        for field in ("root", "hits", "misses", "corrupt", "evictions",
                      "bytes", "entries", "cap_bytes", "format"):
            assert field in stats
