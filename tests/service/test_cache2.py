"""Sharded cache v2: layout, manifest, LRU eviction, pinning, corruption."""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.service.cache2 import CACHE_FORMAT_VERSION, ShardedResultCache


def make_key(i: int) -> str:
    """Distinct 64-hex keys spread across shards."""
    import hashlib

    return hashlib.sha256(str(i).encode()).hexdigest()


class TestLayout:
    def test_two_level_fanout_path(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(1)
        cache.store(key, "v")
        path = tmp_path / "c" / "objects" / key[:2] / key[2:4] / f"{key}.pkl"
        assert path.exists()

    def test_root_is_absolute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = ShardedResultCache(".c2")
        assert cache.root.is_absolute()
        assert cache.root == tmp_path / ".c2"

    def test_format_marker_written_and_checked(self, tmp_path):
        ShardedResultCache(tmp_path / "c")
        marker = tmp_path / "c" / "CACHE_FORMAT"
        assert marker.read_text().strip() == str(CACHE_FORMAT_VERSION)
        marker.write_text("999\n")
        with pytest.raises(ValueError, match="format"):
            ShardedResultCache(tmp_path / "c")

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultCache(tmp_path / "c", cap_bytes=0)


class TestLoadStore:
    def test_roundtrip_counts(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(2)
        hit, _ = cache.load(key)
        assert not hit and cache.misses == 1
        cache.store(key, {"answer": 42})
        hit, value = cache.load(key)
        assert hit and value == {"answer": 42}
        assert cache.hits == 1

    def test_corrupt_entry_counted_and_deleted(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(3)
        cache.store(key, "good")
        path = cache._path(key)
        path.write_bytes(b"garbage")
        hit, _ = cache.load(key)
        assert not hit
        assert cache.corrupt == 1 and cache.misses == 1
        # the poisoned file is gone, so a rewrite is visible again
        assert not path.exists()
        cache.store(key, "fresh")
        hit, value = cache.load(key)
        assert hit and value == "fresh"

    def test_entry_missing_value_field_is_corrupt(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(4)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"wrong": "shape"}))
        hit, _ = cache.load(key)
        assert not hit and cache.corrupt == 1

    def test_sweeprunner_accepts_cache2(self, tmp_path):
        from repro.experiments.sweep import SweepRunner

        from tests.experiments.test_sweep import square

        cache = ShardedResultCache(tmp_path / "c")
        runner = SweepRunner(cache=cache)
        calls = [dict(x=i) for i in range(4)]
        first = runner.map(square, calls)
        second = runner.map(square, calls)
        assert first == second == [0, 1, 4, 9]
        assert cache.hits == 4 and cache.misses == 4


class TestEviction:
    def _fill(self, cache, n, size=1000, start=0):
        keys = []
        for i in range(start, start + n):
            key = make_key(i)
            cache.store(key, os.urandom(size))
            keys.append(key)
        return keys

    def test_size_cap_enforced_lru(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=6000)
        keys = self._fill(cache, 10)  # ~10x1KB > 6KB cap
        assert cache.resident_bytes() <= 6000
        assert cache.evictions > 0
        # newest entries survive, oldest were dropped
        assert cache.load(keys[-1])[0]
        assert not cache.load(keys[0])[0]

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")  # fill uncapped first
        keys = self._fill(cache, 6)
        # make key 0 the most recently used despite oldest store
        now = 2_000_000_000
        for i, key in enumerate(keys):
            os.utime(cache._path(key), (now + i, now + i))
        os.utime(cache._path(keys[0]), (now + 100, now + 100))
        cache.cap_bytes = 3500
        cache.evict_to_cap()
        assert cache.load(keys[0])[0], "recently used entry must survive"
        assert not cache.load(keys[1])[0], "LRU entry must be evicted"

    def test_pinned_entries_survive_eviction(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=5000)
        with cache.pin_session():
            campaign_keys = self._fill(cache, 3)  # this job's in-flight points
            # a concurrent job (other thread, no pins) blows the cap
            other = threading.Thread(target=self._fill, args=(cache, 8, 1000, 100))
            other.start()
            other.join()
            assert cache.evictions > 0, "cap was never enforced"
            for key in campaign_keys:
                assert cache.load(key)[0], "pinned in-flight entry evicted"

    def test_pins_released_after_session(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=2000)
        with cache.pin_session():
            keys = self._fill(cache, 4)
        # after the session the same keys are ordinary LRU citizens
        self._fill(cache, 4, start=50)
        assert not all(cache.load(k)[0] for k in keys)

    def test_uncapped_never_evicts(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        self._fill(cache, 10)
        assert cache.evict_to_cap() == 0
        assert cache.evictions == 0


class TestManifest:
    def test_manifest_tracks_stores(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        key = make_key(7)
        cache.store(key, "v", meta={"func": "tests.square"})
        manifest = cache.manifest()
        assert key in manifest
        assert manifest[key]["func"] == "tests.square"
        assert manifest[key]["size"] > 0

    def test_manifest_drops_evicted(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=2500)
        for i in range(6):
            cache.store(make_key(i), os.urandom(1000))
        manifest = cache.manifest()
        assert len(manifest) == cache.entry_count()
        for key in manifest:
            assert cache._path(key).exists()

    def test_compact_manifest_round_trips(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        for i in range(5):
            cache.store(make_key(i), i)
        before = cache.manifest()
        cache.compact_manifest()
        assert cache.manifest() == before
        # exactly one line per live entry after compaction
        lines = (tmp_path / "c" / "manifest.jsonl").read_text().splitlines()
        assert len(lines) == 5


class TestConcurrency:
    def test_parallel_stores_and_loads(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c")
        errors = []

        def work(base):
            try:
                for i in range(30):
                    key = make_key(base * 1000 + i)
                    cache.store(key, (base, i))
                    hit, value = cache.load(key)
                    assert hit and value == (base, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits == 120

    def test_stats_shape(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", cap_bytes=1 << 20)
        stats = cache.stats()
        for field in ("root", "hits", "misses", "corrupt", "evictions",
                      "bytes", "entries", "cap_bytes", "format"):
            assert field in stats
