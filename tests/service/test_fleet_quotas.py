"""Tenant admission: token buckets and stride-scheduled fair share."""

from __future__ import annotations

import pytest

from repro.service.fleet.quotas import FairShareQueue, TenantPolicy, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(weight=0)
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1.0)
        with pytest.raises(ValueError):
            TenantPolicy(burst=0)


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take()[0] for _ in range(3)] == [True] * 3
        ok, wait = bucket.try_take()
        assert not ok
        assert wait == pytest.approx(0.5)  # one token at 2/s

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]
        clock.advance(0.5)
        assert bucket.try_take()[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)  # a long idle period banks at most `burst`
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


def make_queue(policies: dict[str, TenantPolicy]) -> FairShareQueue:
    return FairShareQueue(lambda t: policies.get(t, TenantPolicy()))


class TestFairShareQueue:
    def test_weighted_dequeue_order_is_deterministic(self):
        queue = make_queue({"a": TenantPolicy(weight=1.0), "b": TenantPolicy(weight=2.0)})
        for i in range(4):
            queue.push("a", f"a{i}")
        for i in range(8):
            queue.push("b", f"b{i}")
        order = [queue.pop(timeout=1)[0] for _ in range(12)]
        # Stride scheduling: weight-2 tenant b drains twice per a turn,
        # ties broken by name — exactly this sequence, every run.
        assert order == ["a", "b", "b"] * 4

    def test_idle_tenant_banks_no_credit(self):
        queue = make_queue({})
        for i in range(4):
            queue.push("a", i)
        assert queue.pop(timeout=1)[0] == "a"
        assert queue.pop(timeout=1)[0] == "a"
        # b arrives late; it enters at the current virtual time and
        # alternates instead of cashing in its idle period.
        queue.push("b", 0)
        queue.push("b", 1)
        order = [queue.pop(timeout=1)[0] for _ in range(4)]
        assert order == ["a", "b", "a", "b"]

    def test_fifo_within_a_tenant(self):
        queue = make_queue({})
        for i in range(3):
            queue.push("t", i)
        assert [queue.pop(timeout=1)[1] for _ in range(3)] == [0, 1, 2]

    def test_pop_timeout_returns_none(self):
        queue = make_queue({})
        assert queue.pop(timeout=0.05) is None

    def test_close_drains_backlog_then_none(self):
        queue = make_queue({})
        queue.push("t", "queued")
        queue.close()
        assert queue.pop(timeout=1) == ("t", "queued")
        assert queue.pop(timeout=1) is None
        with pytest.raises(RuntimeError):
            queue.push("t", "late")

    def test_depth_accounting(self):
        queue = make_queue({})
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert queue.depth() == 3
        assert queue.depths() == {"a": 2, "b": 1}
        assert sorted(queue.drain()) == [("a", 1), ("a", 2), ("b", 3)]
        assert queue.depth() == 0
