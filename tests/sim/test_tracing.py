"""Tests for the op trace collector."""

from repro.sim.tracing import Trace


def _fill(trace: Trace) -> None:
    trace.record(0.0, 0, "t0", "read", 0x100, 2.0)
    trace.record(2.0, 1, "t1", "write", 0x100, 20.0, "remote")
    trace.record(5.0, 0, "t0", "poststore", 0x200, 25.0)


class TestTrace:
    def test_filters(self):
        t = Trace()
        _fill(t)
        assert len(t.by_kind("read")) == 1
        assert len(t.by_cell(0)) == 2
        assert len(t.by_addr(0x100)) == 2

    def test_capacity_drops(self):
        t = Trace(capacity=2)
        _fill(t)
        assert len(t) == 2
        assert t.dropped == 1

    def test_dump_truncates(self):
        t = Trace()
        _fill(t)
        dump = t.dump(limit=2)
        assert "1 more" in dump

    def test_record_str_format(self):
        t = Trace()
        _fill(t)
        line = str(t.records[1])
        assert "write" in line and "@0x100" in line and "[remote]" in line

    def test_iteration(self):
        t = Trace()
        _fill(t)
        assert [r.kind for r in t] == ["read", "write", "poststore"]


class TestRingBuffer:
    def test_uncapped_by_default(self):
        t = Trace()
        for i in range(1000):
            t.record(float(i), 0, "t0", "read", 0x100, 2.0)
        assert len(t) == 1000
        assert t.dropped == 0
        assert t.capacity is None

    def test_capped_trace_keeps_the_newest_records(self):
        t = Trace(capacity=2)
        _fill(t)
        assert [r.kind for r in t.records] == ["write", "poststore"]
        assert t.dropped == 1

    def test_dropped_counts_every_eviction(self):
        t = Trace(capacity=3)
        for i in range(10):
            t.record(float(i), 0, "t0", "read", 0x100, 2.0)
        assert len(t) == 3
        assert t.dropped == 7
        assert [r.time for r in t.records] == [7.0, 8.0, 9.0]

    def test_filters_see_only_retained_records(self):
        t = Trace(capacity=2)
        _fill(t)  # the "read" record was evicted
        assert t.by_kind("read") == []
        assert len(t.by_addr(0x100)) == 1

    def test_exact_capacity_drops_nothing(self):
        t = Trace(capacity=3)
        _fill(t)
        assert len(t) == 3
        assert t.dropped == 0
