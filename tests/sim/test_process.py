"""Tests for the op vocabulary and process bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import (
    Compute,
    GetSubpage,
    LocalOps,
    Poststore,
    Process,
    Read,
    WaitUntil,
    Write,
)


class TestOps:
    def test_compute_rejects_negative(self):
        with pytest.raises(SimulationError):
            Compute(-1)

    def test_localops_rejects_negative(self):
        with pytest.raises(SimulationError):
            LocalOps(-5)

    def test_ops_are_frozen(self):
        op = Read(0x100)
        with pytest.raises(AttributeError):
            op.addr = 0x200  # type: ignore[misc]

    def test_write_carries_value(self):
        assert Write(8, 42).value == 42

    def test_waituntil_holds_predicate(self):
        op = WaitUntil(16, lambda v: v > 3)
        assert op.predicate(4) and not op.predicate(3)

    def test_address_ops_record_addr(self):
        for cls in (Read, GetSubpage, Poststore):
            assert cls(0x80).addr == 0x80


class TestProcess:
    @staticmethod
    def _dummy():
        yield Compute(1)

    def test_lifecycle(self):
        p = Process(name="t", body=self._dummy(), cell_id=0)
        assert not p.finished
        p.started_at = 5.0
        p.finish(15.0, "done")
        assert p.finished
        assert p.result == "done"
        assert p.elapsed == 10.0

    def test_double_finish_rejected(self):
        p = Process(name="t", body=self._dummy(), cell_id=0)
        p.finish(1.0, None)
        with pytest.raises(SimulationError):
            p.finish(2.0, None)

    def test_elapsed_before_finish_rejected(self):
        p = Process(name="t", body=self._dummy(), cell_id=0)
        with pytest.raises(SimulationError):
            _ = p.elapsed

    def test_on_exit_callback(self):
        seen = []
        p = Process(name="t", body=self._dummy(), cell_id=0, on_exit=seen.append)
        p.finish(1.0, None)
        assert seen == [p]
