"""Macro-event batching core: byte-identity, fallbacks, accounting.

The contract of :mod:`repro.sim.batch` is that a batched run is
indistinguishable from a per-event run in everything except wall-clock:
same fire times in the same order, same RNG consumption, same counters,
same final state.  These tests drive full :class:`KsrMachine` lock
workloads (the chain shape the batch layer coalesces) with the flag on
and off and compare everything observable.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.sim.engine import Engine
from repro.sim.process import LocalOps
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    TicketReadWriteLock,
    run_lock_workload,
)


def _lock_machine(batching: bool, *, n_procs: int = 6, seed: int = 11) -> KsrMachine:
    config = MachineConfig.ksr1(n_cells=n_procs, seed=seed, enable_batching=batching)
    return KsrMachine(config)


def _run_lock(
    machine: KsrMachine,
    *,
    n_procs: int = 6,
    ops: int = 4,
    seed: int = 11,
    kind: str = "hardware",
) -> list[float]:
    """Run the contended lock workload recording every event fire time."""
    history: list[float] = []
    machine.engine.probe = history.append
    mem = SharedMemory(machine)
    lock = HardwareExclusiveLock(mem) if kind == "hardware" else TicketReadWriteLock(mem)
    params = LockWorkloadParams(ops_per_processor=ops, read_fraction=0.0, seed=seed)
    run_lock_workload(machine, lock, params, n_threads=n_procs)
    return history


def _contended_body(lock, pid: int, ops: int):
    """A minimal write-lock loop (used where the run is cut short by a
    budget or horizon, so the stock workload's completion bookkeeping
    would raise)."""
    for _ in range(ops):
        yield LocalOps(100)
        yield from lock.acquire_write(pid)
        yield LocalOps(50)
        yield from lock.release_write(pid)


def _state(machine: KsrMachine) -> dict:
    """Everything a per-event and batched run must agree on."""
    rings = [
        (r.n_transactions, r.total_wait_cycles, r.total_transit_cycles)
        for r in machine.hierarchy.leaf_rings
    ]
    return {
        "now": machine.engine.now,
        "events": machine.engine.stats.events_fired,
        "perfmon": machine.total_perf().snapshot(),
        "rings": rings,
        "elapsed": [p.elapsed if p.finished else None for p in machine.processes],
    }


class TestByteIdentity:
    def test_lock_workload_history_identical(self):
        off = _lock_machine(False)
        hist_off = _run_lock(off)
        on = _lock_machine(True)
        hist_on = _run_lock(on)
        assert hist_on == hist_off  # same times, same order, same count
        assert _state(on) == _state(off)
        assert off.engine.stats.batched_events == 0
        assert on.engine.stats.batched_events > 0

    def test_rw_lock_history_identical(self):
        off = _lock_machine(False)
        hist_off = _run_lock(off, kind="rw")
        on = _lock_machine(True)
        hist_on = _run_lock(on, kind="rw")
        assert hist_on == hist_off
        assert _state(on) == _state(off)

    def test_batched_events_are_a_subset(self):
        on = _lock_machine(True)
        _run_lock(on)
        stats = on.engine.stats
        assert 0 < stats.batched_events <= stats.events_fired


class TestRunBoundaries:
    """Budgets and horizons must cut a window exactly where per-event
    dispatch would stop."""

    @pytest.mark.parametrize("max_events", [100, 777, 2001])
    def test_max_events_boundary(self, max_events):
        states = []
        for batching in (False, True):
            machine = _lock_machine(batching)
            history: list[float] = []
            machine.engine.probe = history.append
            mem = SharedMemory(machine)
            lock = HardwareExclusiveLock(mem)
            for pid in range(6):
                machine.spawn(f"w{pid}", _contended_body(lock, pid, 40), cell_id=pid)
            machine.engine.run(max_events=max_events)
            assert machine.engine.stats.events_fired == max_events
            states.append((history, _state(machine)))
        assert states[0] == states[1]

    def test_until_boundary(self):
        states = []
        for batching in (False, True):
            machine = _lock_machine(batching)
            history: list[float] = []
            machine.engine.probe = history.append
            mem = SharedMemory(machine)
            lock = HardwareExclusiveLock(mem)
            for pid in range(6):
                machine.spawn(f"w{pid}", _contended_body(lock, pid, 4), cell_id=pid)
            machine.engine.run(until=50_000.0)
            assert machine.engine.now == pytest.approx(50_000.0)
            states.append((history, _state(machine)))
        assert states[0] == states[1]


class TestFallbacks:
    def test_audit_hook_forces_per_event_anchors(self):
        """With an audit hook every fire is a real event (the auditors
        need Event objects), and the run is still identical."""
        baseline = _lock_machine(False)
        hist_base = _run_lock(baseline)

        audited = _lock_machine(True)
        seen = []
        audited.engine.audit_hook = lambda event: seen.append(event.time)
        hist_audited = _run_lock(audited)
        assert audited.engine.stats.batched_events == 0
        assert hist_audited == hist_base
        assert len(seen) == len(hist_base)

    def test_tie_shuffle_forces_per_event_anchors(self):
        machine = _lock_machine(True)
        machine.engine.shuffle_same_time_ties(np.random.default_rng(0))
        _run_lock(machine)
        assert machine.engine.stats.batched_events == 0

    def test_stall_fault_plan_forces_per_event(self):
        machine = _lock_machine(True)
        plan = FaultPlan(stall_rate=1e-5)
        FaultInjector(plan).attach(machine)
        _run_lock(machine)
        assert machine.engine.stats.batched_events == 0

    def test_corruption_fault_plan_forces_per_event(self):
        machine = _lock_machine(True)
        plan = FaultPlan(corruption_rate=0.05)
        FaultInjector(plan).attach(machine)
        _run_lock(machine)
        assert machine.engine.stats.batched_events == 0

    def test_zero_fault_plan_stays_batched_and_identical(self):
        """An attached all-zero plan installs no seams, so batching
        stays live and the run matches the per-event one."""
        off = _lock_machine(False)
        FaultInjector(FaultPlan()).attach(off)
        hist_off = _run_lock(off)

        on = _lock_machine(True)
        FaultInjector(FaultPlan()).attach(on)
        hist_on = _run_lock(on)
        assert hist_on == hist_off
        assert _state(on) == _state(off)
        assert on.engine.stats.batched_events > 0


class TestEngineStats:
    def test_events_per_sec_zero_before_any_run(self):
        stats = Engine().stats
        assert stats.events_per_sec == 0.0
        assert stats.batched_events == 0

    def test_events_per_sec_zero_wall_time_guard(self):
        """A run too fast for the wall meter reports 0, not inf."""
        eng = Engine()
        eng._n_fired = 10
        eng._wall_s = 1e-9
        assert eng.stats.events_per_sec == 0.0

    def test_events_per_sec_normal_metering(self):
        eng = Engine()
        for i in range(100):
            eng.schedule(float(i), lambda: None)
        eng.run()
        stats = eng.stats
        assert stats.events_fired == 100
        assert stats.events_per_sec > 0
