"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(10, fired.append, "late")
        eng.schedule(5, fired.append, "early")
        eng.run()
        assert fired == ["early", "late"]
        assert eng.now == 10.0

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.schedule(3, fired.append, tag)
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(7.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [7.5]

    def test_events_scheduled_from_callbacks(self):
        eng = Engine()
        fired = []

        def first():
            fired.append("first")
            eng.schedule(5, lambda: fired.append("second"))

        eng.schedule(1, first)
        eng.run()
        assert fired == ["first", "second"]
        assert eng.now == 6.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        fired = []
        ev = eng.schedule(5, fired.append, "x")
        ev.cancel()
        eng.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        eng = Engine()
        fired = []
        keep = eng.schedule(5, fired.append, "keep")
        drop = eng.schedule(5, fired.append, "drop")
        drop.cancel()
        eng.run()
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunControl:
    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, "a")
        eng.schedule(50, fired.append, "b")
        eng.run(until=10)
        assert fired == ["a"]
        assert eng.now == 10.0
        eng.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_even_when_idle(self):
        eng = Engine()
        eng.run(until=100)
        assert eng.now == 100.0

    def test_max_events(self):
        eng = Engine()
        fired = []
        for i in range(10):
            eng.schedule(i, fired.append, i)
        eng.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_idle(self):
        assert Engine().step() is False

    def test_events_fired_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(i, lambda: None)
        eng.run()
        assert eng.events_fired == 4


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
    def test_monotone_clock(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.schedule(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
