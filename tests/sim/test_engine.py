"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(10, fired.append, "late")
        eng.schedule(5, fired.append, "early")
        eng.run()
        assert fired == ["early", "late"]
        assert eng.now == 10.0

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.schedule(3, fired.append, tag)
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.schedule_at(7.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [7.5]

    def test_schedule_at_past_time_rejected_with_clear_message(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        assert eng.now == 10.0
        with pytest.raises(SimulationError, match=r"t=4(\.0)? .*now=10\.0"):
            eng.schedule_at(4, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        fired = []
        eng.schedule_at(10.0, fired.append, "again")
        eng.run()
        assert fired == ["again"]

    def test_events_scheduled_from_callbacks(self):
        eng = Engine()
        fired = []

        def first():
            fired.append("first")
            eng.schedule(5, lambda: fired.append("second"))

        eng.schedule(1, first)
        eng.run()
        assert fired == ["first", "second"]
        assert eng.now == 6.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        fired = []
        ev = eng.schedule(5, fired.append, "x")
        ev.cancel()
        eng.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        eng = Engine()
        fired = []
        keep = eng.schedule(5, fired.append, "keep")
        drop = eng.schedule(5, fired.append, "drop")
        drop.cancel()
        eng.run()
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunControl:
    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, "a")
        eng.schedule(50, fired.append, "b")
        eng.run(until=10)
        assert fired == ["a"]
        assert eng.now == 10.0
        eng.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_even_when_idle(self):
        eng = Engine()
        eng.run(until=100)
        assert eng.now == 100.0

    def test_max_events(self):
        eng = Engine()
        fired = []
        for i in range(10):
            eng.schedule(i, fired.append, i)
        eng.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_idle(self):
        assert Engine().step() is False

    def test_events_fired_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(i, lambda: None)
        eng.run()
        assert eng.events_fired == 4


class TestFastPath:
    """The inlined run() loop and the tuple-keyed heap."""

    def test_same_instant_fifo_survives_interleaved_delays(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, "a")
        eng.schedule(3, fired.append, "x")
        eng.schedule(5, fired.append, "b")
        eng.schedule(5, fired.append, "c")
        eng.run()
        assert fired == ["x", "a", "b", "c"]

    def test_cancelled_head_skipped_on_fast_path(self):
        eng = Engine()
        fired = []
        first = eng.schedule(1, fired.append, "dropped")
        eng.schedule(2, fired.append, "kept")
        first.cancel()
        eng.run()  # no until/max_events/audit: the fast loop
        assert fired == ["kept"]
        assert eng.events_fired == 1

    def test_cancelled_head_skipped_on_guarded_path(self):
        eng = Engine()
        fired = []
        first = eng.schedule(1, fired.append, "dropped")
        eng.schedule(2, fired.append, "kept")
        first.cancel()
        eng.run(until=50)  # until forces the guarded loop
        assert fired == ["kept"]
        assert eng.pending == 0

    def test_max_events_does_not_advance_to_until(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, "a")
        eng.schedule(8, fired.append, "b")
        eng.run(until=100, max_events=1)
        assert fired == ["a"]
        assert eng.now == 5.0  # stopped by the budget, not the horizon
        eng.run(until=100)
        assert fired == ["a", "b"]
        assert eng.now == 100.0

    def test_audit_hook_fires_on_every_event_with_budget(self):
        eng = Engine()
        seen = []
        eng.audit_hook = lambda ev: seen.append(ev.time)
        for d in (3, 1, 2):
            eng.schedule(d, lambda: None)
        eng.run(max_events=2)
        assert seen == [1.0, 2.0]

    def test_events_fired_current_during_callbacks(self):
        """Callbacks must observe an up-to-date counter mid-run."""
        eng = Engine()
        observed = []
        for _ in range(3):
            eng.schedule(1, lambda: observed.append(eng.events_fired))
        eng.run()
        assert observed == [1, 2, 3]

    def test_stats_counts_events_and_wall_time(self):
        eng = Engine()
        for i in range(100):
            eng.schedule(i, lambda: None)
        eng.run()
        stats = eng.stats
        assert stats.events_fired == 100
        assert stats.pending == 0
        assert stats.sim_time == 99.0
        assert stats.wall_seconds > 0.0
        assert stats.events_per_sec == pytest.approx(100 / stats.wall_seconds)

    def test_stats_zero_before_any_run(self):
        stats = Engine().stats
        assert stats.events_fired == 0
        assert stats.events_per_sec == 0.0

    def test_step_and_run_share_semantics(self):
        """step() is the guarded path with a budget of one event."""
        eng = Engine()
        fired = []
        drop = eng.schedule(1, fired.append, "drop")
        eng.schedule(2, fired.append, "keep")
        drop.cancel()
        assert eng.step() is True
        assert fired == ["keep"]
        assert eng.step() is False


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
    def test_monotone_clock(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.schedule(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
