"""Determinism pins for the fault subsystem.

Two properties the whole design rests on:

* a **zero-fault plan is free**: attaching an injector whose plan
  enables nothing leaves the simulated run bit-identical to a run with
  no injector at all (same event counts, same clock, byte-identical
  observability capture);
* **campaigns are job-count invariant**: fanning the processor x rate
  grid across worker processes changes nothing in the serialized
  output, byte for byte.
"""

from __future__ import annotations

import pickle

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.faults.campaign import run_campaign
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.obs import Observer, ObsSpec
from repro.sync.locks import LockWorkloadParams, TicketReadWriteLock, run_lock_workload


def _lock_run(plan: FaultPlan | None, *, n_procs: int = 16, ops: int = 20):
    """One fig3-style lock-workload run, observed; returns its capture.

    The label and meta are fixed so captures from different wirings are
    comparable byte for byte.
    """
    config = MachineConfig.ksr1(n_cells=max(2, n_procs), seed=303)
    machine = KsrMachine(config)
    if plan is not None:
        FaultInjector(plan).attach(machine)
    observer = Observer(ObsSpec()).attach(machine)
    mem = SharedMemory(machine)
    lock = TicketReadWriteLock(mem)
    params = LockWorkloadParams(ops_per_processor=ops, read_fraction=0.0, seed=303)
    run_lock_workload(machine, lock, params, n_threads=n_procs)
    capture = observer.capture(f"determinism P={n_procs}", n_procs=n_procs, ops=ops)
    observer.detach()
    return machine, capture


class TestZeroFaultIdentity:
    def test_zero_plan_run_is_bit_identical_to_uninjected_run(self):
        bare_machine, bare = _lock_run(None)
        zero_machine, zero = _lock_run(FaultPlan())
        assert zero_machine.engine.now == pytest.approx(bare_machine.engine.now, abs=0)
        assert zero_machine.engine.events_fired == bare_machine.engine.events_fired
        assert zero_machine.engine.events_scheduled == bare_machine.engine.events_scheduled
        assert pickle.dumps(zero) == pickle.dumps(bare)

    def test_zero_plan_capture_reports_zero_fault_totals(self):
        _, zero = _lock_run(FaultPlan())
        assert zero.faults
        assert all(v == 0.0 for v in zero.faults.values())

    def test_faulty_run_diverges(self):
        # The pin above would pass vacuously if _lock_run ignored its
        # plan; a corrupting plan must visibly change the run.
        _, bare = _lock_run(None)
        _, faulty = _lock_run(FaultPlan(corruption_rate=0.01))
        assert pickle.dumps(faulty) != pickle.dumps(bare)
        assert faulty.faults["retries"] > 0


class TestCampaignDeterminism:
    GRID = dict(proc_counts=[4, 8], fault_rates=[0.0, 1e-3], ops=10)

    def test_jobs_do_not_change_the_serialized_campaign(self):
        from repro.experiments.sweep import SweepRunner

        serial = run_campaign(runner=SweepRunner(jobs=1), **self.GRID)
        fanned = run_campaign(runner=SweepRunner(jobs=4), **self.GRID)
        assert serial.to_json() == fanned.to_json()
        assert serial.render() == fanned.render()

    def test_repeat_runs_are_byte_identical(self):
        a = run_campaign(**self.GRID)
        b = run_campaign(**self.GRID)
        assert a.to_json() == b.to_json()

    def test_chrome_traces_are_deterministic(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        run_campaign(
            proc_counts=[4], fault_rates=[0.0, 1e-3], ops=10, trace_dir=str(dir_a)
        )
        run_campaign(
            proc_counts=[4], fault_rates=[0.0, 1e-3], ops=10, trace_dir=str(dir_b)
        )
        names_a = sorted(p.name for p in dir_a.iterdir())
        names_b = sorted(p.name for p in dir_b.iterdir())
        assert names_a == names_b
        assert len(names_a) == 2  # one per rate: the slug must not collide
        for name in names_a:
            assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()
