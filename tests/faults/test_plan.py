"""FaultPlan: validation, canonicalization, cache identity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import INJECTOR_VERSION, FaultPlan


class TestValidation:
    def test_default_plan_is_zero(self):
        assert FaultPlan().is_zero

    @pytest.mark.parametrize("field", ["corruption_rate", "stall_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.0, 2.0])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: value})

    def test_max_retries_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultPlan(max_retries=0)

    @pytest.mark.parametrize(
        "field",
        ["retry_backoff_cycles", "stall_cycles", "request_timeout_cycles",
         "bypass_hop_cycles"],
    )
    def test_cycle_budgets_must_be_positive(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 0.0})

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(slot_jitter_cycles=-1.0)

    def test_negative_dead_cell_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(dead_cells=(-1,))

    def test_dead_cells_sorted_and_deduplicated(self):
        plan = FaultPlan(dead_cells=(5, 2, 5, 3))
        assert plan.dead_cells == (2, 3, 5)


class TestZeroPredicate:
    def test_budget_knobs_do_not_disqualify_zero(self):
        # Retry budgets are irrelevant when no fault source is enabled.
        assert FaultPlan(max_retries=3, retry_backoff_cycles=10.0).is_zero

    @pytest.mark.parametrize(
        "kwargs",
        [dict(corruption_rate=1e-6), dict(stall_rate=1e-9),
         dict(slot_jitter_cycles=0.5), dict(dead_cells=(1,))],
    )
    def test_any_fault_source_disqualifies_zero(self, kwargs):
        assert not FaultPlan(**kwargs).is_zero


class TestCacheToken:
    def test_stable_across_instances(self):
        a = FaultPlan(corruption_rate=1e-4)
        b = FaultPlan(corruption_rate=1e-4)
        assert a.cache_token == b.cache_token

    def test_distinct_plans_distinct_tokens(self):
        a = FaultPlan(corruption_rate=1e-4)
        b = FaultPlan(corruption_rate=1e-3)
        assert a.cache_token != b.cache_token

    def test_token_embeds_injector_version(self):
        assert f"-v{INJECTOR_VERSION}-" in FaultPlan().cache_token

    def test_seed_salt_changes_token(self):
        assert FaultPlan(seed_salt=0).cache_token != FaultPlan(seed_salt=1).cache_token


class TestDescribe:
    def test_zero_plan(self):
        assert FaultPlan().describe() == "FaultPlan(zero)"

    def test_lists_only_non_defaults(self):
        text = FaultPlan(corruption_rate=1e-3).describe()
        assert "corruption_rate=0.001" in text
        assert "stall_rate" not in text
