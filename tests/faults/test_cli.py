"""Tests for the ksr-faults command line."""

import json

import pytest

from repro.faults.cli import main
from repro.obs.export import validate_chrome_trace

_FAST = ["--processors", "4", "--fault-rates", "0,1e-3", "--ops", "6", "--no-cache"]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep any cache writes inside the test's tmp directory."""
    monkeypatch.setenv("KSR_CACHE_DIR", str(tmp_path / "cache"))


class TestSelection:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "smoke" in out

    def test_no_command_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err.lower()

    def test_unknown_command(self, capsys):
        assert main(["detonate"]) == 2
        assert "detonate" in capsys.readouterr().err

    def test_bad_processor_list(self):
        with pytest.raises(SystemExit, match="processor"):
            main(["campaign", "--processors", "8,many"])

    def test_bad_rate_list(self):
        with pytest.raises(SystemExit, match="fault rate"):
            main(["campaign", "--processors", "4", "--fault-rates", "0,often"])


class TestCampaign:
    def test_summary_table(self, capsys):
        assert main(["campaign", *_FAST]) == 0
        out = capsys.readouterr().out
        assert "Lock workload resilience" in out
        assert "fault rate" in out
        assert "slowdown" in out

    def test_json_format(self, capsys):
        assert main(["campaign", *_FAST, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "FAULTS"
        assert len(doc["points"]) == 2
        rates = {p["fault_rate"] for p in doc["points"]}
        assert rates == {0.0, 1e-3}

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "campaign.json"
        assert main(["campaign", *_FAST, "--output", str(out_file)]) == 0
        assert str(out_file) in capsys.readouterr().err
        doc = json.loads(out_file.read_text())
        assert doc["experiment"] == "FAULTS"

    def test_trace_dir(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["campaign", *_FAST, "--trace-dir", str(trace_dir)]) == 0
        traces = sorted(trace_dir.glob("*.trace.json"))
        assert len(traces) == 2  # one per fault rate
        for path in traces:
            assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestSmoke:
    def test_smoke_runs_one_processor_count_and_two_rates(self, tmp_path, capsys):
        out_file = tmp_path / "smoke.json"
        assert (
            main(
                ["smoke", "--processors", "4,8,16", "--fault-rate", "1e-3",
                 "--ops", "30", "--no-cache", "--output", str(out_file)]
            )
            == 0
        )
        doc = json.loads(out_file.read_text())
        points = doc["points"]
        assert {p["n_procs"] for p in points} == {4}  # first count only
        assert {p["fault_rate"] for p in points} == {0.0, 1e-3}
