"""FaultInjector: each fault model's behaviour and bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.faults import FAULT_TOTAL_KEYS, FaultCounters, FaultInjector, FaultPlan
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, Read, Write
from tests.conftest import quiet_ksr1, quiet_ksr2


def _worker(n_ops: int = 40):
    def gen():
        for i in range(n_ops):
            yield Read(i * 128)
            yield Write(i * 128, i)
            yield Compute(20)
    return gen()


def _run(plan: FaultPlan | None, *, n_cells: int = 4, config=None) -> KsrMachine:
    machine = KsrMachine(config or quiet_ksr1(n_cells))
    if plan is not None:
        FaultInjector(plan).attach(machine)
    dead = plan.dead_cells if plan is not None else ()
    for c in range(machine.config.n_cells):
        if c in dead:
            continue
        machine.spawn(f"w{c}", _worker(), cell_id=c)
    machine.run()
    return machine


class TestWiring:
    def test_attach_returns_self_and_registers(self):
        machine = KsrMachine(quiet_ksr1())
        injector = FaultInjector(FaultPlan())
        assert injector.attach(machine) is injector
        assert machine.fault_injector is injector

    def test_double_attach_rejected(self):
        machine = KsrMachine(quiet_ksr1())
        injector = FaultInjector(FaultPlan()).attach(machine)
        with pytest.raises(SimulationError):
            injector.attach(KsrMachine(quiet_ksr1()))
        with pytest.raises(SimulationError):
            FaultInjector(FaultPlan()).attach(machine)

    def test_zero_plan_installs_no_hooks(self):
        machine = KsrMachine(quiet_ksr1())
        FaultInjector(FaultPlan()).attach(machine)
        assert all(r.fault_hook is None for r in machine.hierarchy.all_rings)
        assert all(r.fault_jitter is None for r in machine.hierarchy.all_rings)
        assert all(c.fault_delay is None for c in machine.cells)
        assert machine.hierarchy.fault_injector is None
        assert machine.protocol.fault_accounting is False

    def test_detach_unwires_everything(self):
        machine = KsrMachine(quiet_ksr1())
        plan = FaultPlan(corruption_rate=0.1, stall_rate=1e-5,
                         slot_jitter_cycles=2.0, dead_cells=(3,))
        injector = FaultInjector(plan).attach(machine)
        injector.detach()
        assert machine.fault_injector is None
        assert all(r.fault_hook is None for r in machine.hierarchy.all_rings)
        assert all(c.fault_delay is None for c in machine.cells)
        assert machine.hierarchy.fault_injector is None
        assert machine.protocol.fault_accounting is False

    def test_dead_cell_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(dead_cells=(9,))).attach(KsrMachine(quiet_ksr1(4)))

    def test_killing_every_cell_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(dead_cells=(0, 1, 2, 3))).attach(
                KsrMachine(quiet_ksr1(4))
            )

    def test_spawn_on_dead_cell_rejected(self):
        machine = KsrMachine(quiet_ksr1(4))
        FaultInjector(FaultPlan(dead_cells=(2,))).attach(machine)
        with pytest.raises(SimulationError, match="dead"):
            machine.spawn("w", _worker(), cell_id=2)


class TestCorruption:
    def test_corruption_counts_and_slows(self):
        clean = _run(None)
        faulty = _run(FaultPlan(corruption_rate=0.05))
        counters = faulty.fault_injector.counters
        assert counters.corrupted_packets > 0
        assert counters.retries > 0
        assert faulty.engine.now > clean.engine.now

    def test_retries_burn_real_slots(self):
        # Within one run on a single leaf ring, every protocol request
        # claims exactly one slot and every retry claims one more, so
        # ring-level claims exceed protocol-level transactions by the
        # retry count.  (Comparing against a clean run would be wrong:
        # retry delays shift timing-dependent protocol paths.)
        faulty = _run(FaultPlan(corruption_rate=0.05))
        counters = faulty.fault_injector.counters
        assert counters.retries > 0
        assert (
            faulty.hierarchy.n_transactions
            == faulty.total_perf().ring_transactions + counters.retries
        )

    def test_retries_reach_perfmon(self):
        faulty = _run(FaultPlan(corruption_rate=0.05))
        perf = faulty.total_perf()
        assert perf.ring_retries == faulty.fault_injector.counters.retries

    def test_exhausted_retries_time_out(self):
        # At 90% corruption with a budget of 1 the ring times out often.
        faulty = _run(FaultPlan(corruption_rate=0.9, max_retries=1))
        counters = faulty.fault_injector.counters
        assert counters.timeouts > 0
        assert faulty.total_perf().ring_timeouts > 0


class TestStalls:
    def test_stalls_charge_cycles_and_slow_the_run(self):
        clean = _run(None)
        faulty = _run(FaultPlan(stall_rate=1e-4, stall_cycles=3000.0))
        counters = faulty.fault_injector.counters
        assert counters.stall_cycles > 0
        assert faulty.engine.now > clean.engine.now
        assert faulty.total_perf().fault_stall_cycles == pytest.approx(
            counters.stall_cycles
        )

    def test_responder_stall_issues_timeout_probes(self):
        faulty = _run(
            FaultPlan(stall_rate=1e-4, stall_cycles=8000.0,
                      request_timeout_cycles=1000.0)
        )
        counters = faulty.fault_injector.counters
        assert counters.timeouts > 0
        assert counters.retries > 0


class TestJitterAndDeadCells:
    def test_jitter_changes_timing_only(self):
        clean = _run(None)
        faulty = _run(FaultPlan(slot_jitter_cycles=4.0))
        assert faulty.engine.now != clean.engine.now
        counters = faulty.fault_injector.counters
        assert counters.corrupted_packets == 0
        assert counters.retries == 0

    def test_dead_cells_add_bypass_latency(self):
        clean = _run(None, n_cells=4)
        faulty = _run(FaultPlan(dead_cells=(3,)), n_cells=4)
        counters = faulty.fault_injector.counters
        assert counters.bypass_hops > 0
        assert faulty.engine.now > clean.engine.now
        assert faulty.total_perf().ring_bypass_hops == counters.bypass_hops

    def test_dead_cell_on_remote_ring_charges_cross_ring_paths(self):
        # KSR-2: cell 40 lives on the second leaf ring; same-ring
        # traffic on ring 0 is unaffected, crossings pay the bypass.
        config = quiet_ksr2(64)
        machine = KsrMachine(config)
        injector = FaultInjector(FaultPlan(dead_cells=(40,))).attach(machine)
        machine.spawn("a", _worker(), cell_id=0)
        machine.spawn("b", _worker(), cell_id=33)
        machine.run()
        assert injector.counters.bypass_hops > 0


class TestCounters:
    def test_snapshot_is_all_floats(self):
        snap = FaultCounters().snapshot()
        assert set(snap) == set(FAULT_TOTAL_KEYS)
        assert all(type(v) is float for v in snap.values())

    def test_faulty_and_clean_runs_have_matching_key_sets(self):
        faulty = _run(FaultPlan(corruption_rate=0.05))
        snap = faulty.fault_injector.counters.snapshot()
        assert set(snap) == set(FAULT_TOTAL_KEYS)
