"""Tests for the timer-interrupt model."""

import numpy as np
import pytest

from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.thread import TimerModel


def model(period_s=10e-3, cost_s=150e-6, enabled=True, cell=0, seed=0):
    cfg = MachineConfig.ksr1(
        4, timer=TimerConfig(enabled=enabled, period_s=period_s, cost_s=cost_s)
    )
    return TimerModel(cfg, cell, np.random.default_rng(seed)), cfg


class TestTimerModel:
    def test_disabled_is_identity(self):
        tm, _ = model(enabled=False)
        end, n = tm.extend(0.0, 12345.0)
        assert end == 12345.0 and n == 0

    def test_short_op_between_ticks_unaffected(self):
        tm, cfg = model()
        start = tm.phase + 1.0  # just after a tick
        end, n = tm.extend(start, 100.0)
        assert n == 0 and end == start + 100.0

    def test_op_spanning_one_tick_pays_one_cost(self):
        tm, cfg = model()
        start = tm.phase - 50.0 + tm.period_cycles  # 50 cycles before next tick
        end, n = tm.extend(start, 100.0)
        assert n == 1
        assert end == pytest.approx(start + 100.0 + tm.cost_cycles)

    def test_long_op_pays_proportional_costs(self):
        tm, cfg = model()
        duration = 10 * tm.period_cycles
        end, n = tm.extend(0.0, duration)
        assert 9 <= n <= 12  # includes ticks landing in the stretched tail
        assert end == pytest.approx(duration + n * tm.cost_cycles)

    def test_phases_unsynchronized_across_cells(self):
        phases = set()
        for cell in range(8):
            tm, _ = model(cell=cell, seed=cell)
            phases.add(round(tm.phase, 3))
        assert len(phases) == 8

    def test_ticks_between_half_open(self):
        tm, _ = model()
        t = tm.phase
        assert tm.ticks_between(t - 1, t) == 1
        assert tm.ticks_between(t, t + 1) == 0
