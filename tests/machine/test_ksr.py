"""Tests for machine assembly and run control."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, Read, WaitUntil, Write
from repro.sim.tracing import Trace
from tests.conftest import quiet_ksr1


class TestAssembly:
    def test_one_cell_per_processor(self, ksr1_config):
        m = KsrMachine(ksr1_config)
        assert len(m.cells) == ksr1_config.n_cells
        assert [c.cell_id for c in m.cells] == list(range(4))

    def test_determinism_across_instances(self):
        def run_once():
            m = KsrMachine(quiet_ksr1(4, seed=99))
            mem = SharedMemory(m)
            a = mem.alloc_word()

            def writer():
                yield Write(a, 1)

            def reader():
                yield WaitUntil(a, lambda v: v == 1)
                yield Read(a)

            m.spawn("w", writer(), 0)
            p = m.spawn("r", reader(), 1)
            m.run()
            return p.finished_at

        assert run_once() == run_once()

    def test_seed_changes_timing_details(self):
        def final_time(seed):
            m = KsrMachine(quiet_ksr1(4, seed=seed))
            mem = SharedMemory(m)
            a = mem.alloc_word()

            def writer():
                yield Write(a, 1)

            def reader():
                yield WaitUntil(a, lambda v: v == 1)

            m.spawn("w", writer(), 0)
            p = m.spawn("r", reader(), 1)
            m.run()
            return p.finished_at

        # jitter draws differ; identical timings would mean the seeds
        # are ignored
        assert final_time(1) != final_time(2)


class TestRunControl:
    def test_spawn_validates_cell(self, machine):
        def body():
            yield Compute(1)

        with pytest.raises(SimulationError):
            machine.spawn("t", body(), cell_id=99)

    def test_run_until(self, machine):
        def body():
            yield Compute(1000)

        p = machine.spawn("t", body(), 0)
        machine.run(until=500)
        assert not p.finished
        machine.run()
        assert p.finished

    def test_compute_only_thread_timing(self, machine):
        def body():
            yield Compute(123)
            yield Compute(77)

        p = machine.spawn("t", body(), 0)
        machine.run()
        assert p.elapsed == pytest.approx(200.0)

    def test_deadlock_names_the_thread(self, machine):
        mem = SharedMemory(machine)
        a = mem.alloc_word()

        def stuck():
            yield WaitUntil(a, lambda v: v == 42)

        machine.spawn("stucky", stuck(), 1)
        with pytest.raises(DeadlockError, match="stucky"):
            machine.run()

    def test_non_op_yield_rejected(self, machine):
        def bad():
            yield "not an op"

        machine.spawn("bad", bad(), 0)
        with pytest.raises(SimulationError, match="must yield Op"):
            machine.run()


class TestObservation:
    def test_clock_conversion(self, machine):
        def body():
            yield Compute(2000)

        machine.spawn("t", body(), 0)
        machine.run()
        assert machine.now_seconds == pytest.approx(2000 * 50e-9)

    def test_perf_aggregation_and_reset(self, machine):
        mem = SharedMemory(machine)
        a = mem.alloc_word()

        def w():
            yield Write(a, 1)

        machine.spawn("w", w(), 0)
        machine.run()

        def r():
            yield Read(a)

        machine.spawn("r", r(), 1)
        machine.run()
        total = machine.total_perf()
        assert total.ring_transactions >= 1
        machine.reset_perf()
        assert machine.total_perf().ring_transactions == 0

    def test_trace_attachment(self):
        trace = Trace()
        m = KsrMachine(quiet_ksr1(2), trace=trace)
        mem = SharedMemory(m)
        a = mem.alloc_word()

        def body():
            yield Write(a, 1)
            yield Read(a)

        m.spawn("t", body(), 0)
        m.run()
        kinds = [r.kind for r in trace]
        assert "write" in kinds and "read" in kinds
