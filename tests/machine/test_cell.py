"""Tests for the cell's local cost model (latency composition)."""

import pytest

from repro.machine.api import SharedMemory
from repro.machine.config import BLOCK_BYTES, MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, LocalOps, Read, Write
from tests.conftest import quiet_ksr1


def fresh(n_cells=2, seed=3):
    m = KsrMachine(quiet_ksr1(n_cells, seed=seed))
    return m, SharedMemory(m)


def run_body(machine, cell, gen):
    p = machine.spawn("t", gen, cell)
    machine.run()
    return p


class TestLatencyComposition:
    def test_subcache_hit_two_cycles(self):
        m, mem = fresh()
        a = mem.alloc_word()

        def body():
            yield Read(a)  # cold
            t0 = m.engine.now
            for _ in range(10):
                yield Read(a)
            return (m.engine.now - t0) / 10

        assert run_body(m, 0, body()).result == pytest.approx(2.0)

    def test_local_cache_hit_18_cycles(self):
        """Touch enough data to evict nothing but read a sub-block not
        yet in the sub-cache: pure local-cache hit."""
        m, mem = fresh()
        arr = mem.page_array("a", 64)  # spans 4 subpages, 8 sub-blocks

        def body():
            yield Read(arr.addr(0))  # allocates page + block (cold)
            t0 = m.engine.now
            yield Read(arr.addr(8))  # same subpage 0? no: word 8 = subpage 0's
            return m.engine.now - t0

        # word index 8 is byte 64: second sub-block of subpage 0 —
        # sub-cache miss, local-cache hit, no block allocation
        assert run_body(m, 0, body()).result == pytest.approx(18.0)

    def test_block_allocating_stride_pays_50pct_more(self):
        """Every access to a fresh 2 KB block: +9 cycles on 18."""
        m, mem = fresh()
        n = 16
        arr = mem.array("a", (n * BLOCK_BYTES) // 8, align=BLOCK_BYTES)
        words_per_block = BLOCK_BYTES // 8

        def body():
            # first pass pulls everything into the local cache
            for i in range(n):
                yield Read(arr.addr(i * words_per_block))
            # evictions can't have happened (tiny footprint); second
            # pass re-allocates nothing in the local cache but the
            # sub-cache blocks are still resident, so force new blocks
            # by touching a different sub-block of each block
            t0 = m.engine.now
            for i in range(n):
                yield Read(arr.addr(i * words_per_block + 16))  # new sub-block
            return (m.engine.now - t0) / n

        # 64-byte sub-block #1 of each block: sub-cache miss without
        # block allocation => 18 cycles
        assert run_body(m, 0, body()).result == pytest.approx(18.0)

    def test_local_write_slightly_dearer_than_read(self):
        m, mem = fresh()
        arr = mem.array("a", 512)

        def body():
            for i in range(0, 512, 16):
                yield Read(arr.addr(i))  # make resident (exclusive, cold)
            t0 = m.engine.now
            yield Read(arr.addr(8))
            read_cost = m.engine.now - t0
            t0 = m.engine.now
            yield Write(arr.addr(24), 1)
            write_cost = m.engine.now - t0
            return read_cost, write_cost

        read_cost, write_cost = run_body(m, 0, body()).result
        assert write_cost > read_cost

    def test_localops_unit(self):
        m, _ = fresh()

        def body():
            yield LocalOps(10000)

        p = run_body(m, 0, body())
        assert p.elapsed == pytest.approx(10000 * m.config.latency.local_op_cycles)


class TestTimerInterrupts:
    def test_interrupts_stretch_compute(self):
        cfg = MachineConfig.ksr1(
            1, timer=TimerConfig(enabled=True, period_s=1e-3, cost_s=100e-6)
        )
        m = KsrMachine(cfg)

        def body():
            yield Compute(cfg.cycles(10e-3))  # 10 periods

        p = m.spawn("t", body(), 0)
        m.run()
        stretch = p.elapsed - cfg.cycles(10e-3)
        assert stretch >= 9 * cfg.cycles(100e-6)
        assert m.cells[0].perfmon.timer_interrupts >= 9

    def test_quiet_machine_exact(self):
        m, _ = fresh()

        def body():
            yield Compute(12345)

        p = run_body(m, 0, body())
        assert p.elapsed == 12345.0


class TestPerfCounters:
    def test_counts_by_level(self):
        m, mem = fresh()
        a = mem.alloc_word()

        def body():
            yield Read(a)   # cold: local-cache miss
            yield Read(a)   # sub-cache hit
            yield Read(a)

        run_body(m, 0, body())
        pm = m.cells[0].perfmon
        assert pm.local_cache_misses == 1
        assert pm.subcache_hits == 2
        assert pm.subcache_misses == 1
