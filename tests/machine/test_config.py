"""Tests for machine configurations against published parameters."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import (
    CacheConfig,
    LatencyConfig,
    MachineConfig,
    RingConfig,
    TimerConfig,
)


class TestKsr1Factory:
    def test_published_parameters(self):
        cfg = MachineConfig.ksr1()
        assert cfg.clock_hz == 20e6
        assert cfg.n_cells == 32
        assert cfg.issue_width == 2
        assert cfg.peak_mflops_per_cell == 40.0
        assert cfg.subcache.total_bytes == 256 * 1024
        assert cfg.local_cache.total_bytes == 32 * 1024 * 1024
        assert cfg.remote_latency_cycles == pytest.approx(175.0)
        assert cfg.latency.subcache_hit_cycles == 2.0
        assert cfg.latency.local_cache_hit_cycles == 18.0

    def test_cycle_time_50ns(self):
        assert MachineConfig.ksr1().cycle_s == pytest.approx(50e-9)

    def test_alloc_penalties_match_measured_percentages(self):
        """+50 % on an 18-cycle local access; +60 % on a remote."""
        lat = MachineConfig.ksr1().latency
        assert lat.block_alloc_cycles / lat.local_cache_hit_cycles == pytest.approx(
            0.5, abs=0.01
        )
        assert lat.page_alloc_cycles / 175.0 == pytest.approx(0.6, abs=0.01)


class TestKsr2Factory:
    def test_clock_doubles_only(self):
        k1, k2 = MachineConfig.ksr1(), MachineConfig.ksr2()
        assert k2.clock_hz == 2 * k1.clock_hz
        # ring latency constant in seconds => doubled in cycles
        assert k2.remote_latency_cycles == pytest.approx(2 * k1.remote_latency_cycles)
        assert k2.seconds(k2.remote_latency_cycles) == pytest.approx(
            k1.seconds(k1.remote_latency_cycles)
        )
        # sub-cache is pipeline-coupled: still 2 cycles
        assert k2.latency.subcache_hit_cycles == 2.0
        # memory geometry identical
        assert k2.subcache == k1.subcache
        assert k2.local_cache == k1.local_cache

    def test_default_64_cells_two_rings(self):
        cfg = MachineConfig.ksr2()
        assert cfg.n_cells == 64
        assert cfg.n_rings == 2
        assert cfg.ring_of(31) == 0 and cfg.ring_of(32) == 1
        assert cfg.same_ring(0, 31) and not cfg.same_ring(0, 32)

    def test_cross_ring_latency_larger(self):
        cfg = MachineConfig.ksr2()
        assert cfg.remote_latency_between(0, 40) > cfg.remote_latency_between(0, 20)


class TestValidation:
    def test_cell_count_bounds(self):
        with pytest.raises(ConfigError):
            MachineConfig.ksr1(0)
        with pytest.raises(ConfigError):
            MachineConfig.ksr1(34 * 32 + 1)

    def test_max_machine_allowed(self):
        assert MachineConfig.ksr1(34 * 32).n_rings == 34

    def test_cache_config_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(total_bytes=1024, ways=2, line_bytes=64, alloc_bytes=100)
        with pytest.raises(ConfigError):
            CacheConfig(total_bytes=-1, ways=2, line_bytes=64, alloc_bytes=128)

    def test_ring_config_validation(self):
        with pytest.raises(ConfigError):
            RingConfig(1, 2, 12, 4.0, 39.0, 260.0)
        with pytest.raises(ConfigError):
            RingConfig(34, 0, 12, 4.0, 39.0, 260.0)
        with pytest.raises(ConfigError):
            RingConfig(34, 2, 12, -1.0, 39.0, 260.0)

    def test_latency_config_validation(self):
        with pytest.raises(ConfigError):
            LatencyConfig(subcache_hit_cycles=0)

    def test_timer_config_validation(self):
        with pytest.raises(ConfigError):
            TimerConfig(enabled=True, period_s=0, cost_s=0)
        with pytest.raises(ConfigError):
            TimerConfig(enabled=True, period_s=1e-3, cost_s=2e-3)
        TimerConfig(enabled=False, period_s=0, cost_s=0)  # ignored when off

    def test_cell_range_check(self):
        cfg = MachineConfig.ksr1(4)
        with pytest.raises(ConfigError):
            cfg.ring_of(4)


class TestDerived:
    def test_with_cells(self):
        cfg = MachineConfig.ksr1(32).with_cells(8)
        assert cfg.n_cells == 8
        assert cfg.name == "KSR-1"

    def test_seconds_cycles_roundtrip(self):
        cfg = MachineConfig.ksr1()
        assert cfg.cycles(cfg.seconds(175.0)) == pytest.approx(175.0)

    def test_ring_capacity_anchor(self):
        """24 slots of 128 bytes turning over every circuit sustain on
        the order of the published 1 GB/s."""
        cfg = MachineConfig.ksr1()
        circuits_per_s = cfg.clock_hz / cfg.ring.circuit_cycles
        bandwidth = cfg.ring.total_slots * 128 * circuits_per_s
        assert bandwidth > 0.4e9  # same order as the published figure
