"""Tests for the shared-memory programming API."""

import pytest

from repro.errors import AllocationError, MemoryModelError
from repro.machine.api import SharedMemory, run_threads
from repro.machine.config import PAGE_BYTES, SUBPAGE_BYTES
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, Read, Write
from tests.conftest import quiet_ksr1


@pytest.fixture
def mem(machine):
    return SharedMemory(machine)


class TestAllocator:
    def test_default_alignment_prevents_false_sharing(self, mem):
        a = mem.alloc_word()
        b = mem.alloc_word()
        assert a // SUBPAGE_BYTES != b // SUBPAGE_BYTES

    def test_custom_alignment(self, mem):
        addr = mem.alloc(100, align=PAGE_BYTES)
        assert addr % PAGE_BYTES == 0

    def test_rejects_nonpositive(self, mem):
        with pytest.raises(MemoryModelError):
            mem.alloc(0)

    def test_arena_exhaustion(self, machine):
        small = SharedMemory(machine, arena_bytes=1024)
        small.alloc(512)
        with pytest.raises(AllocationError):
            small.alloc(1024)

    def test_allocations_do_not_overlap(self, mem):
        spans = []
        for size in (8, 128, 4096, 24):
            base = mem.alloc(size)
            spans.append((base, base + size))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end


class TestSharedArray:
    def test_addressing(self, mem):
        arr = mem.array("x", 100)
        assert arr.addr(0) == arr.base
        assert arr.addr(1) == arr.base + 8
        assert len(arr) == 100
        assert arr.nbytes == 800

    def test_bounds_checked(self, mem):
        arr = mem.array("x", 10)
        with pytest.raises(MemoryModelError):
            arr.addr(10)
        with pytest.raises(MemoryModelError):
            arr.addr(-1)

    def test_page_array_alignment(self, mem):
        arr = mem.page_array("big", 10)
        assert arr.base % PAGE_BYTES == 0


class TestPeekPoke:
    def test_poke_visible_to_simulated_read(self, machine, mem):
        a = mem.alloc_word()
        mem.poke(a, 77)

        def body():
            v = yield Read(a)
            return v

        p = machine.spawn("t", body(), 0)
        machine.run()
        assert p.result == 77

    def test_peek_after_simulated_write(self, machine, mem):
        a = mem.alloc_word()

        def body():
            yield Write(a, 5)

        machine.spawn("t", body(), 0)
        machine.run()
        assert mem.peek(a) == 5


class TestRunThreads:
    def test_generators(self, machine):
        def make(i):
            def body():
                yield Compute(100 * (i + 1))
                return i

            return body()

        ps = run_threads(machine, [make(i) for i in range(3)])
        assert [p.result for p in ps] == [0, 1, 2]
        assert all(p.finished for p in ps)

    def test_callables_receive_index(self):
        m = KsrMachine(quiet_ksr1(4))

        def body(i):
            yield Compute(10)
            return i * 10

        ps = run_threads(m, [body] * 4)
        assert [p.result for p in ps] == [0, 10, 20, 30]
        assert [p.cell_id for p in ps] == [0, 1, 2, 3]
