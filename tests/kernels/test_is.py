"""Tests for the IS kernel: ranking numerics and the Table 2 shape."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.kernels.is_sort import IsKernel
from repro.machine.config import MachineConfig


@pytest.fixture(scope="module")
def kernel():
    # the library's default test scale: large enough that the scaling
    # shape is meaningful, small enough for a fast suite
    return IsKernel(MachineConfig.ksr1(32))


@pytest.fixture(scope="module")
def scaling(kernel):
    return {p: kernel.run(p) for p in (1, 2, 4, 8, 16, 30, 32)}


class TestNumerics:
    def test_ranks_sort_the_keys(self, kernel):
        ranks = kernel.rank_keys()
        kernel.verify(ranks)

    def test_ranks_are_stable(self, kernel):
        """Equal keys keep their input order (bucket-sort stability)."""
        ranks = kernel.rank_keys()
        keys = kernel.keys
        for bucket in np.unique(keys[:200]):
            idx = np.flatnonzero(keys == bucket)
            assert np.all(np.diff(ranks[idx]) > 0)

    def test_verify_rejects_corruption(self, kernel):
        ranks = kernel.rank_keys().copy()
        ranks[0] = ranks[1]
        with pytest.raises(AssertionError):
            kernel.verify(ranks)

    @given(st.integers(min_value=2, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_ranking_property(self, n_keys):
        k = IsKernel(MachineConfig.ksr1(2), n_keys=n_keys, n_buckets=64)
        k.verify(k.rank_keys())

    def test_key_distribution_binomialish(self, kernel):
        """NAS IS keys: average of 4 uniforms — centre-heavy."""
        counts = np.bincount(kernel.keys, minlength=kernel.n_buckets)
        centre = counts[kernel.n_buckets // 4 : kernel.n_buckets // 2].mean()
        edge = counts[: kernel.n_buckets // 16].mean()
        assert centre > 2 * edge


class TestPhaseStructure:
    def test_seven_phases(self, kernel):
        phases = kernel.phase_works(4)
        assert [name for name, _, _ in phases] == [
            "count",
            "accumulate",
            "prefix",
            "serial-combine",
            "rebase",
            "atomic-copy",
            "rank",
        ]

    def test_combine_phase_is_serial(self, kernel):
        phases = dict(
            (name, (works, serial)) for name, works, serial in kernel.phase_works(8)
        )
        works, serial = phases["serial-combine"]
        assert serial and len(works) == 1
        assert works[0].n_active == 1

    def test_parallel_phases_have_p_works(self, kernel):
        for name, works, serial in kernel.phase_works(8):
            if not serial:
                assert len(works) == 8

    def test_serial_combine_grows_with_p(self, kernel):
        """Phase 4 reads one partial maximum per processor."""
        def combine_remote(p):
            phases = dict(
                (n, w) for n, w, _ in kernel.phase_works(p)
            )
            return phases["serial-combine"][0].remote_subpages

        assert combine_remote(16) > combine_remote(4)


class TestScalingShape:
    def test_monotone_to_30(self, scaling):
        times = [scaling[p].time_s for p in (1, 2, 4, 8, 16, 30)]
        assert times == sorted(times, reverse=True)

    def test_speedup_band_at_32(self, scaling):
        """Paper: 18.9 at 32 at full size; at test scale the curve
        flattens earlier (paper-size band asserted in
        tests/experiments/test_paper_shapes.py)."""
        speedup = scaling[1].time_s / scaling[32].time_s
        assert 3 < speedup < 26

    def test_good_speedup_through_8(self, scaling):
        """Paper: 'extremely good speedups observed for up to 8'."""
        speedup8 = scaling[1].time_s / scaling[8].time_s
        assert speedup8 > 3.5

    def test_30_to_32_nearly_flat(self, scaling):
        """Paper: 36.56 -> 36.63 s (slightly worse).  We require the
        step to be, at best, marginal."""
        gain = scaling[30].time_s / scaling[32].time_s
        assert gain < 1.08

    def test_serial_seconds_grow_with_p(self, scaling):
        assert scaling[30].serial_s > scaling[4].serial_s


class TestValidation:
    def test_processor_bounds(self, kernel):
        with pytest.raises(ConfigError):
            kernel.run(0)

    def test_needs_keys_and_buckets(self):
        with pytest.raises(ConfigError):
            IsKernel(MachineConfig.ksr1(2), n_keys=1)
        with pytest.raises(ConfigError):
            IsKernel(MachineConfig.ksr1(2), n_buckets=1)

    def test_paper_size(self):
        k = IsKernel.paper_size(MachineConfig.ksr1(32))
        assert k.n_keys == 1 << 23
        assert k.n_buckets == 1 << 18
