"""Tests for the EP kernel: numerics and the paper's claims."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.ep import EpKernel
from repro.machine.config import MachineConfig


@pytest.fixture(scope="module")
def kernel():
    return EpKernel(MachineConfig.ksr1(32), n_pairs=1 << 16)


class TestNumerics:
    def test_verify_passes(self, kernel):
        kernel.run(1).verify()

    def test_results_independent_of_processor_count(self, kernel):
        """Partitioning the pair index space must not change tallies —
        this is what the NAS leapfrog generator guarantees."""
        r1 = kernel.run(1)
        r8 = kernel.run(8)
        assert np.array_equal(r1.counts, r8.counts)
        assert r1.sum_x == pytest.approx(r8.sum_x, rel=1e-12)
        assert r1.n_accepted == r8.n_accepted

    def test_acceptance_near_pi_over_4(self, kernel):
        r = kernel.run(1)
        assert r.n_accepted / r.n_pairs == pytest.approx(np.pi / 4, abs=0.01)

    def test_annulus_counts_decrease(self, kernel):
        """Gaussian tail: outer annuli hold ever fewer deviates."""
        counts = kernel.run(1).counts
        assert counts[0] > counts[1] > counts[2]
        assert counts[-1] <= counts[3]

    def test_bad_verify_detected(self, kernel):
        r = kernel.run(1)
        broken = type(r)(
            n_pairs=r.n_pairs,
            n_procs=1,
            counts=r.counts + 5,
            sum_x=r.sum_x,
            sum_y=r.sum_y,
            n_accepted=r.n_accepted,
            time_s=r.time_s,
            mflops_per_cell=r.mflops_per_cell,
        )
        with pytest.raises(AssertionError):
            broken.verify()


class TestScalability:
    def test_linear_speedup(self, kernel):
        """The paper: 'Our implementation showed linear speedup'."""
        t1 = kernel.run(1).time_s
        for p in (2, 8, 32):
            speedup = t1 / kernel.run(p).time_s
            assert speedup == pytest.approx(p, rel=0.05)

    def test_sustained_mflops_near_11(self, kernel):
        """The paper: ~11 MFLOPS per cell of the 40 MFLOPS peak."""
        assert kernel.run(1).mflops_per_cell == pytest.approx(11.0, rel=0.1)

    def test_ksr2_is_twice_as_fast(self):
        k1 = EpKernel(MachineConfig.ksr1(8), n_pairs=1 << 14)
        k2 = EpKernel(MachineConfig.ksr2(8), n_pairs=1 << 14)
        assert k1.run(4).time_s == pytest.approx(2 * k2.run(4).time_s, rel=0.05)

    def test_processor_bounds(self, kernel):
        with pytest.raises(ConfigError):
            kernel.run(0)
        with pytest.raises(ConfigError):
            kernel.run(64)

    def test_needs_pairs(self):
        with pytest.raises(ConfigError):
            EpKernel(MachineConfig.ksr1(2), n_pairs=0)
