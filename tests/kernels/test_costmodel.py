"""Tests for the phase-level cost model and the barrier cost model."""

import pytest

from repro.errors import ConfigError
from repro.kernels.costmodel import (
    BarrierCostModel,
    CYCLES_PER_FLOP,
    KernelCostModel,
    PhaseWork,
)
from repro.machine.config import MachineConfig
from repro.memory.streams import sequential
from tests.conftest import quiet_ksr1


@pytest.fixture(scope="module")
def model():
    return KernelCostModel(MachineConfig.ksr1(32))


class TestComputePricing:
    def test_pure_flops(self, model):
        cost = model.phase_cost(PhaseWork(name="f", flops=1000))
        assert cost.compute_cycles == pytest.approx(1000 * CYCLES_PER_FLOP)
        assert cost.total_cycles == cost.compute_cycles

    def test_ep_calibration_sustains_11_mflops(self, model):
        """flops/s at 20 MHz with the calibrated flop cost ~ 11 M."""
        mflops = 20e6 / CYCLES_PER_FLOP / 1e6
        assert 10.0 < mflops < 12.0

    def test_extra_cycles_flat(self, model):
        a = model.phase_cost(PhaseWork(name="a"))
        b = model.phase_cost(PhaseWork(name="b", extra_cycles=500.0))
        assert b.total_cycles - a.total_cycles == pytest.approx(500.0)


class TestMemoryPricing:
    def test_resident_stream_cheap(self, model):
        """A small warm stream costs ~1 cycle per word access."""
        stream = sequential(0, 2048)  # 16 KB
        cost = model.phase_cost(PhaseWork(name="m", stream=stream))
        assert cost.total_cycles < 2048 * 3

    def test_capacity_overflow_goes_remote(self, model):
        """A 64 MB working set cannot live in a 32 MB local cache:
        warm misses become ring transfers (COMA eviction)."""
        stream = sequential(0, (64 << 20) // 8)
        cost = model.phase_cost(PhaseWork(name="big", stream=stream))
        assert cost.n_remote_transfers > 100_000
        assert cost.remote_cycles > cost.subcache_cycles * 0.2

    def test_stream_scale_multiplies(self, model):
        stream = sequential(0, 4096)
        one = model.phase_cost(PhaseWork(name="1", stream=stream, warm=False))
        four = model.phase_cost(
            PhaseWork(name="4", stream=stream, warm=False, stream_scale=4.0)
        )
        assert four.total_cycles == pytest.approx(4 * one.total_cycles, rel=0.01)

    def test_conflict_factor_raises_subcache_cost(self, model):
        stream = sequential(0, (4 << 20) // 8)
        clean = model.phase_cost(PhaseWork(name="c", stream=stream))
        thrash = model.phase_cost(
            PhaseWork(name="t", stream=stream, subcache_conflict_factor=2.0)
        )
        assert thrash.subcache_cycles > clean.subcache_cycles * 1.3


class TestRemotePricing:
    def test_remote_transfers_cost_ring_latency(self, model):
        cost = model.phase_cost(PhaseWork(name="r", remote_subpages=100))
        assert cost.remote_cycles == pytest.approx(100 * 175.0, rel=0.05)

    def test_contention_raises_latency(self, model):
        lone = model.phase_cost(PhaseWork(name="l", n_active=1, remote_subpages=1000))
        crowd = model.phase_cost(
            PhaseWork(name="c", n_active=32, remote_subpages=1000)
        )
        assert crowd.effective_remote_latency > lone.effective_remote_latency
        assert crowd.saturated

    def test_prefetch_hides_latency_behind_compute(self, model):
        base = PhaseWork(name="b", flops=200_000, remote_subpages=500)
        pf = PhaseWork(
            name="p", flops=200_000, remote_subpages=500, prefetch_overlap=0.8
        )
        c_base = model.phase_cost(base)
        c_pf = model.phase_cost(pf)
        assert c_pf.remote_cycles == pytest.approx(0.2 * c_base.remote_cycles, rel=0.01)

    def test_prefetch_cannot_hide_without_compute(self, model):
        """No compute to overlap with: the shortfall is re-exposed."""
        naked = PhaseWork(name="n", remote_subpages=500, prefetch_overlap=1.0)
        cost = model.phase_cost(naked)
        full = model.phase_cost(PhaseWork(name="f", remote_subpages=500))
        assert cost.remote_cycles == pytest.approx(full.remote_cycles, rel=0.01)

    def test_poststores_add_load_and_issue_cost(self, model):
        quiet = model.phase_cost(
            PhaseWork(name="q", n_active=32, flops=500_000, remote_subpages=200)
        )
        noisy = model.phase_cost(
            PhaseWork(
                name="n",
                n_active=32,
                flops=500_000,
                remote_subpages=200,
                poststores=5000,
            )
        )
        assert noisy.compute_cycles > quiet.compute_cycles
        assert noisy.ring_utilization > quiet.ring_utilization


class TestParallelTime:
    def test_max_of_processors(self, model):
        works = [
            PhaseWork(name="small", flops=100),
            PhaseWork(name="big", flops=10_000),
        ]
        assert model.parallel_time(works).name == "big"

    def test_empty_rejected(self, model):
        with pytest.raises(ConfigError):
            model.parallel_time([])


class TestPhaseWorkValidation:
    def test_bad_overlap(self):
        with pytest.raises(ConfigError):
            PhaseWork(name="x", prefetch_overlap=1.5)

    def test_bad_active(self):
        with pytest.raises(ConfigError):
            PhaseWork(name="x", n_active=0)

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            PhaseWork(name="x", stream_scale=0)

    def test_bad_conflict(self):
        with pytest.raises(ConfigError):
            PhaseWork(name="x", subcache_conflict_factor=0.5)


class TestBarrierCostModel:
    def test_single_proc_free(self):
        m = BarrierCostModel(MachineConfig.ksr1(32))
        assert m.barrier_cycles(1) == 0.0

    def test_grows_logarithmically(self):
        m = BarrierCostModel(MachineConfig.ksr1(32))
        t4, t32 = m.barrier_cycles(4), m.barrier_cycles(32)
        assert t4 < t32 < 3 * t4

    def test_matches_event_level_system_barrier(self):
        """The closed form must track the tier-1 simulation within 2x
        either way (it prices the same algorithm family)."""
        from repro.experiments.barriers import measure_barrier

        cfg = quiet_ksr1(16)
        closed = BarrierCostModel(cfg).barrier_seconds(16)
        simulated = measure_barrier("system", 16, machine_config=cfg, reps=6)
        assert 0.5 < closed / simulated < 2.0

    def test_ring_crossing_jump(self):
        m = BarrierCostModel(MachineConfig.ksr2(64))
        assert m.barrier_cycles(40) > m.barrier_cycles(32) * 1.2

    def test_validation(self):
        m = BarrierCostModel(MachineConfig.ksr1(32))
        with pytest.raises(ConfigError):
            m.barrier_cycles(0)
