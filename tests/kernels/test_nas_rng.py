"""Tests for the NAS LCG pseudorandom generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.kernels.nas_rng import DEFAULT_A, DEFAULT_SEED, MODULUS, NasRandom


def naive_block(rng: NasRandom, start: int, count: int) -> np.ndarray:
    """Reference scalar implementation."""
    x = rng.state_at(start + 1)
    out = np.empty(count)
    for i in range(count):
        out[i] = x
        x = (x * rng.a) % MODULUS
    return out / MODULUS


class TestCorrectness:
    def test_constants(self):
        assert MODULUS == 1 << 46
        assert DEFAULT_A == 5**13
        assert DEFAULT_SEED == 271828183

    def test_vectorized_matches_scalar_exactly(self):
        r = NasRandom()
        assert np.array_equal(r.block(0, 3000), naive_block(r, 0, 3000))

    def test_vectorized_across_chunk_boundary(self):
        r = NasRandom()
        n = r._CHUNK + 100
        assert np.array_equal(r.block(5, n), naive_block(r, 5, n))

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_leapfrog_consistency(self, start, count):
        """block(start+k, m) is a suffix of block(start, k+m)."""
        r = NasRandom()
        full = r.block(start, count + 7)
        assert np.array_equal(r.block(start + 7, count), full[7:])

    def test_skip_multiplier(self):
        r = NasRandom()
        assert r.skip_multiplier(0) == 1
        assert r.skip_multiplier(1) == r.a
        assert r.skip_multiplier(5) == pow(r.a, 5, MODULUS)
        with pytest.raises(ConfigError):
            r.skip_multiplier(-1)

    def test_values_in_unit_interval(self):
        u = NasRandom().block(0, 10000)
        assert np.all(u > 0) and np.all(u < 1)

    def test_mean_near_half(self):
        u = NasRandom().block(0, 200_000)
        assert abs(u.mean() - 0.5) < 0.005

    def test_pairs_interleave(self):
        r = NasRandom()
        x, y = r.pairs(3, 5)
        flat = r.block(6, 10)
        assert np.array_equal(x, flat[0::2])
        assert np.array_equal(y, flat[1::2])


class TestValidation:
    def test_even_seed_rejected(self):
        with pytest.raises(ConfigError):
            NasRandom(seed=2)

    def test_even_multiplier_rejected(self):
        with pytest.raises(ConfigError):
            NasRandom(a=10)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            NasRandom().block(0, -1)

    def test_empty_block(self):
        assert NasRandom().block(0, 0).size == 0
