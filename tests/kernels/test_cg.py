"""Tests for the CG kernel: real numerics plus the Table 1 shape."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable


@pytest.fixture(scope="module")
def kernel():
    return CgKernel(MachineConfig.ksr1(32), n=600, nnz_target=30_000, iterations=25)


@pytest.fixture(scope="module")
def scaling(kernel):
    return {p: kernel.run(p) for p in (1, 2, 4, 8, 16, 32)}


class TestNumerics:
    def test_cg_converges_to_known_solution(self, kernel):
        z, residual, iterations = kernel.solve(tol=1e-9)
        assert residual < 1e-9
        assert iterations < kernel.n
        assert np.allclose(z, np.ones(kernel.n), atol=1e-6)

    def test_iteration_cap_respected(self, kernel):
        _, residual, iterations = kernel.solve(max_iter=3, tol=0.0)
        assert iterations == 3
        assert residual > 0


class TestScalingShape:
    def test_monotone_improvement(self, scaling):
        times = [scaling[p].time_s for p in (1, 2, 4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)

    def test_speedup_at_32_meaningful(self, scaling):
        """At this reduced test size the serial section bites earlier
        than in Table 1; the paper-size band (~22x) is asserted in
        tests/experiments/test_paper_shapes.py."""
        speedup = scaling[1].time_s / scaling[32].time_s
        assert 4 < speedup < 30

    def test_serial_time_grows_with_p(self, scaling):
        """The paper's explanation of the 16->32 drop: the serial
        section's remote references grow with P."""
        assert scaling[32].serial_s > scaling[4].serial_s

    def test_parallel_time_shrinks_with_p(self, scaling):
        assert scaling[32].parallel_s < scaling[4].parallel_s / 4

    def test_efficiency_declines_at_scale(self, scaling):
        t1 = scaling[1].time_s
        eff16 = t1 / scaling[16].time_s / 16
        eff32 = t1 / scaling[32].time_s / 32
        assert eff32 < eff16

    def test_poststore_helps_midrange(self, kernel):
        plain = kernel.run(8).time_s
        ps = kernel.run(8, use_poststore=True).time_s
        assert ps < plain

    def test_scaling_table_integration(self, kernel, scaling):
        table = ScalingTable.from_pairs(
            [(p, scaling[p].time_s) for p in (1, 2, 4, 8, 16, 32)]
        )
        fractions = [
            pt.serial_fraction for pt in table.points() if pt.serial_fraction is not None
        ]
        # serial fraction eventually rises (algorithmic bottleneck)
        assert fractions[-1] > fractions[-3]


class TestValidation:
    def test_processor_bounds(self, kernel):
        with pytest.raises(ConfigError):
            kernel.run(0)
        with pytest.raises(ConfigError):
            kernel.run(33)

    def test_needs_iterations(self):
        with pytest.raises(ConfigError):
            CgKernel(MachineConfig.ksr1(2), iterations=0)

    def test_paper_size_dimensions(self):
        kernel = CgKernel.paper_size(MachineConfig.ksr1(32), iterations=1)
        assert kernel.n == 14000
        assert kernel.matrix.nnz == pytest.approx(2_030_000, rel=0.02)
