"""The vectorized-pricing layer is exact: memoized results equal the
plain model's, shifted streams equal directly built ones."""

import numpy as np
import pytest

from repro.kernels.vectorized import (
    MemoizedAnalyticCache,
    shift_stream,
    stream_fingerprint,
)
from repro.machine.config import SUBPAGE_BYTES, MachineConfig
from repro.memory.analytic_cache import AnalyticCache
from repro.memory.streams import concat, gather, sequential, strided


def _configs():
    cfg = MachineConfig.ksr1(n_cells=2)
    return cfg.subcache, cfg.local_cache


def _streams():
    rng = np.random.default_rng(7)
    return [
        sequential(0, 4096, write_fraction=0.5),
        sequential(1 << 16, 4096, write_fraction=0.5),
        strided(0, 512, 33),
        gather(0, rng.integers(0, 8192, size=1024)),
        concat([sequential(0, 256), gather(2048, rng.integers(0, 512, size=128))]),
    ]


class TestMemoizedCache:
    @pytest.mark.parametrize("iterations", [1, 3])
    def test_results_match_plain_model(self, iterations):
        for config in _configs():
            plain = AnalyticCache(config)
            memo = MemoizedAnalyticCache(config)
            for stream in _streams():
                assert memo.simulate(stream, iterations=iterations) == plain.simulate(
                    stream, iterations=iterations
                )

    def test_repeat_simulation_hits_the_memo(self):
        config = _configs()[0]
        memo = MemoizedAnalyticCache(config)
        stream = sequential(0, 2048, write_fraction=0.25)
        first = memo.simulate(stream)
        assert memo.memo_hits == 0
        second = memo.simulate(stream)
        assert second == first
        assert memo.memo_hits == 1

    def test_frame_aligned_translation_hits_the_memo(self):
        """Processor p's stream — processor 0's shifted by whole
        allocation frames — must price from the memo."""
        config = _configs()[1]
        memo = MemoizedAnalyticCache(config)
        plain = AnalyticCache(config)
        base = sequential(0, 4096, write_fraction=0.5)
        frame_bytes = memo.alloc_subpages * SUBPAGE_BYTES
        translated = sequential(3 * frame_bytes, 4096, write_fraction=0.5)
        result0 = memo.simulate(base)
        result3 = memo.simulate(translated)
        assert memo.memo_hits == 1
        assert result3 == result0 == plain.simulate(translated)

    def test_unaligned_translation_misses_but_stays_exact(self):
        config = _configs()[1]
        memo = MemoizedAnalyticCache(config)
        plain = AnalyticCache(config)
        memo.simulate(sequential(0, 4096))
        shifted = sequential(SUBPAGE_BYTES, 4096)
        assert memo.simulate(shifted) == plain.simulate(shifted)

    def test_iterations_key_separately(self):
        config = _configs()[0]
        memo = MemoizedAnalyticCache(config)
        plain = AnalyticCache(config)
        stream = strided(0, 600, 17)
        assert memo.simulate(stream, iterations=1) == plain.simulate(stream)
        assert memo.simulate(stream, iterations=4) == plain.simulate(
            stream, iterations=4
        )
        assert memo.memo_hits == 0

    def test_empty_stream_bypasses_memo(self):
        config = _configs()[0]
        memo = MemoizedAnalyticCache(config)
        plain = AnalyticCache(config)
        empty = concat([])
        assert memo.simulate(empty) == plain.simulate(empty)
        assert memo.memo_hits == memo.memo_misses == 0


class TestStreamFingerprint:
    def test_translation_invariant(self):
        a = sequential(0, 1000, write_fraction=0.5)
        b = sequential(64 * SUBPAGE_BYTES, 1000, write_fraction=0.5)
        assert stream_fingerprint(a)[0] == stream_fingerprint(b)[0]

    def test_content_sensitive(self):
        a = sequential(0, 1000, write_fraction=0.5)
        assert stream_fingerprint(a) != stream_fingerprint(sequential(0, 1001, write_fraction=0.5))
        assert stream_fingerprint(a) != stream_fingerprint(sequential(0, 1000, write_fraction=0.25))

    def test_cached_on_the_stream_object(self):
        stream = sequential(0, 128)
        fp = stream_fingerprint(stream)
        assert stream_fingerprint(stream) is fp


class TestShiftStream:
    @pytest.mark.parametrize("frames", [1, 7])
    def test_matches_direct_construction(self, frames):
        delta = frames * SUBPAGE_BYTES
        cases = [
            (sequential(0, 3000, write_fraction=0.5), lambda d: sequential(d, 3000, write_fraction=0.5)),
            (strided(0, 400, 19), lambda d: strided(d, 400, 19)),
            (
                gather(0, np.arange(0, 2048, 3)),
                lambda d: gather(d, np.arange(0, 2048, 3)),
            ),
        ]
        for base, build in cases:
            shifted = shift_stream(base, delta)
            direct = build(delta)
            assert np.array_equal(shifted.subpages, direct.subpages)
            assert np.array_equal(shifted.weights, direct.weights)
            assert shifted.write_fraction == direct.write_fraction

    def test_unaligned_delta_returns_none(self):
        assert shift_stream(sequential(0, 100), SUBPAGE_BYTES - 8) is None

    def test_zero_delta_returns_the_stream(self):
        stream = sequential(0, 100)
        assert shift_stream(stream, 0) is stream

    def test_negative_shift_below_zero_returns_none(self):
        assert shift_stream(sequential(0, 100), -SUBPAGE_BYTES) is None

    def test_negative_shift_in_range_is_exact(self):
        base = sequential(16 * SUBPAGE_BYTES, 500)
        shifted = shift_stream(base, -4 * SUBPAGE_BYTES)
        direct = sequential(12 * SUBPAGE_BYTES, 500)
        assert np.array_equal(shifted.subpages, direct.subpages)
