"""Tests for the sparse matrix formats and generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.kernels.sparse import SparseCSC, SparseCSR, random_sparse_spd


@pytest.fixture(scope="module")
def small_spd():
    return random_sparse_spd(200, 3000, seed=4)


class TestGenerator:
    def test_shape_and_density(self, small_spd):
        assert small_spd.n == 200
        assert 200 <= small_spd.nnz <= 3600

    def test_symmetric(self, small_spd):
        dense = np.zeros((200, 200))
        for i in range(200):
            lo, hi = small_spd.row_start[i], small_spd.row_start[i + 1]
            dense[i, small_spd.col_index[lo:hi]] = small_spd.values[lo:hi]
        assert np.allclose(dense, dense.T)

    def test_positive_definite_by_dominance(self, small_spd):
        """Strict diagonal dominance with positive diagonal => SPD."""
        for i in range(200):
            lo, hi = small_spd.row_start[i], small_spd.row_start[i + 1]
            cols = small_spd.col_index[lo:hi]
            vals = small_spd.values[lo:hi]
            diag = vals[cols == i]
            assert diag.size == 1 and diag[0] > 0
            off = np.abs(vals[cols != i]).sum()
            assert diag[0] > off

    def test_validation(self):
        with pytest.raises(ConfigError):
            random_sparse_spd(1, 10)
        with pytest.raises(ConfigError):
            random_sparse_spd(10, 5)
        with pytest.raises(ConfigError):
            random_sparse_spd(10, 100, format="coo")

    def test_csc_format_option(self):
        m = random_sparse_spd(50, 400, seed=1, format="csc")
        assert isinstance(m, SparseCSC)


class TestMatvec:
    def test_csr_matches_dense(self, small_spd):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        dense = np.zeros((200, 200))
        for i in range(200):
            lo, hi = small_spd.row_start[i], small_spd.row_start[i + 1]
            dense[i, small_spd.col_index[lo:hi]] = small_spd.values[lo:hi]
        assert np.allclose(small_spd.matvec(x), dense @ x)

    def test_csc_and_csr_agree(self, small_spd):
        """The paper's format transformation must not change results."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        csc = small_spd.to_csc()
        assert np.allclose(csc.matvec(x), small_spd.matvec(x))

    def test_roundtrip_csr_csc_csr(self, small_spd):
        back = small_spd.to_csc().to_csr()
        rng = np.random.default_rng(2)
        x = rng.normal(size=200)
        assert np.allclose(back.matvec(x), small_spd.matvec(x))

    def test_wrong_vector_length(self, small_spd):
        with pytest.raises(ConfigError):
            small_spd.matvec(np.zeros(3))

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_matvec_property(self, n):
        m = random_sparse_spd(n, 4 * n, seed=n)
        x = np.ones(n)
        y = m.matvec(x)
        # diagonal dominance with A·1: each entry is positive
        assert np.all(y > 0)


class TestRowPartitioning:
    def test_blocks_cover_all_rows(self, small_spd):
        for p in (1, 3, 7, 32):
            blocks = [small_spd.row_block(i, p) for i in range(p)]
            assert blocks[0][0] == 0
            assert blocks[-1][1] == 200
            for (a, b), (c, d) in zip(blocks, blocks[1:]):
                assert b == c

    def test_balanced(self, small_spd):
        blocks = [small_spd.row_block(i, 7) for i in range(7)]
        sizes = [hi - lo for lo, hi in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_pid_validation(self, small_spd):
        with pytest.raises(ConfigError):
            small_spd.row_block(5, 4)


class TestFormatValidation:
    def test_csr_structure_checked(self):
        with pytest.raises(ConfigError):
            SparseCSR(
                n=3,
                row_start=np.array([0, 1, 2]),  # wrong length
                col_index=np.array([0, 1]),
                values=np.array([1.0, 2.0]),
            )
        with pytest.raises(ConfigError):
            SparseCSR(
                n=2,
                row_start=np.array([0, 1, 5]),  # doesn't end at nnz
                col_index=np.array([0, 1]),
                values=np.array([1.0, 2.0]),
            )
