"""Tests for the SP application: solver numerics and Tables 3/4 shapes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.sp import SpApplication
from repro.machine.config import MachineConfig


@pytest.fixture(scope="module")
def sp():
    return SpApplication(MachineConfig.ksr1(32), grid=16)


class TestNumerics:
    def test_iterations_converge(self, sp):
        app = SpApplication(MachineConfig.ksr1(2), grid=16, seed=1)
        d1 = app.iterate(1)
        d5 = app.iterate(4)
        assert d5 < d1  # approaching steady state

    def test_penta_solver_matches_dense(self):
        """The banded elimination must solve (I + d L4) x = rhs."""
        app = SpApplication(MachineConfig.ksr1(2), grid=16, diffusion=0.03)
        n = 16
        stencil = np.array([1.0, -4.0, 6.0, -4.0, 1.0]) * 0.03
        A = np.eye(n)
        for k, off in enumerate(range(-2, 3)):
            for i in range(n):
                j = i + off
                if 0 <= j < n:
                    A[i, j] += stencil[k]
        rng = np.random.default_rng(0)
        rhs = rng.normal(size=(3, n))  # three independent lines
        x = app._penta_solve_lines(rhs)
        for row in range(3):
            assert np.allclose(A @ x[row], rhs[row], atol=1e-10)

    def test_solver_handles_higher_dims(self):
        app = SpApplication(MachineConfig.ksr1(2), grid=8, diffusion=0.02)
        rhs = np.random.default_rng(1).normal(size=(4, 5, 8))
        x = app._penta_solve_lines(rhs)
        assert x.shape == rhs.shape
        assert np.all(np.isfinite(x))


class TestScalingShape:
    def test_monotone_scaling(self, sp):
        times = [r.time_per_iteration_s for r in sp.scaling([1, 2, 4, 8, 16, 31])]
        assert times == sorted(times, reverse=True)

    def test_speedup_band_at_31(self, sp):
        runs = sp.scaling([1, 31])
        speedup = runs[0].time_per_iteration_s / runs[1].time_per_iteration_s
        assert 15 < speedup < 31  # paper: 27.8


class TestOptimizationLadder:
    def test_each_step_improves(self, sp):
        base, padded, prefetched = sp.optimization_ladder(30)
        assert base.time_per_iteration_s > padded.time_per_iteration_s
        assert padded.time_per_iteration_s > prefetched.time_per_iteration_s

    def test_step_magnitudes_near_paper(self):
        """Paper: padding ~15.7%, prefetch ~11.7% (at 64^3)."""
        sp = SpApplication.paper_size(MachineConfig.ksr1(32))
        base, padded, prefetched = (
            r.time_per_iteration_s for r in sp.optimization_ladder(30)
        )
        pad_gain = 1 - padded / base
        pf_gain = 1 - prefetched / padded
        assert 0.08 < pad_gain < 0.25
        assert 0.06 < pf_gain < 0.25

    def test_flags_recorded(self, sp):
        base, padded, prefetched = sp.optimization_ladder(8)
        assert not base.padded and not base.prefetch
        assert padded.padded and not padded.prefetch
        assert prefetched.padded and prefetched.prefetch


class TestPoststore:
    def test_poststore_slows_sp_down(self, sp):
        """The paper: 'its use caused slowdown rather than
        improvements'."""
        plain = sp.run(16)
        with_ps = sp.run(16, poststore=True)
        assert with_ps.time_per_iteration_s > plain.time_per_iteration_s


class TestValidation:
    def test_grid_minimum(self):
        with pytest.raises(ConfigError):
            SpApplication(MachineConfig.ksr1(2), grid=4)

    def test_processor_bounds(self, sp):
        with pytest.raises(ConfigError):
            sp.run(0)

    def test_paper_size(self):
        assert SpApplication.paper_size(MachineConfig.ksr1(32)).grid == 64
