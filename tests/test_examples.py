"""Smoke tests: every shipped example runs to completion.

Run as subprocesses so each example's ``__main__`` path, argument
handling and printing are what is exercised — exactly what a user gets.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "all workers read a consistent sum" in out
        assert "snarfs" in out

    def test_barrier_tour(self):
        out = run_example("barrier_tour.py", "8")
        assert "tournament(M)" in out
        assert "us/episode" in out

    def test_cg_study(self):
        out = run_example("cg_study.py")
        assert "CG solve converged" in out
        assert "Table 1 (reproduced)" in out
        assert "poststore" in out

    @pytest.mark.slow
    def test_custom_machine(self):
        out = run_example("custom_machine.py")
        assert "stock (24 slots)" in out
        assert "sub-cache" in out
