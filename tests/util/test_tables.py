"""Tests for plain-text table rendering."""

import pytest

from repro.util.tables import Table


class TestTable:
    def test_alignment_and_headers(self):
        t = Table(["P", "Speedup"])
        t.add_row([1, 1.0])
        t.add_row([32, 22.7593])
        text = t.render()
        lines = text.splitlines()
        assert lines[0].startswith("P")
        assert "Speedup" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "22.7593" in text

    def test_title(self):
        t = Table(["a"], title="Table 1: CG")
        t.add_row([1])
        text = t.render()
        assert text.splitlines()[0] == "Table 1: CG"
        assert text.splitlines()[1].startswith("=")

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting_six_significant(self):
        t = Table(["x"])
        t.add_row([1638.85970])
        assert "1638.86" in t.render()

    def test_str_is_render(self):
        t = Table(["x"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_non_numeric_cells(self):
        t = Table(["name", "ok"])
        t.add_row(["tournament(M)", True])
        assert "tournament(M)" in t.render()
        assert "True" in t.render()
