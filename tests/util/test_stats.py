"""Tests for the statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    Summary,
    geometric_mean,
    linear_fit,
    mean,
    relative_error,
    summarize,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestMeans:
    def test_mean(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=50))
    def test_geometric_leq_arithmetic(self, xs):
        assert geometric_mean(xs) <= mean(xs) + 1e-9


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([0, 1, 2, 3], [5, 7, 9, 11])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(5.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11, 10) == pytest.approx(0.1)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            relative_error(1, 0)

    @given(finite_floats, st.floats(min_value=0.1, max_value=1e6))
    def test_non_negative(self, measured, reference):
        assert relative_error(measured, reference) >= 0


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == Summary(n=3, mean=2.0, std=1.0, minimum=1.0, maximum=3.0)

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text and "mean=" in text
