"""Tests for the ASCII chart renderer."""

import pytest

from repro.util.charts import ascii_chart


@pytest.fixture
def two_series():
    return {
        "counter": [(2, 40e-6), (8, 120e-6), (32, 490e-6)],
        "tournament(M)": [(2, 50e-6), (8, 95e-6), (32, 140e-6)],
    }


class TestAsciiChart:
    def test_contains_structure(self, two_series):
        text = ascii_chart(two_series, title="Figure 4", x_label="P", y_label="s")
        assert "Figure 4" in text
        assert "(P)" in text
        assert "*=counter" in text
        assert "o=tournament(M)" in text

    def test_markers_present(self, two_series):
        text = ascii_chart(two_series)
        # later series may overdraw a shared cell, so allow one overlap
        assert text.count("*") >= 2 + 1  # points + legend
        assert text.count("o") >= 3 + 1

    def test_extremes_on_borders(self):
        text = ascii_chart({"s": [(0, 0.0), (10, 1.0)]}, width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line]
        body = [line.split("|", 1)[1] for line in rows]
        assert body[0].rstrip().endswith("*")  # max y at top-right
        assert body[-1].lstrip().startswith("*")  # min y at bottom-left

    def test_log_scale(self, two_series):
        linear = ascii_chart(two_series)
        logged = ascii_chart(two_series, log_y=True)
        assert linear != logged

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(1, 0.0)]}, log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_too_small_rejected(self, two_series):
        with pytest.raises(ValueError):
            ascii_chart(two_series, width=5)

    def test_constant_series_ok(self):
        text = ascii_chart({"flat": [(1, 2.0), (5, 2.0)]})
        assert "flat" in text

    def test_cli_chart_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["ep", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "(series view)" in out
