"""Tests for unit conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    bytes_per_second,
    cycles_to_seconds,
    format_bytes,
    format_seconds,
    seconds_to_cycles,
)


class TestCycleConversion:
    def test_ksr1_cycle_is_50ns(self):
        assert cycles_to_seconds(1, 20e6) == pytest.approx(50e-9)

    def test_ksr2_cycle_is_25ns(self):
        assert cycles_to_seconds(1, 40e6) == pytest.approx(25e-9)

    def test_remote_latency_in_seconds(self):
        # 175 cycles at 20 MHz = 8.75 microseconds (Figure 2's top line)
        assert cycles_to_seconds(175, 20e6) == pytest.approx(8.75e-6)

    @given(st.floats(min_value=1e-9, max_value=1e3), st.sampled_from([20e6, 40e6]))
    def test_roundtrip(self, seconds, clock):
        assert cycles_to_seconds(seconds_to_cycles(seconds, clock), clock) == pytest.approx(
            seconds
        )

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1, 0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1, -5)


class TestByteUnits:
    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_bandwidth(self):
        # the leaf ring moves 1 GB/s
        assert bytes_per_second(1e9, 1.0) == pytest.approx(1e9)

    def test_bandwidth_rejects_zero_time(self):
        with pytest.raises(ValueError):
            bytes_per_second(1, 0)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(32 * MIB) == "32.0 MiB"
        assert format_bytes(512) == "512 B"
        assert format_bytes(256 * KIB) == "256.0 KiB"

    def test_format_seconds_scales(self):
        assert format_seconds(8.75e-6) == "8.750 us"
        assert format_seconds(0.009).endswith("ms")
        assert format_seconds(2.5).endswith(" s")
        assert format_seconds(3e-9).endswith("ns")
        assert format_seconds(0) == "0 s"
