"""Tests for deterministic RNG stream derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SeedStream, derive_rng


class TestDeriveRng:
    def test_same_seed_same_name_identical_streams(self):
        a = derive_rng(42, "cell/0/subcache")
        b = derive_rng(42, "cell/0/subcache")
        assert np.array_equal(a.integers(1 << 30, size=100), b.integers(1 << 30, size=100))

    def test_different_names_diverge(self):
        a = derive_rng(42, "cell/0/subcache")
        b = derive_rng(42, "cell/1/subcache")
        assert not np.array_equal(a.integers(1 << 30, size=100), b.integers(1 << 30, size=100))

    def test_different_seeds_diverge(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert not np.array_equal(a.integers(1 << 30, size=100), b.integers(1 << 30, size=100))

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            SeedStream("not a seed")  # type: ignore[arg-type]

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=30))
    def test_derivation_is_pure(self, seed, name):
        x = derive_rng(seed, name).integers(1 << 40)
        y = derive_rng(seed, name).integers(1 << 40)
        assert x == y


class TestSeedStream:
    def test_child_prefixing_matches_explicit_name(self):
        ss = SeedStream(7)
        direct = ss.rng("cell/3/subcache").integers(1 << 30)
        via_child = SeedStream(7).child("cell/3").rng("subcache").integers(1 << 30)
        assert direct == via_child

    def test_spawn_yields_distinct_streams(self):
        ss = SeedStream(7)
        draws = [g.integers(1 << 30) for g in ss.spawn("worker", 8)]
        assert len(set(draws)) == len(draws)

    def test_prefix_isolation(self):
        a = SeedStream(7, "ring").rng("jitter").integers(1 << 30)
        b = SeedStream(7, "cell").rng("jitter").integers(1 << 30)
        assert a != b
