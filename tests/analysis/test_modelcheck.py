"""Exhaustive protocol model checking: clean models pass, broken ones
are caught."""

from __future__ import annotations

import pytest

from repro.analysis.modelcheck import (
    SUBPAGE,
    CoherenceModel,
    InvariantViolation,
    ModelChecker,
    check_protocol,
)
from repro.coherence.states import SubpageState
from repro.errors import ConfigError


class TestCleanModel:
    @pytest.mark.parametrize("n_cells", [2, 3])
    def test_exhaustive_exploration_is_clean(self, n_cells):
        result = check_protocol(n_cells)
        assert result.ok, result.summary()
        assert result.violations == []
        assert result.non_drainable == []
        # the exploration is exhaustive: a transition was attempted from
        # every reachable state (not a truncated walk)
        assert result.n_transitions > result.n_states

    def test_two_cell_state_space_is_exact(self):
        # The 2-cell abstraction is small enough to pin down: regressing
        # this number means the transition relation changed shape.
        result = check_protocol(2)
        assert result.n_states == 15

    def test_three_cells_reach_more_states_than_two(self):
        assert check_protocol(3).n_states > check_protocol(2).n_states

    def test_atomic_states_are_reachable_and_drain(self):
        # sanity: the exploration actually visits ATOMIC configurations
        checker = ModelChecker(2)
        model = checker.model
        state = model.initial()
        state = model.apply(state, ("gsp", 0))
        assert state[1][0][0] is SubpageState.ATOMIC
        assert not model.quiescent(state)
        state = model.apply(state, ("rsp", 0))
        assert model.quiescent(state)

    def test_rejects_degenerate_cell_count(self):
        with pytest.raises(ConfigError):
            CoherenceModel(1)


class TestTransitionSemantics:
    def test_write_invalidates_other_copies(self):
        model = CoherenceModel(2)
        s = model.initial()
        s = model.apply(s, ("read", 0))     # cold: cell 0 EXCLUSIVE
        s = model.apply(s, ("read", 1))     # both SHARED now
        assert [c[0] for c in s[1]] == [SubpageState.SHARED, SubpageState.SHARED]
        s = model.apply(s, ("write", 1))
        assert s[1][0][0] is SubpageState.INVALID
        assert s[1][1][0] is SubpageState.EXCLUSIVE
        assert s[1][0][1] is False          # loser's data is stale

    def test_read_snarfs_placeholders_fresh(self):
        model = CoherenceModel(3)
        s = model.initial()
        s = model.apply(s, ("read", 0))
        s = model.apply(s, ("read", 1))
        s = model.apply(s, ("write", 2))    # 0 and 1 become placeholders
        s = model.apply(s, ("read", 0))     # 0 refetches; 1 snarfs
        states = [c[0] for c in s[1]]
        assert states == [SubpageState.SHARED] * 3
        assert all(fresh for _, fresh in s[1])

    def test_eviction_of_atomic_copy_is_never_enabled(self):
        model = CoherenceModel(2)
        s = model.apply(model.initial(), ("gsp", 0))
        assert ("evict", 0) not in model.enabled(s)
        with pytest.raises(InvariantViolation):
            model.apply(s, ("evict", 0))

    def test_blocked_cells_have_no_enabled_accesses(self):
        model = CoherenceModel(2)
        s = model.apply(model.initial(), ("gsp", 0))
        enabled = model.enabled(s)
        assert all(c != 1 for _, c in enabled)


class _SkipsInvalidation(CoherenceModel):
    """Broken: a write leaves other valid copies untouched."""

    def _invalidate_others(self, d, cells, keep_cell):
        pass


class _SnarfsPastOwner(CoherenceModel):
    """Broken: place-holders revalidate even while an exclusive owner
    exists (the stale-packet hazard the real protocol guards against)."""

    def _snarf_placeholders(self, d, cells):
        entry = d.entry(SUBPAGE)
        for holder in sorted(entry.placeholders):
            cells.set_state(holder, SubpageState.SHARED, fresh=False)
        entry.sharers |= set(entry.placeholders)
        entry.placeholders.clear()


class _SingleStepAtomicFill(CoherenceModel):
    """Broken: get_subpage installs ATOMIC directly from SHARED, a
    transition the protocol's legal-transition relation forbids."""

    def _do_gsp(self, d, cells, c, created):
        entry = d.entry(SUBPAGE)
        if entry.owner == c:
            d.set_atomic(SUBPAGE, c, True)
            cells.set_state(c, SubpageState.ATOMIC, fresh=cells.fresh[c])
            return created
        self._invalidate_others(d, cells, c)
        cells.set_state(c, SubpageState.ATOMIC, fresh=True)
        d.record_fill_exclusive(SUBPAGE, c, atomic=True)
        return True


class TestBrokenModelsAreCaught:
    @pytest.mark.parametrize(
        "broken", [_SkipsInvalidation, _SnarfsPastOwner, _SingleStepAtomicFill]
    )
    def test_each_broken_primitive_yields_violations(self, broken):
        result = ModelChecker(2, model=broken(2)).run()
        assert not result.ok
        assert result.violations, result.summary()
        # every violation carries a replayable counterexample trace
        assert all(v.message for v in result.violations)

    def test_skipped_invalidation_names_the_conflict(self):
        result = ModelChecker(2, model=_SkipsInvalidation(2)).run()
        text = "\n".join(str(v) for v in result.violations)
        assert "sharers" in text or "stale" in text


class _NeverReleases(CoherenceModel):
    """Broken: release_subpage is disabled, so ATOMIC never drains."""

    def enabled(self, state):
        return [a for a in super().enabled(state) if a[0] != "rsp"]


class TestDrainPath:
    def test_quiescent_state_needs_no_drain(self):
        checker = ModelChecker(2)
        assert checker.drain_path(checker.model.initial()) == ()

    def test_atomic_holder_drains_by_releasing(self):
        checker = ModelChecker(2)
        state = checker.model.apply(checker.model.initial(), ("gsp", 0))
        assert checker.drain_path(state) == (("rsp", 0),)

    def test_witness_actually_reaches_quiescence(self):
        checker = ModelChecker(3)
        model = checker.model
        state = model.initial()
        for action in (("read", 0), ("read", 1), ("gsp", 2)):
            state = model.apply(state, action)
        path = checker.drain_path(state)
        assert path
        for action in path:
            state = model.apply(state, action)
        assert model.quiescent(state)

    def test_wedged_state_raises_with_the_wedge_named(self):
        checker = ModelChecker(2, model=_NeverReleases(2))
        state = checker.model.apply(checker.model.initial(), ("gsp", 0))
        with pytest.raises(InvariantViolation, match="cannot drain"):
            checker.drain_path(state)

    def test_non_drainable_states_surface_as_violations_with_traces(self):
        result = ModelChecker(2, model=_NeverReleases(2)).run()
        assert result.non_drainable
        stuck = [v for v in result.violations if "no drain path" in v.message]
        assert len(stuck) == len(result.non_drainable)
        # the witness context is the path *into* the wedged state
        assert all(v.trace for v in stuck)
        assert all(v.action is None for v in stuck)
