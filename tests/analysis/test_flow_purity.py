"""KSR112 cache-key purity on fixture programs and the real tree."""

from __future__ import annotations

import textwrap

from repro.analysis.flow import purity_findings
from repro.analysis.flow.program import load_program


def _purity(**sources: str):
    relabelled = {
        name.replace("__", "/") + ".py": textwrap.dedent(src)
        for name, src in sources.items()
    }
    return purity_findings(load_program(sources=relabelled))


class TestUnstableTypes:
    def test_plain_class_kwarg_is_flagged(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                def __init__(self, x):
                    self.x = x
            def sweep(runner, func):
                cfg = Opaque(3)
                return runner.run(func, n_procs=4, cfg=cfg)
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]
        assert findings[0].detail == {"kwarg": "cfg", "type": "Opaque"}

    def test_direct_constructor_kwarg_is_flagged(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                pass
            def sweep(runner, func):
                return runner.run(func, cfg=Opaque())
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]

    def test_helper_return_annotation_is_chased(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                pass
            def _mk(r) -> "Opaque":
                return Opaque()
            def sweep(runner, func, rates):
                calls = [dict(n_procs=p, plan=_mk(r)) for p in (1, 2) for r in rates]
                return runner.map(func, calls)
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]
        assert findings[0].detail["kwarg"] == "plan"

    def test_adornment_loop_values_are_checked(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                pass
            def sweep(runner, func, names):
                calls = [dict(name=n) for n in names]
                obs = Opaque()
                for call in calls:
                    call["obs"] = obs
                return runner.map(func, calls)
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]
        assert findings[0].detail["kwarg"] == "obs"


class TestStableTypes:
    def test_dataclass_kwarg_is_clean(self):
        findings, _ = _purity(
            exp="""
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class Spec:
                x: int
            def sweep(runner, func):
                return runner.run(func, cfg=Spec(3))
            """
        )
        assert findings == []

    def test_cache_token_class_is_clean(self):
        findings, _ = _purity(
            exp="""
            class Plan:
                @property
                def cache_token(self):
                    return ("plan", 1)
            def sweep(runner, func):
                return runner.run(func, plan=Plan())
            """
        )
        assert findings == []

    def test_annotated_param_class_is_classified(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                pass
            def sweep(runner, func, cfg: "Opaque"):
                return runner.run(func, cfg=cfg)
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]

    def test_constants_and_builtins_are_clean(self):
        findings, stats = _purity(
            exp="""
            def sweep(runner, func, seed: int, frac: float):
                calls = [dict(n_procs=p, seed=seed, frac=frac, tag="x") for p in (1, 2)]
                return runner.map(func, calls)
            """
        )
        assert findings == []
        assert stats["kwargs_checked"] == 4

    def test_unresolved_values_are_counted_not_flagged(self):
        findings, stats = _purity(
            exp="""
            def sweep(runner, func, mystery):
                return runner.run(func, thing=mystery.payload)
            """
        )
        assert findings == []
        assert stats["kwargs_unresolved"] == 1


class TestReceiverSelection:
    def test_non_runner_run_calls_are_ignored(self):
        findings, stats = _purity(
            exp="""
            class Opaque:
                pass
            def bench(kernel):
                return kernel.run(4, cfg=Opaque())
            """
        )
        assert findings == []
        assert stats["call_sites"] == 0

    def test_local_sweeprunner_binding_is_recognized(self):
        findings, _ = _purity(
            exp="""
            class Opaque:
                pass
            def sweep(func, cache):
                r = SweepRunner(cache)
                return r.run(func, cfg=Opaque())
            """
        )
        assert [f.rule for f in findings] == ["KSR112"]


class TestRealTree:
    def test_real_tree_is_clean_and_covers_sites(self):
        findings, stats = purity_findings(load_program())
        assert findings == []
        # the experiments + service layers keep feeding the sweep cache
        assert stats["call_sites"] >= 20
        assert stats["kwargs_checked"] >= 60
