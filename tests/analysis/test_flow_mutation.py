"""Mutation testing of the KSR113 conformance extractor.

Each test perturbs a copy of ``coherence/protocol.py`` source the way
a real regression would — dropping a transition, flipping a guard,
widening a state set — and asserts the conformance diff flags the
mutant with a counterexample naming the offending transition.  This is
what makes the extractor trustworthy: it fails when it should, not
just passes when it should.
"""

from __future__ import annotations

import pytest

from repro.analysis.flow.conformance import conformance_findings
from repro.analysis.lint import repro_root


def _protocol_source() -> str:
    return (repro_root() / "coherence" / "protocol.py").read_text(encoding="utf-8")


def _mutate(old: str, new: str) -> str:
    source = _protocol_source()
    assert old in source, f"mutation anchor vanished from protocol.py: {old!r}"
    mutated = source.replace(old, new)
    assert mutated != source
    return mutated


#: (name, expected op in the counterexample, anchor, replacement)
MUTANTS = [
    (
        "drop-release-set_atomic",
        "rsp",
        "self.directory.set_atomic(subpage_id, cell_id, False)",
        "pass",
    ),
    (
        "flip-owner-demote-guard",
        "poststore",
        "if entry.owner is not None and entry.owner != cell_id:",
        "if entry.owner is not None and entry.owner == cell_id:",
    ),
    (
        "widen-exclusive-to-atomic",
        "write",
        "atomic=atomic,",
        "atomic=True,",
    ),
]


@pytest.mark.parametrize("name,op,old,new", MUTANTS, ids=[m[0] for m in MUTANTS])
def test_mutant_is_flagged_with_named_transition(name, op, old, new):
    findings, _ = conformance_findings(_mutate(old, new))
    assert findings, f"mutant {name} escaped the conformance diff"
    ops = {f.detail["op"] for f in findings}
    assert op in ops, f"mutant {name} flagged, but not on op {op}: {ops}"
    for f in findings:
        assert f.rule == "KSR113"
        assert f.path == "coherence/protocol.py"
        assert f.line > 0
        # the counterexample names the transition on both sides
        assert "guard" in f.detail and "model" in f.detail and "code" in f.detail
        assert set(f.detail["guard"]) == {
            "atomic",
            "owner_is_actor",
            "owner_exists",
            "has_valid",
            "created",
            "placeholders",
            "actor_valid",
        }


def test_unmutated_protocol_has_no_findings():
    findings, _ = conformance_findings(_protocol_source())
    assert findings == []


def test_missing_transition_reads_as_model_requires():
    findings, _ = conformance_findings(
        _mutate("self.directory.set_atomic(subpage_id, cell_id, False)", "pass")
    )
    kinds = {f.detail["kind"] for f in findings}
    assert "missing_in_code" in kinds
    assert any("abstract model requires" in f.message for f in findings)


def test_widened_transition_reads_as_model_forbids():
    findings, _ = conformance_findings(_mutate("atomic=atomic,", "atomic=True,"))
    kinds = {f.detail["kind"] for f in findings}
    assert "forbidden_in_model" in kinds
    assert any("abstract model forbids" in f.message for f in findings)
