"""Each forbidden pattern is flagged; the real tree is clean."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import (
    LintViolation,
    lint_paths,
    lint_source,
    render_report,
)


def _lint(source: str, relpath: str = "sim/engine.py") -> list[LintViolation]:
    return lint_source(textwrap.dedent(source), relpath)


def _codes(violations: list[LintViolation]) -> list[str]:
    return [v.code for v in violations]


class TestKSR100WallClockImports:
    @pytest.mark.parametrize("module", ["time", "random", "datetime"])
    def test_plain_import_is_flagged(self, module):
        flags = _lint(f"import {module}\n")
        assert _codes(flags) == ["KSR100"]
        assert module in flags[0].message

    def test_from_import_is_flagged(self):
        assert _codes(_lint("from time import monotonic\n")) == ["KSR100"]

    def test_submodule_import_is_flagged(self):
        assert _codes(_lint("import datetime.timezone\n")) == ["KSR100"]

    def test_import_inside_function_is_flagged(self):
        flags = _lint(
            """
            def jitter():
                import random
                return random.random()
            """
        )
        assert _codes(flags) == ["KSR100"]

    @pytest.mark.parametrize(
        "relpath", ["util/stats.py", "experiments/cli.py", "analysis/lint.py"]
    )
    def test_non_sim_packages_may_import_time(self, relpath):
        assert _lint("import time\n", relpath) == []

    def test_lookalike_modules_are_not_flagged(self):
        assert _lint("import timeit\nfrom randomish import x\n") == []

    def test_relative_imports_are_not_flagged(self):
        assert _lint("from .time import Clock\n", "sim/engine.py") == []


class TestKSR101StateMutation:
    def test_mutator_call_on_local_cache_is_flagged(self):
        flags = _lint(
            "cell.local_cache.set_state(sp, SubpageState.EXCLUSIVE)\n",
            "machine/cell.py",
        )
        assert _codes(flags) == ["KSR101"]
        assert "protocol" in flags[0].message

    @pytest.mark.parametrize(
        "method", ["set_state", "fill", "invalidate", "snarf", "drop"]
    )
    def test_every_mutator_method_is_covered(self, method):
        flags = _lint(f"self.local_cache.{method}(sp)\n", "ring/hierarchy.py")
        assert _codes(flags) == ["KSR101"]

    def test_states_table_store_is_flagged(self):
        flags = _lint(
            "cache._states[sp] = SubpageState.INVALID\n", "machine/cell.py"
        )
        assert _codes(flags) == ["KSR101"]

    def test_states_table_augmented_store_is_flagged(self):
        flags = _lint("cache._states[sp] |= bit\n", "machine/cell.py")
        assert _codes(flags) == ["KSR101"]

    @pytest.mark.parametrize(
        "relpath",
        ["coherence/protocol.py", "coherence/ops.py", "memory/local_cache.py"],
    )
    def test_protocol_modules_may_mutate(self, relpath):
        src = "self.local_cache.set_state(sp, s)\ncache._states[sp] = s\n"
        assert _lint(src, relpath) == []

    def test_mutator_names_on_other_receivers_pass(self):
        # "drop"/"fill" are common verbs; only cache receivers count
        assert _lint("queue.drop(item)\nbuffer.fill(0)\n", "sim/engine.py") == []


class TestKSR102TimeEquality:
    def test_eq_on_now_attribute_is_flagged(self):
        flags = _lint("if engine.now == deadline:\n    pass\n")
        assert _codes(flags) == ["KSR102"]
        assert "tolerance" in flags[0].message

    def test_neq_is_flagged_too(self):
        assert _codes(_lint("ok = msg.completed_at != t\n")) == ["KSR102"]

    def test_bare_now_name_is_flagged(self):
        assert _codes(_lint("if now == 0.0:\n    pass\n")) == ["KSR102"]

    def test_chained_comparison_hits_each_eq(self):
        flags = _lint("assert a.injected_at == b.injected_at == t\n")
        assert _codes(flags) == ["KSR102", "KSR102"]

    def test_ordering_comparisons_pass(self):
        src = "if engine.now >= deadline or msg.completes_at < t:\n    pass\n"
        assert _lint(src) == []

    def test_non_time_names_pass(self):
        assert _lint("if a.count == b.count:\n    pass\n") == []

    def test_non_sim_packages_are_exempt(self):
        assert _lint("if engine.now == 0.0:\n    pass\n", "util/stats.py") == []


class TestKSR103RngConstruction:
    def test_random_random_is_flagged(self):
        flags = _lint("rng = random.Random(42)\n", "experiments/foo.py")
        assert _codes(flags) == ["KSR103"]
        assert "random.Random" in flags[0].message
        assert "repro.util.rng" in flags[0].message

    def test_system_random_is_flagged(self):
        flags = _lint("rng = random.SystemRandom()\n", "experiments/foo.py")
        assert _codes(flags) == ["KSR103"]

    def test_numpy_legacy_randomstate_is_flagged(self):
        flags = _lint("rng = np.random.RandomState(7)\n", "kernels/foo.py")
        assert _codes(flags) == ["KSR103"]
        assert "np.random.RandomState" in flags[0].message

    def test_from_import_alias_is_flagged(self):
        flags = _lint(
            """
            from random import Random as Rng
            rng = Rng(42)
            """,
            "experiments/foo.py",
        )
        assert _codes(flags) == ["KSR103"]
        assert "Rng" in flags[0].message

    def test_default_rng_is_not_flagged(self):
        # The seeded Generator API is the sanctioned numpy entry point.
        assert _lint("rng = np.random.default_rng(7)\n", "kernels/foo.py") == []

    def test_unrelated_constructors_are_not_flagged(self):
        assert _lint("x = Random(1)\ny = state.RandomState\n", "util/stats.py") == []

    def test_rng_module_itself_is_exempt(self):
        assert _lint("rng = np.random.RandomState(7)\n", "util/rng.py") == []

    def test_applies_outside_sim_packages_too(self):
        # KSR100 already bans `random` inside sim packages; KSR103 must
        # reach code KSR100 does not (experiments, kernels, analysis).
        src = "import random\nrng = random.Random(1)\n"
        flags = _lint(src, "analysis/foo.py")
        assert _codes(flags) == ["KSR103"]


class TestKSR114GrantHeapMutation:
    def test_heapreplace_on_free_is_flagged(self):
        violations = _lint(
            """
            from heapq import heapreplace

            class Shortcut:
                def grab(self, item):
                    heapreplace(self._free, item)
            """,
            "ring/patch.py",
        )
        assert _codes(violations) == ["KSR114"]

    def test_module_qualified_heapreplace_is_flagged(self):
        violations = _lint(
            """
            import heapq

            def grab(ring, item):
                heapq.heapreplace(ring._free, item)
            """,
            "ring/patch.py",
        )
        assert _codes(violations) == ["KSR114"]

    def test_subscripted_heap_is_flagged(self):
        violations = _lint(
            """
            from heapq import heapreplace

            def grab(self, subring, item):
                heapreplace(self._free[subring], item)
            """,
            "ring/patch.py",
        )
        assert _codes(violations) == ["KSR114"]

    def test_alias_evasion_is_flagged(self):
        violations = _lint(
            """
            from heapq import heapreplace

            def grab(ring, subring, item):
                heap = ring._free[subring]
                heapreplace(heap, item)
            """,
            "ring/patch.py",
        )
        assert _codes(violations) == ["KSR114"]

    def test_slotted_ring_claim_is_allowed(self):
        violations = _lint(
            """
            from heapq import heapreplace

            class SlottedRing:
                def _claim(self, item):
                    heapreplace(self._free, item)
            """,
            "ring/slotted_ring.py",
        )
        assert violations == []

    def test_batch_advancer_is_allowed(self):
        violations = _lint(
            """
            from heapq import heapreplace

            class BatchAdvancer:
                def _step(self, ring, item):
                    heapreplace(ring._free, item)
            """,
            "ring/batch.py",
        )
        assert violations == []

    def test_other_heaps_pass(self):
        violations = _lint(
            """
            from heapq import heapreplace

            def rotate(queue, item):
                heapreplace(queue, item)
            """,
            "ring/patch.py",
        )
        assert violations == []

    def test_claim_outside_slotted_ring_is_flagged(self):
        violations = _lint(
            """
            from heapq import heapreplace

            class Imposter:
                def _claim(self, item):
                    heapreplace(self._free, item)
            """,
            "ring/patch.py",
        )
        assert _codes(violations) == ["KSR114"]


class TestTreeAndReport:
    def test_real_tree_is_clean(self):
        assert lint_paths() == []

    def test_sweep_runner_module_is_clean(self):
        # regression: the process-pool sweep runner lives outside the
        # KSR100-linted sim packages, so its os/pool machinery must not
        # trip the linter where it actually lives...
        import repro.experiments.sweep as sweep
        from pathlib import Path

        source = Path(sweep.__file__).read_text(encoding="utf-8")
        assert lint_source(source, "experiments/sweep.py") == []

    def test_wallclock_seam_import_passes_in_sim(self):
        # ...and the sanctioned metering seam is importable from sim
        # packages, while a direct `import time` there stays forbidden.
        assert _lint("from repro.util.wallclock import perf_counter\n") == []
        assert _codes(_lint("import time\n")) == ["KSR100"]

    def test_render_report_formats_location(self):
        flags = _lint("import time\n", "sim/engine.py")
        report = render_report(flags)
        assert report.startswith("sim/engine.py:1:0: KSR100")

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "sim/engine.py")


class TestKSR101AliasRegression:
    """The documented KSR101 evasion: aliasing the cache into a local.

    The per-file lint now catches the single-assignment spelling; the
    multi-hop spelling still evades it (by design — that needs real
    dataflow) and is covered by ``ksr-analyze flow``'s KSR111 instead.
    """

    SINGLE_HOP = """
    def poke(cell):
        cache = cell.local_cache
        cache.set_state(3, None)
    """

    MULTI_HOP = """
    def poke(cell):
        a = cell.local_cache
        b = a
        b.set_state(3, None)
    """

    def test_single_assignment_alias_no_longer_evades_lint(self):
        flags = _lint(self.SINGLE_HOP, relpath="machine/cell.py")
        assert _codes(flags) == ["KSR101"]
        assert "cache.set_state" in flags[0].message

    def test_alias_states_write_is_flagged(self):
        flags = _lint(
            """
            def poke(cell):
                cache = cell.local_cache
                cache._states[7] = None
            """,
            relpath="machine/cell.py",
        )
        assert _codes(flags) == ["KSR101"]

    def test_alias_in_whitelisted_module_is_fine(self):
        assert _lint(self.SINGLE_HOP, relpath="coherence/protocol.py") == []

    def test_alias_reads_are_fine(self):
        flags = _lint(
            """
            def peek(cell):
                cache = cell.local_cache
                return cache.state_of(3)
            """,
            relpath="machine/cell.py",
        )
        assert flags == []

    def test_multi_hop_still_evades_lint_but_flow_catches_it(self):
        import textwrap

        from repro.analysis.flow import run_flow

        # the per-file lint's known residual gap...
        assert _lint(self.MULTI_HOP, relpath="machine/cell.py") == []
        # ...is exactly what flow's KSR111 closes
        report = run_flow(
            sources={"machine/cell.py": textwrap.dedent(self.MULTI_HOP)},
            conformance=False,
        )
        assert [f.rule for f in report.findings] == ["KSR111"]
