"""Hypothesis property: canonicalization is a true congruence.

The symmetry reduction claims that relabelling cells and subpages by
any permutation never changes a schedule's behaviour class.  Here
hypothesis draws arbitrary model schedules plus arbitrary label
permutations and checks the claim end to end:

* the permuted schedule canonicalizes to the *same* representative and
  hashes to the same behaviour key (model-level congruence);
* lowering both the canonical representative and the permuted schedule
  to the real simulator yields identical outcomes up to the
  permutation — same observed-value history, and final directory /
  created / memory vectors that agree under the relabelling maps
  (executable-level congruence).

If canonicalization ever merged two genuinely different behaviours (or
split one), one of these checks would produce a counterexample
schedule small enough to replay by hand.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.scenarios import (
    ScenarioModel,
    behaviour_key,
    canonicalize,
    differential_run,
    is_canonical,
)

N_CELLS = 3
N_SUBPAGES = 2
MAX_LEN = 4


@st.composite
def model_schedules(draw):
    """An arbitrary enabled schedule (any labels, not just canonical)."""
    model = ScenarioModel(N_CELLS, N_SUBPAGES)
    state = model.initial()
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=MAX_LEN))):
        enabled = model.enabled(state)
        step = draw(st.sampled_from(enabled))
        state = model.apply(state, step)
        steps.append(step)
    return tuple(steps)


@st.composite
def schedule_with_permutation(draw):
    steps = draw(model_schedules())
    cell_perm = draw(st.permutations(range(N_CELLS)))
    sp_perm = draw(st.permutations(range(N_SUBPAGES)))
    permuted = tuple((op, cell_perm[c], sp_perm[sp]) for op, c, sp in steps)
    return steps, permuted


class TestCanonicalizationIsACongruence:
    @given(schedule_with_permutation())
    @settings(max_examples=150, deadline=None)
    def test_permuted_schedules_share_representative_and_key(self, pair):
        steps, permuted = pair
        model = ScenarioModel(N_CELLS, N_SUBPAGES)
        assert canonicalize(permuted)[0] == canonicalize(steps)[0]
        assert behaviour_key(model, permuted) == behaviour_key(model, steps)

    @given(model_schedules())
    @settings(max_examples=100, deadline=None)
    def test_canonicalize_is_idempotent(self, steps):
        canon, _, _ = canonicalize(steps)
        assert is_canonical(canon)
        assert canonicalize(canon)[0] == canon

    @given(schedule_with_permutation())
    @settings(max_examples=25, deadline=None)
    def test_lowered_runs_agree_up_to_the_permutation(self, pair):
        steps, permuted = pair
        model = ScenarioModel(N_CELLS, N_SUBPAGES)
        canon = canonicalize(steps)[0]
        r_canon = differential_run(canon, model=model)
        r_perm = differential_run(permuted, model=model)
        assert r_canon.ok, r_canon.divergences
        assert r_perm.ok, r_perm.divergences

        # Observed-value history is label-free: reads sit at the same
        # schedule indices and writes deposit the same index-derived
        # values, so the histories must be *identical*.
        assert r_perm.outcome.observations == r_canon.outcome.observations

        # Final state vectors agree under the relabelling maps.
        _, cell_map, sp_map = canonicalize(permuted)
        for sp_orig, sp_canon in sp_map.items():
            assert r_perm.outcome.memory[sp_orig] == r_canon.outcome.memory[sp_canon]
            assert r_perm.outcome.created[sp_orig] == r_canon.outcome.created[sp_canon]
            for cell_orig, cell_canon in cell_map.items():
                assert (
                    r_perm.outcome.directory_states[sp_orig][cell_orig]
                    == r_canon.outcome.directory_states[sp_canon][cell_canon]
                )
