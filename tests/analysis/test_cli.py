"""``ksr-analyze`` drives all three passes and reports via exit status."""

from __future__ import annotations

from repro.analysis.cli import PASSES, main
from repro.experiments.cli import main as experiments_main


class TestKsrAnalyze:
    def test_list_names_every_pass(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in PASSES:
            assert key in out

    def test_unknown_pass_exits_2(self, capsys):
        assert main(["no-such-pass"]) == 2
        assert "no-such-pass" in capsys.readouterr().err

    def test_modelcheck_pass_is_clean(self, capsys):
        assert main(["modelcheck", "--cells", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "15 states" in out

    def test_lint_pass_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_races_pass_is_clean(self, capsys):
        assert main(["races", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]: OK" in out

    def test_default_selection_runs_everything(self, capsys):
        assert main(["--cells", "2", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]" in out
        assert "lint[src/repro]" in out
        assert "states" in out

    def test_degenerate_cell_count_is_a_clean_error(self, capsys):
        assert main(["modelcheck", "--cells", "1"]) == 2
        err = capsys.readouterr().err
        assert "at least 2 cells" in err and "Traceback" not in err

    def test_output_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "analysis.md"
        assert main(["lint", "--output", str(report)]) == 0
        capsys.readouterr()
        text = report.read_text()
        assert text.startswith("# ksr-analyze report")
        assert "## lint" in text


class TestSharedCliHelpers:
    """ksr-experiments rides on the same repro.util.cli helpers."""

    def test_experiments_list_still_works(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiments_unknown_id_exits_2(self, capsys):
        assert experiments_main(["not-an-experiment"]) == 2
        assert "not-an-experiment" in capsys.readouterr().err


class TestFlowPassAndFormats:
    """The flow pass, the shared reporter formats, and the baseline."""

    def test_flow_pass_is_clean_under_strict(self, capsys):
        assert main(["flow", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "flow[src/repro]: OK" in out
        assert "conformance" in out

    def test_json_format_reports_pass_outcomes(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "ksr-analyze"
        assert doc["findings"] == []
        assert doc["passes"]["lint"]["ok"] is True

    def test_sarif_format_carries_rule_catalog(self, capsys):
        import json

        assert main(["lint", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "ksr-analyze"
        assert {r["id"] for r in driver["rules"]} >= {"KSR101", "KSR110", "KSR113"}

    def test_format_output_writes_rendered_report(self, tmp_path, capsys):
        import json

        target = tmp_path / "report.sarif"
        assert main(["lint", "--format", "sarif", "--output", str(target)]) == 0
        capsys.readouterr()
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"

    def test_write_baseline_creates_file(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", "--baseline", str(target)]) == 0
        assert "wrote 0 baseline" in capsys.readouterr().out
        assert target.exists()

    def test_stale_baseline_entry_fails_only_under_strict(self, tmp_path, capsys):
        import json

        stale = tmp_path / "baseline.json"
        stale.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "KSR110",
                            "path": "gone.py",
                            "span": "0" * 16,
                            "note": "fixed long ago",
                        }
                    ],
                }
            )
        )
        assert main(["lint", "--baseline", str(stale)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
        assert main(["lint", "--baseline", str(stale), "--strict"]) == 1

    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["lint", "--baseline", str(bad)]) == 2
        assert "unreadable baseline" in capsys.readouterr().err
