"""``ksr-analyze`` drives all three passes and reports via exit status."""

from __future__ import annotations

from repro.analysis.cli import PASSES, main
from repro.experiments.cli import main as experiments_main


class TestKsrAnalyze:
    def test_list_names_every_pass(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in PASSES:
            assert key in out

    def test_unknown_pass_exits_2(self, capsys):
        assert main(["no-such-pass"]) == 2
        assert "no-such-pass" in capsys.readouterr().err

    def test_modelcheck_pass_is_clean(self, capsys):
        assert main(["modelcheck", "--cells", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "15 states" in out

    def test_lint_pass_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_races_pass_is_clean(self, capsys):
        assert main(["races", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]: OK" in out

    def test_default_selection_runs_everything(self, capsys):
        assert main(["--cells", "2", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]" in out
        assert "lint[src/repro]" in out
        assert "states" in out

    def test_degenerate_cell_count_is_a_clean_error(self, capsys):
        assert main(["modelcheck", "--cells", "1"]) == 2
        err = capsys.readouterr().err
        assert "at least 2 cells" in err and "Traceback" not in err

    def test_output_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "analysis.md"
        assert main(["lint", "--output", str(report)]) == 0
        capsys.readouterr()
        text = report.read_text()
        assert text.startswith("# ksr-analyze report")
        assert "## lint" in text


class TestSharedCliHelpers:
    """ksr-experiments rides on the same repro.util.cli helpers."""

    def test_experiments_list_still_works(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiments_unknown_id_exits_2(self, capsys):
        assert experiments_main(["not-an-experiment"]) == 2
        assert "not-an-experiment" in capsys.readouterr().err


class TestFlowPassAndFormats:
    """The flow pass, the shared reporter formats, and the baseline."""

    def test_flow_pass_is_clean_under_strict(self, capsys):
        assert main(["flow", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "flow[src/repro]: OK" in out
        assert "conformance" in out

    def test_json_format_reports_pass_outcomes(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "ksr-analyze"
        assert doc["findings"] == []
        assert doc["passes"]["lint"]["ok"] is True

    def test_sarif_format_carries_rule_catalog(self, capsys):
        import json

        assert main(["lint", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "ksr-analyze"
        assert {r["id"] for r in driver["rules"]} >= {"KSR101", "KSR110", "KSR113"}

    def test_format_output_writes_rendered_report(self, tmp_path, capsys):
        import json

        target = tmp_path / "report.sarif"
        assert main(["lint", "--format", "sarif", "--output", str(target)]) == 0
        capsys.readouterr()
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"

    def test_write_baseline_creates_file(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", "--baseline", str(target)]) == 0
        assert "wrote 0 baseline" in capsys.readouterr().out
        assert target.exists()

    def test_stale_baseline_entry_fails_only_under_strict(self, tmp_path, capsys):
        import json

        stale = tmp_path / "baseline.json"
        stale.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "KSR110",
                            "path": "gone.py",
                            "span": "0" * 16,
                            "note": "fixed long ago",
                        }
                    ],
                }
            )
        )
        assert main(["lint", "--baseline", str(stale)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
        assert main(["lint", "--baseline", str(stale), "--strict"]) == 1

    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["lint", "--baseline", str(bad)]) == 2
        assert "unreadable baseline" in capsys.readouterr().err


class TestScenariosPass:
    """The symbolic scenario corpus pass (KSR120–121)."""

    def test_enumerate_mode_reports_coverage(self, capsys):
        assert main(
            ["scenarios", "--mode", "enumerate", "--cells", "2",
             "--subpages", "1", "--depth", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios[extraction]: OK" in out
        assert "scenarios[2c/1sp/depth 3]: 43 classes" in out
        assert "scenarios[coverage]:" in out
        assert "scenarios[differential]" not in out

    def test_stats_mode_executes_a_sample(self, capsys):
        assert main(
            ["scenarios", "--cells", "2", "--subpages", "1",
             "--depth", "3", "--sample", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios[differential]: OK — 5 representative(s) executed" in out

    def test_run_mode_executes_every_class(self, capsys):
        assert main(
            ["scenarios", "--mode", "run", "--cells", "2",
             "--subpages", "1", "--depth", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios[differential]: OK — 43 representative(s) executed" in out
        assert "0 divergence(s)" in out

    def test_corpus_artifact_is_written(self, tmp_path, capsys):
        import json

        corpus = tmp_path / "corpus.json"
        assert main(
            ["scenarios", "--mode", "enumerate", "--cells", "2",
             "--subpages", "1", "--depth", "2", "--corpus", str(corpus)]
        ) == 0
        assert "scenarios[corpus]: wrote" in capsys.readouterr().out
        doc = json.loads(corpus.read_text())
        assert doc["configs"][0]["n_classes"] == len(doc["configs"][0]["classes"])

    def test_manifest_round_trip_via_cli(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        assert main(
            ["scenarios", "--write-manifest", "--manifest", str(manifest),
             "--sample", "2"]
        ) == 0
        assert "scenarios[manifest]: pinned" in capsys.readouterr().out
        assert main(["scenarios", "--check", "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "scenarios[check]: OK" in out

    def test_tampered_manifest_fails_check_with_ksr121(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "manifest.json"
        assert main(
            ["scenarios", "--write-manifest", "--manifest", str(manifest),
             "--sample", "2"]
        ) == 0
        capsys.readouterr()
        doc = json.loads(manifest.read_text())
        doc["configs"][0]["n_classes"] += 1
        manifest.write_text(json.dumps(doc))
        assert main(["scenarios", "--check", "--manifest", str(manifest)]) == 1
        out = capsys.readouterr().out
        assert "KSR121" in out and "scenarios[check]: FAIL" in out

    def test_missing_manifest_is_a_clean_error(self, tmp_path, capsys):
        assert main(
            ["scenarios", "--check", "--manifest", str(tmp_path / "none.json")]
        ) == 2
        err = capsys.readouterr().err
        assert "manifest" in err and "Traceback" not in err
