"""``ksr-analyze`` drives all three passes and reports via exit status."""

from __future__ import annotations

from repro.analysis.cli import PASSES, main
from repro.experiments.cli import main as experiments_main


class TestKsrAnalyze:
    def test_list_names_every_pass(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in PASSES:
            assert key in out

    def test_unknown_pass_exits_2(self, capsys):
        assert main(["no-such-pass"]) == 2
        assert "no-such-pass" in capsys.readouterr().err

    def test_modelcheck_pass_is_clean(self, capsys):
        assert main(["modelcheck", "--cells", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "15 states" in out

    def test_lint_pass_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_races_pass_is_clean(self, capsys):
        assert main(["races", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]: OK" in out

    def test_default_selection_runs_everything(self, capsys):
        assert main(["--cells", "2", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "audit[race-free workload]" in out
        assert "lint[src/repro]" in out
        assert "states" in out

    def test_degenerate_cell_count_is_a_clean_error(self, capsys):
        assert main(["modelcheck", "--cells", "1"]) == 2
        err = capsys.readouterr().err
        assert "at least 2 cells" in err and "Traceback" not in err

    def test_output_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "analysis.md"
        assert main(["lint", "--output", str(report)]) == 0
        capsys.readouterr()
        text = report.read_text()
        assert text.startswith("# ksr-analyze report")
        assert "## lint" in text


class TestSharedCliHelpers:
    """ksr-experiments rides on the same repro.util.cli helpers."""

    def test_experiments_list_still_works(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_experiments_unknown_id_exits_2(self, capsys):
        assert experiments_main(["not-an-experiment"]) == 2
        assert "not-an-experiment" in capsys.readouterr().err
