"""Baseline add/suppress/expire lifecycle and span-hash stability."""

from __future__ import annotations

import json

import pytest

from repro.analysis.flow.baseline import Baseline, BaselineError
from repro.analysis.flow.findings import Finding, span_hash


def _finding(rule="KSR110", path="mod.py", line=5, snippet="engine.schedule(t, cb)"):
    return Finding(
        rule=rule,
        path=path,
        line=line,
        col=4,
        message="nondeterministic value reaches determinism sink",
        snippet=snippet,
    )


class TestSpanHash:
    def test_line_drift_does_not_change_identity(self):
        a = _finding(line=5)
        b = _finding(line=42)  # code moved; same flagged text
        assert a.span == b.span
        assert a.key() == b.key()

    def test_whitespace_is_normalized(self):
        assert span_hash("KSR110", "mod.py", "engine.schedule(t, cb)") == span_hash(
            "KSR110", "mod.py", "engine.schedule(t,\n        cb)"
        )

    def test_rule_and_path_are_part_of_identity(self):
        assert _finding(rule="KSR110").span != _finding(rule="KSR111").span
        assert _finding(path="a.py").span != _finding(path="b.py").span


class TestLifecycle:
    def test_write_then_suppress(self, tmp_path):
        path = tmp_path / "baseline.json"
        f = _finding()
        assert Baseline.write(path, [f]) == 1
        baseline = Baseline.load(path)
        kept, suppressed = baseline.apply([f])
        assert kept == []
        assert suppressed == 1
        assert baseline.stale() == []

    def test_new_findings_pass_through(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [_finding()])
        baseline = Baseline.load(path)
        fresh = _finding(snippet="point_key(func, stamp=time.time())")
        kept, suppressed = baseline.apply([_finding(), fresh])
        assert kept == [fresh]
        assert suppressed == 1

    def test_fixed_findings_leave_stale_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [_finding()])
        baseline = Baseline.load(path)
        kept, suppressed = baseline.apply([])  # the finding was fixed
        assert kept == [] and suppressed == 0
        stale = baseline.stale()
        assert len(stale) == 1
        assert stale[0]["rule"] == "KSR110"

    def test_rewrite_prunes_stale_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [_finding(), _finding(rule="KSR112")])
        # only one finding survives; rewriting drops the other entry
        assert Baseline.write(path, [_finding()]) == 1
        doc = json.loads(path.read_text())
        assert len(doc["entries"]) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        kept, suppressed = baseline.apply([_finding()])
        assert suppressed == 0 and len(kept) == 1

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_entries_sorted_for_clean_diffs(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(
            path,
            [
                _finding(path="z.py"),
                _finding(path="a.py"),
                _finding(path="a.py", rule="KSR111"),
            ],
        )
        doc = json.loads(path.read_text())
        keys = [(e["path"], e["rule"]) for e in doc["entries"]]
        assert keys == sorted(keys)
