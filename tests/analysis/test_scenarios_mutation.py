"""Broken-model mutation tests for the scenario differential oracle.

Each mutant damages one guard/action of the abstract protocol model (or
its data semantics) in a way that stays *internally consistent* — the
mutant never crashes its own enumeration — and the differential oracle
must catch it: at least one enumerated class representative, executed
on the real simulator, lands outside the mutant's predicted behaviour
class.  This is the scenario-level analogue of
``tests/analysis/test_flow_mutation.py``.
"""

import pytest

from repro.analysis.modelcheck import SUBPAGE, CoherenceModel, InvariantViolation
from repro.coherence.states import SubpageState
from repro.analysis.scenarios import (
    ScenarioModel,
    differential_run,
    enumerate_classes,
)

N_CELLS = 3
DEPTH = 3


# ----------------------------------------------------------------------
# The mutants.  Each overrides exactly one primitive of the stock
# CoherenceModel (or one data primitive of ScenarioModel) and keeps the
# result self-consistent, so enumeration proceeds and only the
# simulator can expose the lie.
# ----------------------------------------------------------------------


class _ColdReadShared(CoherenceModel):
    """COMA cold first touch fills SHARED instead of EXCLUSIVE."""

    def _do_read(self, d, cells, c, created):
        entry = d.entry(SUBPAGE)
        if not entry.has_valid_copy and not entry.created:
            cells.set_state(c, SubpageState.SHARED, fresh=True)
            d.record_fill_shared(SUBPAGE, c)
            return True
        return super()._do_read(d, cells, c, created)


class _GspLosesAtomic(CoherenceModel):
    """get_subpage fetches the copy but forgets to take the lock bit."""

    def _do_gsp(self, d, cells, c, created):
        entry = d.entry(SUBPAGE)
        if entry.owner == c:
            return created  # "upgrade" that never sets atomic
        if not entry.has_valid_copy and not entry.placeholders and not entry.created:
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
        else:
            self._invalidate_others(d, cells, c)
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
            cells.stale_others(c)
        d.record_fill_exclusive(SUBPAGE, c)
        return True


class _RspToShared(CoherenceModel):
    """release_subpage demotes the owner all the way to SHARED."""

    def _do_rsp(self, d, cells, c, created):
        entry = d.entry(SUBPAGE)
        if entry.owner != c or not entry.atomic:
            raise InvariantViolation(
                f"cell {c} releasing subpage it does not hold atomic"
            )
        d.set_atomic(SUBPAGE, c, False)
        cells.set_state(c, SubpageState.SHARED, fresh=cells.fresh[c])
        d.demote_owner(SUBPAGE)
        return created


class _RspKeepsAtomic(CoherenceModel):
    """release_subpage is a no-op: the lock can never drain."""

    def _do_rsp(self, d, cells, c, created):
        return created


class _NoSnarf(CoherenceModel):
    """Read-snarfing disabled: place-holders never revalidate."""

    def _snarf_placeholders(self, d, cells):
        return


class _StaleRead(ScenarioModel):
    """Data mutation: reads observe the previous memory value."""

    def read_value(self, memory_value):
        return memory_value - 1 if memory_value else 0


def _scenario_model(cell_model_cls):
    if cell_model_cls is _StaleRead:
        return _StaleRead(N_CELLS, 1)
    return ScenarioModel(N_CELLS, 1, cell_model=cell_model_cls(N_CELLS))


def _caught(model):
    """Divergent (class, result) pairs over the bounded enumeration."""
    enum = enumerate_classes(model, DEPTH)
    out = []
    for cls in enum.classes:
        result = differential_run(cls.schedule, model=model)
        if not result.ok:
            out.append((cls, result))
    return out


MUTANTS = [
    pytest.param(_ColdReadShared, {"directory"}, id="cold-read-fills-shared"),
    pytest.param(_GspLosesAtomic, {"directory", "quiescence"}, id="gsp-loses-atomic"),
    pytest.param(_RspToShared, {"directory"}, id="rsp-demotes-to-shared"),
    pytest.param(_RspKeepsAtomic, {"drain"}, id="rsp-is-a-noop"),
    pytest.param(_NoSnarf, {"directory"}, id="snarf-disabled"),
    pytest.param(_StaleRead, {"observation"}, id="reads-observe-stale-value"),
]


class TestMutantsAreCaught:
    def test_stock_model_is_clean_on_this_grid(self):
        assert _caught(ScenarioModel(N_CELLS, 1)) == []

    @pytest.mark.parametrize("mutant,expected_kinds", MUTANTS)
    def test_mutant_diverges_on_at_least_one_scenario(self, mutant, expected_kinds):
        caught = _caught(_scenario_model(mutant))
        assert caught, f"{mutant.__name__} survived every generated scenario"
        kinds = {d.kind for _cls, r in caught for d in r.divergences}
        assert kinds & expected_kinds, (
            f"{mutant.__name__} caught via {kinds}, expected one of {expected_kinds}"
        )

    @pytest.mark.parametrize("mutant,expected_kinds", MUTANTS)
    def test_divergence_carries_a_replayable_trace(self, mutant, expected_kinds):
        cls, result = _caught(_scenario_model(mutant))[0]
        # the lowered schedule is the deterministic reproducer
        assert result.schedule == cls.schedule
        assert len(result.lowered) >= len(result.schedule)
        assert all(d.message for d in result.divergences)
