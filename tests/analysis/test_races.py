"""DES determinism auditing: engine hooks, conflict flags, and the
tie-break perturbation harness."""

from __future__ import annotations

import numpy as np

from repro.analysis.races import (
    RaceAuditor,
    default_audit_workload,
    diff_fingerprints,
    machine_fingerprint,
    perturbed_contended_workload,
    perturbed_default_workload,
    run_perturbed,
)
from repro.coherence.directory import Directory
from repro.sim.engine import Engine


class TestEngineHooks:
    def test_audit_hook_sees_every_event(self):
        engine = Engine()
        seen = []
        engine.audit_hook = seen.append
        engine.schedule(5, lambda: None)
        engine.schedule(1, lambda: None)
        engine.run()
        assert [e.time for e in seen] == [1.0, 5.0]

    def test_tie_shuffle_reorders_same_instant_events(self):
        # find a seed whose shuffle inverts FIFO order for two ties
        def order(rng):
            engine = Engine()
            if rng is not None:
                engine.shuffle_same_time_ties(rng)
            fired = []
            engine.schedule(10, fired.append, "first")
            engine.schedule(10, fired.append, "second")
            engine.run()
            return fired

        assert order(None) == ["first", "second"]
        inverted = any(
            order(np.random.default_rng(seed)) == ["second", "first"]
            for seed in range(20)
        )
        assert inverted, "no seed inverted a same-instant pair"

    def test_shuffle_never_reorders_distinct_times(self):
        engine = Engine()
        engine.shuffle_same_time_ties(np.random.default_rng(0))
        fired = []
        engine.schedule(20, fired.append, "late")
        engine.schedule(10, fired.append, "early")
        engine.run()
        assert fired == ["early", "late"]

    def test_shuffle_and_audit_compose_on_large_tie_groups(self):
        # regression for the tuple-keyed heap: the perturbation harness
        # relies on shuffled tie keys and the audit hook seeing every
        # event; both must keep working with heap entries that are
        # (time, tie, seq, event) tuples rather than bare Events.
        engine = Engine()
        engine.shuffle_same_time_ties(np.random.default_rng(7))
        audited = []
        engine.audit_hook = lambda ev: audited.append(ev.time)
        fired = []
        for instant in (5.0, 1.0):
            for tag in range(8):
                engine.schedule(instant, fired.append, (instant, tag))
        engine.run()
        assert len(fired) == 16
        assert audited == [1.0] * 8 + [5.0] * 8
        assert [t for t, _ in fired] == audited
        # the shuffle must only permute within an instant, never across
        assert sorted(tag for t, tag in fired if t == 1.0) == list(range(8))


class TestConflictFlags:
    def _run_pair(self, make_callbacks):
        """Two same-instant events against one audited directory."""
        engine = Engine()

        class Holder:
            def __init__(self):
                self.directory = Directory()
                self.values = {}

            def poke(self, addr, value):
                self.values[addr] = value

        holder = Holder()
        auditor = RaceAuditor().install_on(engine, holder)
        a, b = make_callbacks(holder)
        engine.schedule(10, a)
        engine.schedule(10, b)
        engine.run()
        return auditor.report()

    def test_write_write_same_subpage_is_flagged(self):
        flags = self._run_pair(
            lambda h: (
                lambda: h.directory.record_fill_shared(7, 0),
                lambda: h.directory.record_fill_shared(7, 1),
            )
        )
        assert len(flags) == 1
        assert flags[0].subpage_id == 7
        assert flags[0].time == 10.0

    def test_read_read_same_subpage_commutes(self):
        flags = self._run_pair(
            lambda h: (
                lambda: h.directory.entry(7),
                lambda: h.directory.state_in(7, 0),
            )
        )
        assert flags == []

    def test_disjoint_subpages_do_not_conflict(self):
        flags = self._run_pair(
            lambda h: (
                lambda: h.directory.record_fill_shared(7, 0),
                lambda: h.directory.record_fill_shared(8, 1),
            )
        )
        assert flags == []

    def test_read_write_same_subpage_is_flagged(self):
        flags = self._run_pair(
            lambda h: (
                lambda: h.directory.state_in(9, 0),
                lambda: h.directory.record_fill_shared(9, 1),
            )
        )
        assert len(flags) == 1

    def test_word_store_pokes_count_as_writes(self):
        flags = self._run_pair(
            lambda h: (
                lambda: h.poke(0x100, 1),
                lambda: h.poke(0x108, 2),  # same 128 B subpage
            )
        )
        assert len(flags) == 1

    def test_touches_outside_events_are_ignored(self):
        engine = Engine()

        class Holder:
            def __init__(self):
                self.directory = Directory()

            def poke(self, addr, value):
                pass

        holder = Holder()
        auditor = RaceAuditor().install_on(engine, holder)
        holder.directory.record_fill_shared(3, 0)  # setup, not an event
        assert auditor.report() == []


class TestMachineAudit:
    def test_race_free_workload_is_flag_free(self):
        machine, auditor = default_audit_workload(audit=True)
        assert auditor is not None
        assert auditor.report() == []
        assert auditor.n_events_audited > 0

    def test_contended_workload_raises_flags(self):
        _, auditor = default_audit_workload(audit=True, contended=True)
        assert auditor is not None
        assert auditor.report() != []

    def test_audited_machine_still_computes_correctly(self):
        machine, _ = default_audit_workload(audit=True, contended=True)
        fp = machine_fingerprint(machine)
        counter_values = [v for v in fp["values"].values() if v == 12]
        assert counter_values, "locked counter must reach 3 increments x 4 cells"


class TestPerturbation:
    def test_race_free_workload_is_fully_deterministic(self):
        report = run_perturbed(perturbed_default_workload, n_runs=3)
        assert report.state_deterministic, report.summary()
        assert report.timing_deterministic, report.summary()
        assert report.data_deterministic

    def test_contended_workload_keeps_data_deterministic(self):
        report = run_perturbed(perturbed_contended_workload, n_runs=3)
        assert report.data_deterministic, report.summary()

    def test_contended_workload_state_depends_on_tie_order(self):
        # which cell ends up caching the hot subpage is grant-order
        # sensitive: the harness must expose that, not mask it
        report = run_perturbed(perturbed_contended_workload, n_runs=4)
        assert not report.state_deterministic

    def test_fingerprint_diff_is_empty_on_identical_runs(self):
        a = machine_fingerprint(perturbed_default_workload(None))
        b = machine_fingerprint(perturbed_default_workload(None))
        assert diff_fingerprints(a, b) == []
