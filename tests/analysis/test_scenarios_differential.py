"""Differential suite: every enumerated behaviour class, executed.

Satellite of the scenario-generation tentpole: each behaviour class at
the pinned configs gets its representative lowered onto the real
simulator (with the quiescence-drain suffix) and the outcome must land
in the model-predicted class on every oracle channel.  The parametrize
ids carry the class key, so a failure names the exact behaviour class
and its replayable schedule.
"""

import pytest

from repro.analysis.scenarios import (
    ScenarioModel,
    differential_run,
    enumerate_classes,
)

SEED = 1

#: (n_cells, n_subpages, depth) — small enough to execute exhaustively
#: in the tier-1 suite, deep enough to cross subpage independence and
#: three-way cell interactions.
CONFIGS = ((2, 1, 4), (3, 2, 3))


def _class_params():
    params = []
    for n_cells, n_subpages, depth in CONFIGS:
        enum = enumerate_classes(ScenarioModel(n_cells, n_subpages), depth)
        for cls in enum.classes:
            params.append(
                pytest.param(
                    n_cells,
                    n_subpages,
                    cls.schedule,
                    id=f"{n_cells}c{n_subpages}s-{cls.key}",
                )
            )
    return params


@pytest.mark.parametrize("n_cells,n_subpages,schedule", _class_params())
def test_every_class_representative_matches_its_predicted_class(
    n_cells, n_subpages, schedule
):
    result = differential_run(
        schedule, model=ScenarioModel(n_cells, n_subpages), seed=SEED
    )
    assert result.ok, (
        f"schedule {schedule!r} (lowered {result.lowered!r}) diverged: "
        + "; ".join(f"[{d.kind}] {d.message}" for d in result.divergences)
    )


def test_pinned_configs_cover_more_than_the_hand_written_grids():
    from repro.analysis.scenarios import HAND_WRITTEN_GRID_POINTS

    n_classes = sum(
        len(enumerate_classes(ScenarioModel(c, s), d).classes)
        for c, s, d in CONFIGS
    )
    # Even the in-suite exhaustive subset beats the hand-written litmus
    # grids; the full committed corpus is an order of magnitude larger
    # still (see test_scenarios_corpus.py).
    assert n_classes > 2 * HAND_WRITTEN_GRID_POINTS
