"""Corpus execution, deterministic sampling and manifest pinning."""

import json
from pathlib import Path

import pytest

from repro.analysis.scenarios import (
    DEFAULT_GRID,
    DEFAULT_MANIFEST,
    HAND_WRITTEN_GRID_POINTS,
    MODEL_VERSION,
    ScenarioModel,
    build_manifest,
    check_manifest,
    corpus_document,
    enumerate_classes,
    execute_scenario,
    load_manifest,
    run_corpus,
    sample_classes,
    write_manifest,
)
from repro.errors import ConfigError
from repro.experiments.sweep import ResultCache

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Small grid for check/round-trip tests — fast to re-enumerate.
SMALL_GRID = ((2, 1, 3), (2, 2, 3))


class TestExecuteScenario:
    def test_verdict_is_plain_data(self):
        verdict = execute_scenario(
            schedule=(("write", 0, 0), ("read", 1, 0)),
            n_cells=2,
            n_subpages=1,
            seed=1,
            model_version=MODEL_VERSION,
        )
        assert verdict["ok"] is True
        assert verdict["divergences"] == []
        assert verdict["schedule"] == [["write", 0, 0], ["read", 1, 0]]
        json.dumps(verdict)  # must serialize for artifacts

    def test_model_version_mismatch_is_refused(self):
        with pytest.raises(ConfigError, match="model"):
            execute_scenario(
                schedule=(("read", 0, 0),),
                n_cells=2,
                n_subpages=1,
                seed=1,
                model_version="not-" + MODEL_VERSION,
            )


class TestRunCorpus:
    def test_full_small_corpus_is_clean(self):
        enums = [enumerate_classes(ScenarioModel(c, s), d) for c, s, d in SMALL_GRID]
        run = run_corpus(enums)
        assert run.ok
        assert run.n_executed == sum(len(e.classes) for e in enums)
        assert run.failures == ()

    def test_classes_for_restricts_execution(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 3)
        run = run_corpus([enum], classes_for=lambda e: list(e.classes[:5]))
        assert run.n_executed == 5

    def test_cache_serves_the_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        enum = enumerate_classes(ScenarioModel(2, 1), 2)
        first = run_corpus([enum], cache=cache)
        assert cache.hits == 0 and cache.misses == first.n_executed
        second = run_corpus([enum], cache=cache)
        assert second == first
        assert cache.hits == first.n_executed


class TestSampling:
    def test_sample_is_deterministic_and_a_subset(self):
        enum = enumerate_classes(ScenarioModel(2, 2), 3)
        a = sample_classes(enum, 10, seed=1)
        b = sample_classes(enum, 10, seed=1)
        assert a == b
        assert len(a) == 10
        keys = {c.key for c in enum.classes}
        assert all(c.key in keys for c in a)

    def test_seed_shifts_the_stride_offset(self):
        enum = enumerate_classes(ScenarioModel(2, 2), 3)
        assert sample_classes(enum, 10, seed=1) != sample_classes(enum, 10, seed=2)

    def test_oversized_sample_returns_everything(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 2)
        assert len(sample_classes(enum, 10_000, seed=1)) == len(enum.classes)
        assert sample_classes(enum, 0, seed=1) == []

    def test_negative_sample_rejected(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 2)
        with pytest.raises(ConfigError):
            sample_classes(enum, -1, seed=1)


class TestManifest:
    def test_round_trip_and_clean_check(self, tmp_path):
        manifest = build_manifest(SMALL_GRID, seed=1, sample_per_config=5)
        path = tmp_path / "manifest.json"
        write_manifest(path, manifest)
        assert load_manifest(path) == manifest
        report = check_manifest(manifest)
        assert report.ok
        assert report.n_executed == 2 * 5
        assert report.n_classes == sum(c["n_classes"] for c in manifest["configs"])

    def test_class_count_drift_is_reported(self):
        manifest = build_manifest(SMALL_GRID, seed=1, sample_per_config=3)
        manifest["configs"][0]["n_classes"] += 1
        report = check_manifest(manifest)
        assert not report.ok
        assert any(kind == "drift" and "n_classes" in msg for kind, msg, _ in report.problems)

    def test_partition_digest_drift_is_reported(self):
        manifest = build_manifest(SMALL_GRID, seed=1, sample_per_config=3)
        manifest["configs"][1]["digest"] = "0" * 16
        report = check_manifest(manifest)
        assert any(kind == "drift" and "digest" in msg for kind, msg, _ in report.problems)

    def test_vanished_sample_key_is_reported(self):
        manifest = build_manifest(SMALL_GRID, seed=1, sample_per_config=3)
        manifest["configs"][0]["sample"][0] = "f" * 16
        report = check_manifest(manifest)
        assert any("no longer exists" in msg for _kind, msg, _ in report.problems)

    def test_model_version_drift_is_reported(self):
        manifest = build_manifest(SMALL_GRID, seed=1, sample_per_config=0)
        manifest["model_version"] = "not-" + MODEL_VERSION
        report = check_manifest(manifest)
        assert any("model_version" in msg for _kind, msg, _ in report.problems)

    def test_unreadable_manifest_raises_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_manifest(bad)
        with pytest.raises(ConfigError):
            load_manifest(tmp_path / "missing.json")
        notdict = tmp_path / "notdict.json"
        notdict.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_manifest(notdict)


class TestCommittedManifest:
    """The repo-root manifest is the CI contract; keep it honest."""

    def test_manifest_exists_and_matches_the_tree_version(self):
        manifest = load_manifest(REPO_ROOT / DEFAULT_MANIFEST)
        assert manifest["model_version"] == MODEL_VERSION
        grid = tuple(
            (c["n_cells"], c["n_subpages"], c["depth"]) for c in manifest["configs"]
        )
        assert grid == DEFAULT_GRID

    def test_committed_corpus_dwarfs_the_hand_written_grids(self):
        manifest = load_manifest(REPO_ROOT / DEFAULT_MANIFEST)
        total = sum(c["n_classes"] for c in manifest["configs"])
        assert total >= 10 * HAND_WRITTEN_GRID_POINTS

    def test_cheapest_pinned_config_still_enumerates_identically(self):
        manifest = load_manifest(REPO_ROOT / DEFAULT_MANIFEST)
        cfg = min(manifest["configs"], key=lambda c: c["n_classes"])
        enum = enumerate_classes(
            ScenarioModel(cfg["n_cells"], cfg["n_subpages"]), cfg["depth"]
        )
        assert len(enum.classes) == cfg["n_classes"]
        assert enum.n_schedules == cfg["n_schedules"]
        assert enum.digest() == cfg["digest"]


class TestCorpusDocument:
    def test_document_is_serializable_and_flags_failures(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 2)
        run = run_corpus([enum])
        doc = corpus_document([enum], run=run)
        json.dumps(doc)
        assert doc["model_version"] == MODEL_VERSION
        (cfg,) = doc["configs"]
        assert cfg["n_classes"] == len(enum.classes)
        assert len(cfg["classes"]) == len(enum.classes)
        assert all("diverged" not in c for c in cfg["classes"])
