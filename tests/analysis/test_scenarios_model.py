"""Unit tests for the scenario product model, canonicalization and
the symmetry-reduced enumerator."""

import pytest

from repro.analysis.modelcheck import CoherenceModel
from repro.analysis.scenarios import (
    MODEL_VERSION,
    ScenarioModel,
    behaviour_key,
    canonicalize,
    certify_extraction,
    enumerate_classes,
    is_canonical,
    run_model,
)
from repro.errors import ConfigError


class TestScenarioModel:
    def test_initial_is_pristine_per_subpage(self):
        m = ScenarioModel(2, 2)
        state = m.initial()
        assert len(state) == 2
        assert all(sub == CoherenceModel(2).initial() for sub in state)

    def test_enabled_is_deterministic_and_excludes_evict(self):
        m = ScenarioModel(3, 2)
        steps = m.enabled(m.initial())
        assert steps == sorted(steps, key=lambda s: (s[2], s[1], s[0] != "read"))
        assert all(op != "evict" for op, _c, _sp in steps)
        # cold state: every cell can read, write or gsp either subpage
        assert ("read", 0, 0) in steps and ("gsp", 2, 1) in steps

    def test_apply_touches_only_the_stepped_subpage(self):
        m = ScenarioModel(2, 2)
        state = m.apply(m.initial(), ("write", 0, 1))
        assert state[0] == CoherenceModel(2).initial()
        assert state[1] != CoherenceModel(2).initial()

    def test_subpage_bounds_checked(self):
        m = ScenarioModel(2, 1)
        with pytest.raises(ConfigError):
            m.apply(m.initial(), ("write", 0, 1))

    def test_drain_steps_release_every_atomic_subpage(self):
        m = ScenarioModel(2, 2)
        state = m.apply(m.initial(), ("gsp", 0, 0))
        state = m.apply(state, ("gsp", 1, 1))
        drain = m.drain_steps(state)
        assert set(drain) == {("rsp", 0, 0), ("rsp", 1, 1)}
        for step in drain:
            state = m.apply(state, step)
        assert m.quiescent(state)

    def test_drain_steps_empty_when_quiescent(self):
        m = ScenarioModel(2, 1)
        assert m.drain_steps(m.initial()) == ()


class TestRunModel:
    def test_write_then_read_observes_the_write_value(self):
        m = ScenarioModel(2, 1)
        pred = run_model(m, (("write", 0, 0), ("read", 1, 0)))
        assert pred.completed
        # the write at index 0 deposits value 1; the read at index 1 sees it
        assert pred.observations == ((1, 1),)
        assert pred.memory == (1,)
        assert pred.created == (True,)

    def test_reads_of_untouched_subpage_observe_zero(self):
        m = ScenarioModel(2, 2)
        pred = run_model(m, (("write", 0, 0), ("read", 1, 1)))
        assert pred.observations == ((1, 0),)
        assert pred.memory == (1, 0)

    def test_non_enabled_step_blocks_the_prediction(self):
        m = ScenarioModel(2, 1)
        pred = run_model(m, (("rsp", 0, 0),))
        assert not pred.completed
        assert pred.blocked_at == 0

    def test_blocked_behind_atomic_holder(self):
        m = ScenarioModel(2, 1)
        pred = run_model(m, (("gsp", 0, 0), ("write", 1, 0)))
        assert not pred.completed
        assert pred.blocked_at == 1

    def test_final_state_names_match_the_protocol_vocabulary(self):
        m = ScenarioModel(2, 1)
        pred = run_model(m, (("write", 0, 0), ("read", 1, 0)))
        assert pred.directory_states == (("SHARED", "SHARED"),)
        assert pred.quiescent


class TestCanonicalization:
    def test_first_appearance_relabelling(self):
        canon, cmap, smap = canonicalize((("write", 2, 1), ("read", 0, 1), ("gsp", 2, 0)))
        assert canon == (("write", 0, 0), ("read", 1, 0), ("gsp", 0, 1))
        assert cmap == {2: 0, 0: 1}
        assert smap == {1: 0, 0: 1}

    def test_is_canonical(self):
        assert is_canonical((("write", 0, 0), ("read", 1, 0)))
        assert not is_canonical((("write", 1, 0),))
        assert not is_canonical((("write", 0, 1),))

    def test_symmetric_schedules_share_a_behaviour_key(self):
        m = ScenarioModel(3, 2)
        original = (("write", 0, 0), ("read", 1, 0), ("write", 2, 1))
        permuted = (("write", 2, 1), ("read", 0, 1), ("write", 1, 0))
        assert behaviour_key(m, original) == behaviour_key(m, permuted)

    def test_different_behaviours_get_different_keys(self):
        m = ScenarioModel(2, 1)
        assert behaviour_key(m, (("write", 0, 0),)) != behaviour_key(m, (("read", 0, 0),))

    def test_behaviour_key_rejects_non_model_schedules(self):
        m = ScenarioModel(2, 1)
        with pytest.raises(ConfigError):
            behaviour_key(m, (("rsp", 0, 0),))


class TestEnumeration:
    def test_representatives_are_canonical_and_shortest_first(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 3)
        assert all(is_canonical(c.schedule) for c in enum.classes)
        # the single-step classes exist and no representative is longer
        # than another member of its class could be shorter than
        lengths = [len(c.schedule) for c in enum.classes]
        assert min(lengths) == 1 and max(lengths) <= 3

    def test_class_partition_counts_every_schedule(self):
        enum = enumerate_classes(ScenarioModel(2, 1), 3)
        assert sum(c.n_members for c in enum.classes) == enum.n_schedules

    def test_depth_monotone(self):
        shallow = enumerate_classes(ScenarioModel(2, 1), 2)
        deep = enumerate_classes(ScenarioModel(2, 1), 3)
        assert len(deep.classes) > len(shallow.classes)
        assert {c.key for c in shallow.classes} <= {c.key for c in deep.classes}

    def test_digest_is_order_independent_and_pinned(self):
        a = enumerate_classes(ScenarioModel(2, 1), 3)
        b = enumerate_classes(ScenarioModel(2, 1), 3)
        assert a.digest() == b.digest()
        assert len(a.classes) == 43  # regression pin: 2 cells, 1 subpage, depth 3

    def test_more_subpages_multiply_behaviours(self):
        one = enumerate_classes(ScenarioModel(2, 1), 3)
        two = enumerate_classes(ScenarioModel(2, 2), 3)
        assert len(two.classes) > len(one.classes)


class TestExtractionCertificate:
    def test_model_is_certified_against_protocol_source(self):
        findings, stats = certify_extraction()
        assert findings == []
        assert stats["valuations_checked"] > 0

    def test_certificate_is_memoized(self):
        assert certify_extraction() is certify_extraction()

    def test_model_version_is_declared(self):
        assert isinstance(MODEL_VERSION, str) and MODEL_VERSION
