"""KSR113 conformance: extraction invariants and the real protocol."""

from __future__ import annotations

from repro.analysis.flow.conformance import (
    ATOMS,
    OPS,
    Transition,
    conformance_findings,
    extract_code_relation,
    extract_model_relation,
    op_valuations,
)


class TestModelExtraction:
    def test_relation_covers_every_op(self):
        relation = extract_model_relation()
        ops_seen = {op for op, _ in relation}
        assert ops_seen == set(OPS)

    def test_valuations_determine_transitions(self):
        # extract_model_relation raises if two concrete states sharing a
        # valuation disagree; reaching here proves functionality.
        relation = extract_model_relation(n_cells=3)
        assert len(relation) == 26

    def test_two_and_three_cell_models_agree(self):
        small = extract_model_relation(n_cells=2)
        large = extract_model_relation(n_cells=3)
        for key, value in small.items():
            assert large[key] == value, key

    def test_rsp_releases_atomicity(self):
        relation = extract_model_relation()
        rsp = {k: v for k, v in relation.items() if k[0] == "rsp"}
        assert rsp, "rsp must be reachable"
        for (_, valuation), (outcome, effects) in rsp.items():
            v = dict(zip(ATOMS, valuation))
            assert v["atomic"] and v["owner_is_actor"]
            assert outcome == "EXCLUSIVE"
            assert ("set_atomic", False) in effects


class TestCodeExtraction:
    def test_every_op_extracts_paths(self):
        code = extract_code_relation()
        for op in OPS:
            assert code.n_paths[op] >= 1, op

    def test_read_transitions_match_coma_semantics(self):
        code = extract_code_relation()
        # COMA cold first touch allocates straight to EXCLUSIVE...
        cold = tuple(False for _ in ATOMS)
        assert {o for o, _ in code.lookup("read", cold)} >= {"EXCLUSIVE"}
        # ...while a read next to an existing owner fills SHARED
        warm = tuple(
            dict(zip(ATOMS, [False, False, True, True, True, False, False]))[a]
            for a in ATOMS
        )
        assert "SHARED" in {o for o, _ in code.lookup("read", warm)}

    def test_rsp_by_owner_sets_atomic_false(self):
        code = extract_code_relation()
        # the rsp precondition admits atomic ∧ owner_is_actor only
        for valuation in op_valuations("rsp"):
            real = {
                (o, e)
                for o, e in code.lookup("rsp", valuation)
                if o not in ("none", "blocked")
            }
            assert (("EXCLUSIVE", (("set_atomic", False),))) in real


class TestConformance:
    def test_real_protocol_conforms(self):
        findings, stats = conformance_findings()
        assert findings == []
        assert stats["valuations_agreeing"] == stats["model_transitions"]
        assert stats["valuations_checked"] >= stats["model_transitions"]

    def test_uncovered_valuations_are_reported_not_flagged(self):
        _, stats = conformance_findings()
        # code handles placeholder configurations the snarfing model
        # drains eagerly; they are coverage notes, not failures
        assert isinstance(stats["uncovered_code_transitions"], list)

    def test_transition_describe_is_readable(self):
        t = Transition(
            op="rsp",
            guard=(("atomic", True), ("owner_is_actor", True)),
            outcome="EXCLUSIVE",
            effects=(("set_atomic", False),),
        )
        text = t.describe()
        assert "rsp[" in text
        assert "set_atomic(False)" in text
        assert "EXCLUSIVE" in text
