"""KSR110 taint dataflow and KSR111 alias tracking on fixture programs."""

from __future__ import annotations

import textwrap

from repro.analysis.flow import run_flow
from repro.analysis.flow.determinism import determinism_findings
from repro.analysis.flow.program import load_program


def _flow(**sources: str):
    relabelled = {
        name.replace("__", "/") + ".py": textwrap.dedent(src)
        for name, src in sources.items()
    }
    report = run_flow(sources=relabelled, conformance=False)
    return report.findings


def _rules(findings) -> list[str]:
    return sorted(f.rule for f in findings)


class TestKSR110Sources:
    def test_wall_clock_to_schedule_is_flagged(self):
        findings = _flow(
            mod="""
            import time
            def setup(engine, cb):
                t = time.time()
                engine.schedule(t, cb)
            """
        )
        assert _rules(findings) == ["KSR110"]
        f = findings[0]
        assert "time.time" in f.message
        assert "schedule" in f.message
        assert f.path == "mod.py"
        assert f.line == 5

    def test_set_iteration_order_to_sink_is_flagged(self):
        findings = _flow(
            mod="""
            def keys(engine, cb):
                pending = {"a", "b", "c"}
                for name in pending:
                    engine.schedule(1.0, cb, name)
            """
        )
        assert _rules(findings) == ["KSR110"]
        assert "iteration order" in findings[0].message

    def test_unsorted_glob_to_point_key_is_flagged(self):
        findings = _flow(
            mod="""
            def keyed(func, root):
                names = [p.name for p in root.glob("*.json")]
                return point_key(func, dict(names=names))
            """
        )
        assert _rules(findings) == ["KSR110"]
        assert "glob" in findings[0].message

    def test_unseeded_rng_is_flagged_seeded_is_not(self):
        findings = _flow(
            mod="""
            import numpy as np
            def bad(engine, cb):
                engine.schedule(np.random.default_rng().random(), cb)
            def good(engine, cb, seed):
                engine.schedule(np.random.default_rng(seed).random(), cb)
            """
        )
        assert _rules(findings) == ["KSR110"]
        assert "default_rng" in findings[0].message

    def test_id_and_hash_are_flagged(self):
        findings = _flow(
            mod="""
            def bad(engine, cb, obj):
                engine.schedule_at(id(obj), cb)
                engine.schedule_at(hash(obj), cb)
            """
        )
        assert _rules(findings) == ["KSR110", "KSR110"]


class TestKSR110Sanitizers:
    def test_sorted_erases_order_taint(self):
        findings = _flow(
            mod="""
            def keys(engine, cb):
                pending = {"a", "b", "c"}
                for name in sorted(pending):
                    engine.schedule(1.0, cb, name)
            """
        )
        assert findings == []

    def test_len_erases_all_taint(self):
        findings = _flow(
            mod="""
            import time
            def count(engine, cb):
                stamps = [time.time()]
                engine.schedule(len(stamps), cb)
            """
        )
        assert findings == []

    def test_sorted_does_not_erase_wall_clock(self):
        findings = _flow(
            mod="""
            import time
            def worst(engine, cb):
                stamps = [time.time(), time.time()]
                engine.schedule(sorted(stamps)[0], cb)
            """
        )
        assert _rules(findings) == ["KSR110"]


class TestKSR110Interprocedural:
    def test_taint_through_helper_return(self):
        findings = _flow(
            mod="""
            import time
            def jitter():
                return time.time() % 1.0
            def setup(engine, cb):
                delay = jitter()
                engine.schedule_at(delay, cb)
            """
        )
        assert _rules(findings) == ["KSR110"]
        assert "time.time" in findings[0].message

    def test_taint_into_helper_that_sinks_a_param(self):
        findings = _flow(
            mod="""
            import time
            def arm(engine, delay, cb):
                engine.schedule(delay, cb)
            def setup(engine, cb):
                arm(engine, time.monotonic(), cb)
            """
        )
        assert _rules(findings) == ["KSR110"]
        # flagged at the tainted call site, naming the chained sink
        assert "arm" in findings[0].message and "schedule" in findings[0].message

    def test_clean_params_make_no_findings(self):
        findings = _flow(
            mod="""
            def arm(engine, delay, cb):
                engine.schedule(delay, cb)
            def setup(engine, cb, config):
                arm(engine, config.delay, cb)
            """
        )
        assert findings == []


class TestKSR111AliasMutation:
    def test_single_hop_alias_is_flagged(self):
        findings = _flow(
            machine__poker="""
            def poke(machine):
                cache = machine.cells[0].local_cache
                cache.set_state(3, "EXCLUSIVE")
            """
        )
        assert "KSR111" in _rules(findings)

    def test_multi_hop_alias_is_flagged(self):
        findings = _flow(
            machine__poker="""
            def poke(machine):
                a = machine.cells[0].local_cache
                b = a
                b.set_state(3, "EXCLUSIVE")
            """
        )
        assert "KSR111" in _rules(findings)
        assert findings[0].detail["alias"] == "b"

    def test_states_write_through_alias_is_flagged(self):
        findings = _flow(
            machine__poker="""
            def poke(machine):
                cache = machine.cells[0].local_cache
                cache._states[7] = None
            """
        )
        assert "KSR111" in _rules(findings)

    def test_protocol_whitelist_is_exempt(self):
        findings = _flow(
            coherence__protocol="""
            def helper(cell):
                cache = cell.local_cache
                cache.set_state(3, "SHARED")
            """
        )
        assert findings == []

    def test_reads_through_alias_are_fine(self):
        findings = _flow(
            machine__probe="""
            def peek(machine):
                cache = machine.cells[0].local_cache
                return cache.state_of(3)
            """
        )
        assert findings == []


class TestRealTree:
    def test_real_tree_is_clean(self):
        findings, stats = determinism_findings(load_program())
        assert findings == []
        assert stats["functions_analyzed"] > 500

    def test_declared_sinks_are_collected(self):
        program = load_program()
        assert "Engine.schedule" in program.declared_sinks
        assert "point_key" in program.declared_sinks
        assert "SlottedRing.transact" in program.declared_sinks
