"""Tests for the experiment runners (small sweeps) and the CLI."""

import pytest

from repro.experiments.base import ExperimentResult, PAPER_ANCHORS
from repro.experiments.cli import EXPERIMENTS, main
from repro.experiments.other_archs import BUTTERFLY, SYMMETRY, barrier_cost


class TestExperimentResult:
    def test_render_contains_rows_and_notes(self):
        r = ExperimentResult("X1", "demo", ["a", "b"])
        r.add_row([1, 2.5])
        r.notes.append("something observed")
        text = r.render()
        assert "X1: demo" in text
        assert "2.5" in text
        assert "note: something observed" in text

    def test_column_access(self):
        r = ExperimentResult("X1", "demo", ["P", "t"])
        r.add_row([1, 10.0])
        r.add_row([2, 5.0])
        assert r.column("t") == [10.0, 5.0]

    def test_series(self):
        r = ExperimentResult("X1", "demo", ["P"])
        r.add_series_point("s", 1, 2.0)
        r.add_series_point("s", 2, 1.0)
        assert r.series["s"] == [(1, 2.0), (2, 1.0)]


class TestAnchors:
    def test_anchor_tables_consistent(self):
        """Speedups in the anchor table must equal T1/Tp of the times."""
        t = PAPER_ANCHORS["cg_times"]
        for p, s in PAPER_ANCHORS["cg_speedups"].items():
            assert t[1] / t[p] == pytest.approx(s, rel=1e-4)
        t = PAPER_ANCHORS["is_times"]
        for p, s in PAPER_ANCHORS["is_speedups"].items():
            assert t[1] / t[p] == pytest.approx(s, rel=1e-4)


class TestLatencyRunner:
    def test_figure2_small(self):
        from repro.experiments.latency import run_figure2

        r = run_figure2(proc_counts=[1, 2, 8], samples=200)
        assert len(r.rows) == 3
        local_reads = [row[1] for row in r.rows]
        # ~18 cycles = 0.9 us, P-independent
        for v in local_reads:
            assert v == pytest.approx(0.9, abs=0.15)
        net = dict(r.series["network read"])
        assert net[2] == pytest.approx(175 * 50e-9, rel=0.15)

    def test_level_validation(self):
        from repro.experiments.latency import measure_latencies

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            measure_latencies(2, "galactic", "read")
        with pytest.raises(ConfigError):
            measure_latencies(2, "local", "erase")


class TestLockRunner:
    def test_figure3_small(self):
        from repro.experiments.locks import run_figure3

        r = run_figure3(proc_counts=[2, 8], ops=10)
        assert len(r.rows) == 2
        excl = dict(r.series["exclusive lock"])
        assert excl[8] > excl[2]
        # read sharing helps at 8 processors
        row8 = r.rows[-1]
        assert row8[-1] < row8[1]  # readers-only < exclusive

    def test_unknown_kind(self):
        from repro.experiments.locks import measure_lock

        with pytest.raises(ValueError):
            measure_lock("optimistic", 2, 0.0)


class TestBarrierRunner:
    def test_figure4_small(self):
        from repro.experiments.barriers import run_figure4

        r = run_figure4(proc_counts=[4, 16], algorithms=["counter", "tournament(M)"], reps=5)
        assert len(r.rows) == 2
        counter = dict(r.series["counter"])
        tm = dict(r.series["tournament(M)"])
        assert counter[16] > tm[16]

    def test_figure5_crosses_rings(self):
        from repro.experiments.barriers import run_figure5

        r = run_figure5(proc_counts=[32, 48], algorithms=["tree(M)"], reps=4)
        t = dict(r.series["tree(M)"])
        assert t[48] > t[32]  # level-1 ring crossing jump

    def test_p_validation(self):
        from repro.experiments.barriers import measure_barrier
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            measure_barrier("counter", 1)


class TestOtherArchs:
    def test_counter_best_on_symmetry(self):
        costs = {
            a: barrier_cost(a, SYMMETRY, 32)
            for a in ("counter", "dissemination", "tournament", "mcs", "tree")
        }
        assert min(costs, key=costs.get) == "counter"

    def test_dissemination_best_on_butterfly(self):
        costs = {
            a: barrier_cost(a, BUTTERFLY, 32)
            for a in ("counter", "dissemination", "tournament", "mcs", "tree")
        }
        ranked = sorted(costs, key=costs.get)
        assert ranked[0] == "dissemination"
        assert ranked.index("tournament") < ranked.index("mcs")

    def test_mcs_m_best_tree_style_on_symmetry(self):
        tree_style = ("tree(M)", "tournament(M)", "mcs(M)")
        costs = {a: barrier_cost(a, SYMMETRY, 32) for a in tree_style}
        assert min(costs, key=costs.get) == "mcs(M)"

    def test_unknown_algorithm(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            barrier_cost("quantum", SYMMETRY, 8)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_one_quick_experiment(self, capsys):
        assert main(["other-archs"]) == 0
        out = capsys.readouterr().out
        assert "S3.2.3" in out and "completed" in out

    def test_ep_quick(self, capsys):
        assert main(["ep", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "MFLOPS/cell" in out
