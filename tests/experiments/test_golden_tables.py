"""Golden-table regression tests pinning EXPERIMENTS.md.

EXPERIMENTS.md publishes the reproduced tables for the paper's
figures; these tests recompute a representative subset of those points
at the published settings and hold them inside explicit tolerance
bands.  A change that moves the simulated machine's behaviour now
fails here instead of silently invalidating the documented results.

Tolerances are deliberately tight-but-not-exact: the tables in
EXPERIMENTS.md are rounded, and small cost-model refinements that stay
inside a band are exactly the changes the shape-level goals permit.
"""

import pytest

from repro.experiments.barriers import figure4_point
from repro.experiments.latency import measure_latencies
from repro.experiments.locks import measure_lock

# -- FIG2: memory-hierarchy latencies (µs/access; seed 101, 1000 samples)
_FIG2_SEED, _FIG2_SAMPLES, _FIG2_RTOL = 101, 1000, 0.04
_FIG2_GOLDEN = [
    # (n_procs, level, op, µs)
    (1, "local", "read", 0.914),
    (1, "local", "write", 1.014),
    (2, "network", "read", 9.114),
    (2, "network", "write", 9.814),
]

# -- FIG3: lock times (seconds; 40 ops/processor, seed 303)
_FIG3_SEED, _FIG3_OPS, _FIG3_RTOL = 303, 40, 0.06
_FIG3_GOLDEN = {
    # P -> (exclusive, rw 0%, rw 20%, rw 40%, rw 60%, rw 80%, rw 100%)
    2: (0.053, 0.054, 0.054, 0.054, 0.054, 0.054, 0.055),
    8: (0.101, 0.104, 0.107, 0.095, 0.083, 0.069, 0.056),
}
_FIG3_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

# -- FIG4: barrier episodes (µs; 10 reps, seed 404)
_FIG4_SEED, _FIG4_REPS, _FIG4_RTOL = 404, 10, 0.05
_FIG4_GOLDEN = {
    2: {
        "system": 58.2, "counter": 39.5, "tree": 46.2, "tree(M)": 46.2,
        "dissemination": 34.2, "tournament": 52.9, "tournament(M)": 52.9,
        "mcs": 52.8, "mcs(M)": 52.8,
    },
    8: {
        "system": 112.6, "counter": 124.4, "tree": 138.5, "tree(M)": 100.6,
        "dissemination": 88.9, "tournament": 149.0, "tournament(M)": 94.5,
        "mcs": 142.9, "mcs(M)": 92.8,
    },
}


@pytest.mark.parametrize("n_procs,level,op,golden_us", _FIG2_GOLDEN)
def test_fig2_latency_point(n_procs, level, op, golden_us):
    m = measure_latencies(
        n_procs, level, op, seed=_FIG2_SEED, samples=_FIG2_SAMPLES
    )
    assert m.mean_latency_s * 1e6 == pytest.approx(golden_us, rel=_FIG2_RTOL)


@pytest.fixture(scope="module", params=sorted(_FIG3_GOLDEN))
def fig3_row(request):
    """One recomputed FIG3 row: (P, (exclusive, rw 0% .. rw 100%))."""
    p = request.param
    row = [measure_lock("hardware", p, 0.0, ops=_FIG3_OPS, seed=_FIG3_SEED)]
    row += [
        measure_lock("rw", p, f, ops=_FIG3_OPS, seed=_FIG3_SEED)
        for f in _FIG3_FRACTIONS
    ]
    return p, row


def test_fig3_row_values(fig3_row):
    p, row = fig3_row
    for got, want in zip(row, _FIG3_GOLDEN[p]):
        assert got == pytest.approx(want, rel=_FIG3_RTOL)


def test_fig3_readers_help(fig3_row):
    p, row = fig3_row
    excl, rw = row[0], row[1:]
    if p < 8:
        # without real contention all configurations are within a few %
        assert max(row) < 1.1 * min(row)
        return
    # readers-only is the cheapest read-write configuration (combining)
    # and clearly beats the exclusive lock once contention is real
    assert rw[-1] == min(rw)
    assert rw[-1] < 0.7 * excl
    # read share >= 20% improves monotonically toward readers-only
    assert rw[1] > rw[2] > rw[3] > rw[4] > rw[5]


def test_fig3_exclusive_scales_linearly():
    t2 = measure_lock("hardware", 2, 0.0, ops=_FIG3_OPS, seed=_FIG3_SEED)
    t8 = measure_lock("hardware", 8, 0.0, ops=_FIG3_OPS, seed=_FIG3_SEED)
    # 4x the processors -> about 2x the total time for 40 ops each
    # (EXPERIMENTS.md: 0.053 s -> 0.101 s)
    assert 1.5 < t8 / t2 < 2.5


@pytest.fixture(scope="module", params=sorted(_FIG4_GOLDEN))
def fig4_row(request):
    """One recomputed FIG4 row: (P, {algorithm: µs})."""
    p = request.param
    row = {
        name: figure4_point(name, p, _FIG4_REPS, _FIG4_SEED) * 1e6
        for name in _FIG4_GOLDEN[p]
    }
    return p, row


def test_fig4_row_values(fig4_row):
    p, row = fig4_row
    for name, want in _FIG4_GOLDEN[p].items():
        assert row[name] == pytest.approx(want, rel=_FIG4_RTOL), name


def test_fig4_paper_orderings(fig4_row):
    p, row = fig4_row
    if p < 8:
        pytest.skip("orderings pinned at P=8, where contention separates them")
    # dissemination leads the field at P=8 (EXPERIMENTS.md row)
    assert row["dissemination"] == min(row.values())
    # every global-wakeup (M) variant beats its tree-wakeup original
    for name in ("tree", "tournament", "mcs"):
        assert row[f"{name}(M)"] < row[name]
    # the hot-spot counter barrier has fallen behind the system barrier
    assert row["counter"] > row["system"]
