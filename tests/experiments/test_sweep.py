"""The sweep runner: cache keys, the on-disk cache, and the guarantee
that serial, parallel and cached runs all produce identical results."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.races import default_audit_workload, machine_fingerprint
from repro.experiments.locks import measure_lock, run_figure3
from repro.experiments.sweep import ResultCache, SweepRunner, code_version, point_key


def square(x: int) -> int:
    """Module-level so worker processes can unpickle it by reference."""
    return x * x


def audit_fingerprint(seed: int) -> dict:
    """Fingerprint of the default audit workload (ignores the seed arg,
    which only exists to make distinct cache keys)."""
    machine, _ = default_audit_workload()
    return machine_fingerprint(machine)


class TestPointKey:
    def test_stable_across_calls(self):
        kwargs = dict(kind="hardware", n_procs=8, read_fraction=0.0)
        assert point_key(measure_lock, kwargs) == point_key(measure_lock, kwargs)

    def test_insensitive_to_kwarg_order(self):
        a = point_key(square, dict(x=1, y=2))
        b = point_key(square, dict(y=2, x=1))
        assert a == b

    def test_distinct_arguments_distinct_keys(self):
        assert point_key(square, dict(x=1)) != point_key(square, dict(x=2))

    def test_distinct_functions_distinct_keys(self):
        assert point_key(square, dict(x=1)) != point_key(measure_lock, dict(x=1))

    def test_code_version_is_hex_digest(self):
        version = code_version()
        assert len(version) == 64
        int(version, 16)  # raises if not hex

    def test_cache_token_keys_the_point(self):
        # Arguments exposing a `cache_token` (FaultPlan) are keyed by
        # it, so flipping any plan field is a cache miss...
        from repro.faults import FaultPlan

        a = point_key(square, dict(x=1, plan=FaultPlan(corruption_rate=1e-4)))
        b = point_key(square, dict(x=1, plan=FaultPlan(corruption_rate=1e-3)))
        assert a != b

    def test_equal_plans_share_a_key(self):
        # ...while two equal plans (distinct instances) hit the cache.
        from repro.faults import FaultPlan

        a = point_key(square, dict(x=1, plan=FaultPlan(dead_cells=(5,))))
        b = point_key(square, dict(x=1, plan=FaultPlan(dead_cells=(5,))))
        assert a == b

    def test_injector_version_bump_invalidates(self, monkeypatch):
        from repro.faults import FaultPlan
        import repro.faults.plan as plan_module

        before = point_key(square, dict(plan=FaultPlan()))
        monkeypatch.setattr(plan_module, "INJECTOR_VERSION", 2)
        after = point_key(square, dict(plan=FaultPlan()))
        assert before != after

    def test_cache_token_honoured_inside_containers(self, monkeypatch):
        # Regression: a FaultPlan nested in a list/tuple/dict used to
        # fall back to container repr, so INJECTOR_VERSION bumps did
        # not invalidate those cached points.
        from repro.faults import FaultPlan
        import repro.faults.plan as plan_module

        nests = {
            "list": lambda: dict(plans=[FaultPlan()]),
            "tuple": lambda: dict(plans=(FaultPlan(),)),
            "dict": lambda: dict(plans={"a": FaultPlan()}),
            "deep": lambda: dict(plans=[{"a": (FaultPlan(),)}]),
        }
        before = {name: point_key(square, make()) for name, make in nests.items()}
        monkeypatch.setattr(plan_module, "INJECTOR_VERSION", 2)
        for name, make in nests.items():
            assert point_key(square, make()) != before[name], name

    def test_container_rate_change_distinct_keys(self):
        from repro.faults import FaultPlan

        a = point_key(square, dict(plans=[FaultPlan(corruption_rate=1e-4)]))
        b = point_key(square, dict(plans=[FaultPlan(corruption_rate=1e-3)]))
        assert a != b

    def test_dict_kwarg_insensitive_to_insertion_order(self):
        a = point_key(square, dict(opts={"x": 1, "y": 2}))
        b = point_key(square, dict(opts={"y": 2, "x": 1}))
        assert a == b

    def test_address_bearing_repr_rejected(self):
        class Opaque:  # default object repr: <... object at 0x...>
            pass

        with pytest.raises(TypeError, match="kwarg 'widget'"):
            point_key(square, dict(widget=Opaque()))

    def test_address_bearing_repr_rejected_inside_container(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="kwarg 'widgets'"):
            point_key(square, dict(widgets=[Opaque()]))

    def test_function_valued_kwarg_rejected(self):
        # functions repr as <function f at 0x...>: per-process keys
        with pytest.raises(TypeError, match="memory address"):
            point_key(square, dict(callback=square))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = point_key(square, dict(x=3))
        hit, _ = cache.load(key)
        assert not hit
        cache.store(key, 9, meta={"func": "square"})
        hit, value = cache.load(key)
        assert hit and value == 9
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = point_key(square, dict(x=4))
        cache.store(key, 16)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, value = cache.load(key)
        assert not hit and value is None

    def test_corrupt_entry_counted_and_unlinked(self, tmp_path):
        # Regression: corruption used to be an unsignalled plain miss,
        # and the poisoned file stayed put, masking the next store.
        cache = ResultCache(tmp_path / "cache")
        key = point_key(square, dict(x=41))
        cache.store(key, 1681)
        cache._path(key).write_bytes(b"scrambled")
        hit, _ = cache.load(key)
        assert not hit
        assert cache.corrupt == 1 and cache.misses == 1
        assert not cache._path(key).exists(), "poisoned entry must be deleted"
        cache.store(key, 1681)
        hit, value = cache.load(key)
        assert hit and value == 1681

    def test_plain_miss_is_not_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        hit, _ = cache.load(point_key(square, dict(x=6)))
        assert not hit and cache.corrupt == 0 and cache.misses == 1

    def test_entry_missing_value_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = point_key(square, dict(x=5))
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"wrong": "shape"}))
        hit, _ = cache.load(key)
        assert not hit

    def test_default_respects_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("KSR_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache.default().root == tmp_path / "elsewhere"

    def test_root_resolved_absolute_at_construction(self, tmp_path, monkeypatch):
        # Regression: a relative root used to be re-resolved against
        # whatever the *current* working directory was at access time,
        # so the same campaign run from two directories got two cold
        # caches.
        monkeypatch.chdir(tmp_path)
        cache = ResultCache(".ksr-cache")
        assert cache.root.is_absolute()
        key = point_key(square, dict(x=9))
        cache.store(key, 81)
        elsewhere = tmp_path / "subdir"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        hit, value = cache.load(key)
        assert hit and value == 81, "chdir must not cold-start the cache"

    def test_stats_reports_resolved_root(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["root"] == str(tmp_path / "cache")
        assert set(stats) >= {"root", "hits", "misses", "corrupt"}


class TestSweepRunner:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_map_preserves_call_order(self):
        runner = SweepRunner()
        values = runner.map(square, [dict(x=i) for i in (3, 1, 2)])
        assert values == [9, 1, 4]

    def test_run_evaluates_single_point(self):
        assert SweepRunner().run(square, x=6) == 36

    def test_second_sweep_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache)
        calls = [dict(x=i) for i in range(5)]
        first = runner.map(square, calls)
        assert cache.misses == 5 and cache.hits == 0
        second = runner.map(square, calls)
        assert second == first
        assert cache.hits == 5 and cache.misses == 5

    def test_parallel_matches_serial(self):
        calls = [dict(x=i) for i in range(6)]
        serial = SweepRunner(jobs=1).map(square, calls)
        parallel = SweepRunner(jobs=2).map(square, calls)
        assert parallel == serial

    def test_parallel_simulation_points_bit_identical(self):
        calls = [
            dict(kind="hardware", n_procs=p, read_fraction=0.0, ops=5, seed=303)
            for p in (2, 4)
        ]
        serial = SweepRunner(jobs=1).map(measure_lock, calls)
        parallel = SweepRunner(jobs=2).map(measure_lock, calls)
        assert parallel == serial  # float equality: bit-for-bit, not approx


class TestExperimentEquivalence:
    """The ISSUE's acceptance property, at test scale: a parallel and/or
    cached figure run is byte-identical to the plain serial one."""

    PROCS = [2, 4]
    OPS = 5

    def _fig3(self, runner):
        return run_figure3(proc_counts=self.PROCS, ops=self.OPS, runner=runner)

    def test_parallel_figure3_rows_identical(self):
        serial = self._fig3(SweepRunner(jobs=1))
        parallel = self._fig3(SweepRunner(jobs=2))
        assert parallel.rows == serial.rows
        assert parallel.series == serial.series
        assert parallel.render() == serial.render()

    def test_cached_figure3_rows_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        serial = self._fig3(SweepRunner(jobs=1))
        cold = self._fig3(SweepRunner(cache=cache))
        warm = self._fig3(SweepRunner(cache=cache))
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        assert cache.hits >= len(cold.rows)

    def test_parallel_machine_fingerprints_identical(self):
        calls = [dict(seed=s) for s in (1, 2)]
        serial = SweepRunner(jobs=1).map(audit_fingerprint, calls)
        parallel = SweepRunner(jobs=2).map(audit_fingerprint, calls)
        assert parallel == serial
