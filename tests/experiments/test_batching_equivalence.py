"""Batch-on vs batch-off equivalence on the paper's figure workloads.

The macro-event core must be invisible in every result the experiments
produce: figure points, observability captures (compared as pickled
bytes — the strongest equality the obs layer offers) and degraded-mode
campaigns.  A Hypothesis sweep over random small workloads backs the
hand-picked points.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.experiments.barriers import measure_barrier
from repro.experiments.degraded import degraded_lock_point
from repro.experiments.latency import measure_latencies
from repro.experiments.locks import measure_lock
from repro.faults import FaultInjector, FaultPlan
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.obs import ObsSpec
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    TicketReadWriteLock,
    run_lock_workload,
)


class TestFigurePoints:
    """One representative point per figure, captures compared as bytes."""

    def test_fig2_latency_point(self):
        off, cap_off = measure_latencies(4, "network", "read", samples=40, obs=ObsSpec())
        on, cap_on = measure_latencies(
            4, "network", "read", samples=40, obs=ObsSpec(), batching=True
        )
        assert on == off
        assert pickle.dumps(cap_on) == pickle.dumps(cap_off)

    def test_fig3_lock_point(self):
        off, cap_off = measure_lock("hardware", 8, 0.0, ops=6, obs=ObsSpec())
        on, cap_on = measure_lock(
            "hardware", 8, 0.0, ops=6, obs=ObsSpec(), batching=True
        )
        assert on == off
        assert pickle.dumps(cap_on) == pickle.dumps(cap_off)

    def test_fig3_rw_lock_point(self):
        off, cap_off = measure_lock("rw", 6, 0.4, ops=6, obs=ObsSpec())
        on, cap_on = measure_lock("rw", 6, 0.4, ops=6, obs=ObsSpec(), batching=True)
        assert on == off
        assert pickle.dumps(cap_on) == pickle.dumps(cap_off)

    def test_fig4_barrier_point(self):
        def point(batching: bool):
            config = MachineConfig.ksr1(
                n_cells=8,
                seed=404,
                timer=TimerConfig(enabled=False),
                enable_batching=batching,
            )
            return measure_barrier(
                "counter", 8, machine_config=config, reps=4, obs=ObsSpec()
            )

        off, cap_off = point(False)
        on, cap_on = point(True)
        assert on == off
        assert pickle.dumps(cap_on) == pickle.dumps(cap_off)

    def test_fig5_two_ring_barrier_point(self):
        def point(batching: bool):
            config = MachineConfig.ksr2(
                n_cells=36,
                seed=404,
                timer=TimerConfig(enabled=False),
                enable_batching=batching,
            )
            return measure_barrier(
                "tree", 34, machine_config=config, reps=3, obs=ObsSpec()
            )

        off, cap_off = point(False)
        on, cap_on = point(True)
        assert on == off
        assert pickle.dumps(cap_on) == pickle.dumps(cap_off)


class TestDegradedCampaign:
    """F1 degraded points: fault seams force the per-event path, and the
    result is identical either way."""

    def test_f1_zero_plan_point(self):
        off = degraded_lock_point("rw", 6, 0.2, ops=5, obs=ObsSpec())
        on = degraded_lock_point("rw", 6, 0.2, ops=5, obs=ObsSpec(), batching=True)
        assert on.seconds == off.seconds
        assert on.faults == off.faults
        assert pickle.dumps(on.capture) == pickle.dumps(off.capture)

    def test_f1_faulted_point(self):
        plan = FaultPlan(corruption_rate=0.02, stall_rate=2e-6, seed_salt=3)
        off = degraded_lock_point("rw", 6, 0.2, ops=5, plan=plan, obs=ObsSpec())
        on = degraded_lock_point(
            "rw", 6, 0.2, ops=5, plan=plan, obs=ObsSpec(), batching=True
        )
        assert on.seconds == off.seconds
        assert on.faults == off.faults
        assert pickle.dumps(on.capture) == pickle.dumps(off.capture)

    def test_f1_dead_cell_point(self):
        plan = FaultPlan(dead_cells=(7,))
        off = degraded_lock_point("hardware", 4, 0.0, ops=5, plan=plan)
        on = degraded_lock_point("hardware", 4, 0.0, ops=5, plan=plan, batching=True)
        assert on.seconds == off.seconds
        assert on.faults == off.faults


def _run_history(
    n_procs: int,
    ops: int,
    seed: int,
    read_fraction: float,
    plan: FaultPlan | None,
    batching: bool,
) -> tuple:
    machine = KsrMachine(
        MachineConfig.ksr1(n_cells=n_procs, seed=seed, enable_batching=batching)
    )
    if plan is not None:
        FaultInjector(plan).attach(machine)
    history: list[float] = []
    machine.engine.probe = history.append
    mem = SharedMemory(machine)
    lock = TicketReadWriteLock(mem) if read_fraction else HardwareExclusiveLock(mem)
    params = LockWorkloadParams(
        ops_per_processor=ops, read_fraction=read_fraction, seed=seed
    )
    result = run_lock_workload(machine, lock, params, n_threads=n_procs)
    return (
        tuple(history),
        result.total_seconds,
        machine.engine.now,
        tuple(sorted(machine.total_perf().snapshot().items())),
        machine.engine.stats.events_fired,
    )


class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        n_procs=st.integers(min_value=2, max_value=8),
        ops=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
        read_fraction=st.sampled_from([0.0, 0.5]),
    )
    def test_random_workloads_identical(self, n_procs, ops, seed, read_fraction):
        off = _run_history(n_procs, ops, seed, read_fraction, None, False)
        on = _run_history(n_procs, ops, seed, read_fraction, None, True)
        assert on == off

    @settings(max_examples=6, deadline=None)
    @given(
        n_procs=st.integers(min_value=2, max_value=6),
        ops=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        corruption=st.sampled_from([0.0, 0.05]),
        stall=st.sampled_from([0.0, 5e-6]),
    )
    def test_random_faulted_workloads_identical(
        self, n_procs, ops, seed, corruption, stall
    ):
        plan = FaultPlan(corruption_rate=corruption, stall_rate=stall, seed_salt=seed % 7)
        off = _run_history(n_procs, ops, seed, 0.0, plan, False)
        on = _run_history(n_procs, ops, seed, 0.0, plan, True)
        assert on == off
