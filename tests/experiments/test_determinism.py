"""Determinism tests: same seed, same results; different seed, details
differ.  Reproducibility is a core property of the simulator — every
number in EXPERIMENTS.md should be regenerable bit-for-bit.
"""

from repro.experiments.barriers import measure_barrier
from repro.experiments.latency import measure_latencies
from repro.experiments.locks import measure_lock
from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig


class TestSameSeedSameResult:
    def test_barrier_measurement(self):
        a = measure_barrier("tournament(M)", 8, reps=5, seed=42)
        b = measure_barrier("tournament(M)", 8, reps=5, seed=42)
        assert a == b

    def test_latency_measurement(self):
        a = measure_latencies(4, "network", "read", seed=42, samples=200)
        b = measure_latencies(4, "network", "read", seed=42, samples=200)
        assert a.mean_latency_s == b.mean_latency_s

    def test_lock_measurement(self):
        a = measure_lock("rw", 4, 0.5, ops=8, seed=42)
        b = measure_lock("rw", 4, 0.5, ops=8, seed=42)
        assert a == b

    def test_kernel_model(self):
        k1 = CgKernel(MachineConfig.ksr1(8, seed=42), n=600, nnz_target=30_000)
        k2 = CgKernel(MachineConfig.ksr1(8, seed=42), n=600, nnz_target=30_000)
        assert k1.run(8).time_s == k2.run(8).time_s


class TestSeedsMatter:
    def test_barrier_jitter_differs(self):
        a = measure_barrier("tournament(M)", 8, reps=5, seed=1)
        b = measure_barrier("tournament(M)", 8, reps=5, seed=2)
        assert a != b

    def test_but_only_slightly(self):
        """Seeds perturb slot jitter, not the physics: results across
        seeds agree within a few percent."""
        times = [measure_barrier("tree(M)", 8, reps=5, seed=s) for s in range(5)]
        assert max(times) / min(times) < 1.15
