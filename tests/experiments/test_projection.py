"""Tests for the beyond-the-paper projection experiments."""

import pytest

from repro.experiments.projection import run_barrier_projection, run_cg_projection


class TestBarrierProjection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_barrier_projection(proc_counts=[32, 64, 128], reps=5)

    def test_ring_counts(self, result):
        rings = dict(zip(result.column("P"), result.column("leaf rings")))
        assert rings == {32: 1, 64: 2, 128: 4}

    def test_counter_diverges_from_tournament(self, result):
        ratios = result.column("ratio")
        assert ratios == sorted(ratios)  # the gap widens with P
        assert ratios[-1] > 2 * ratios[0]

    def test_tournament_m_subloglinear(self, result):
        tm = dict(result.series["tournament(M)"])
        # quadrupling P far less than doubles the winner's time
        assert tm[128] / tm[32] < 2.5


class TestCgProjection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cg_projection(proc_counts=[1, 32, 128, 512])

    def test_speedup_peaks_then_declines(self, result):
        speedups = dict(result.series["speedup"])
        assert speedups[128] > speedups[32]
        assert speedups[512] < speedups[128]

    def test_serial_share_dominates_midrange(self, result):
        shares = dict(zip(result.column("P"), result.column("serial share")))
        assert shares[128] > shares[1]

    def test_projection_disclaimer_present(self, result):
        assert any("projection only" in n for n in result.notes)


class TestCliIntegration:
    def test_cli_runs_projection(self, capsys):
        from repro.experiments.cli import main

        assert main(["proj-barriers", "--quick"]) == 0
        assert "PROJ-BAR" in capsys.readouterr().out

    def test_cli_output_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "report.md"
        assert main(["other-archs", "--output", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# ksr-experiments report")
        assert "S3.2.3" in text
