"""Tests for the CSC-vs-CSR data-structure study."""

import pytest

from repro.experiments.cg_formats import run_format_comparison


@pytest.fixture(scope="module")
def result():
    return run_format_comparison(proc_counts=[1, 4, 16, 32])


class TestFormatComparison:
    def test_sequential_formats_comparable(self, result):
        """With one processor there is no synchronization: the two
        layouts are within a few tens of percent of each other."""
        row1 = result.rows[0]
        assert row1[0] == 1
        assert row1[3] < 1.5

    def test_parallel_csc_pays_heavily(self, result):
        """'Multiple processors writing into the same element of y
        necessitating synchronization for every access' — the paper's
        motivation, quantified."""
        penalties = dict(zip(result.column("P"), result.column("CSC penalty")))
        assert penalties[4] > 3.0
        assert penalties[32] > 8.0

    def test_csr_keeps_scaling(self, result):
        csr = dict(result.series["csr"])
        assert csr[32] < csr[4] < csr[1]

    def test_csc_does_not_scale(self, result):
        """The synchronized scatter destroys parallel efficiency."""
        csc = dict(result.series["csc"])
        speedup32 = csc[1] / csc[32]
        assert speedup32 < 8.0  # nowhere near 32

    def test_cli_integration(self, capsys):
        from repro.experiments.cli import main

        assert main(["cg-formats"]) == 0
        assert "CG-FMT" in capsys.readouterr().out
