"""Tests for the kernel-experiment runners at test scale."""

import pytest

from repro.experiments.cg_scaling import run_cg_poststore, run_table1
from repro.experiments.ep_scaling import run_ep_scaling
from repro.experiments.is_scaling import run_table2
from repro.experiments.sp_scaling import run_sp_poststore, run_table3, run_table4


class TestEpRunner:
    def test_table_structure(self):
        r = run_ep_scaling(proc_counts=[1, 4, 16], n_pairs=1 << 16)
        assert r.column("P") == [1, 4, 16]
        assert any("MFLOPS" in n for n in r.notes)
        speedups = dict(r.series["speedup"])
        assert speedups[16] == pytest.approx(16, rel=0.06)


class TestCgRunner:
    def test_table1_columns(self):
        r = run_table1(proc_counts=[1, 4, 16])
        assert r.headers[0] == "Processors"
        assert r.rows[0][2] == 1.0  # speedup baseline
        assert r.rows[0][4] == "-"  # dash at p=1, like the paper
        assert isinstance(r.rows[-1][4], float)

    def test_poststore_runner(self):
        r = run_cg_poststore(proc_counts=[4, 16])
        assert len(r.rows) == 2
        gains = dict(r.series["poststore gain"])
        assert set(gains) == {4, 16}


class TestIsRunner:
    def test_table2_notes_and_shape(self):
        r = run_table2(proc_counts=[1, 4, 16, 30, 32])
        assert any("serial fraction" in n for n in r.notes)
        times = r.column("Time (s)")
        assert times[0] > times[1] > times[2]

    def test_numerics_verified_inside_runner(self):
        # the runner calls kernel.verify(); reaching here means it passed
        r = run_table2(proc_counts=[1, 2])
        assert len(r.rows) == 2


class TestSpRunners:
    def test_table3(self):
        r = run_table3(proc_counts=[1, 8, 31])
        speedups = dict(r.series["SP speedup"])
        assert speedups[31] > speedups[8] > 1

    def test_table4_ladder_order(self):
        r = run_table4(n_procs=16)
        times = [row[1] for row in r.rows]
        assert times == sorted(times, reverse=True)
        assert r.rows[0][2] == "-"
        assert r.rows[1][2].startswith("+")

    def test_sp_poststore_runner(self):
        r = run_sp_poststore(n_procs=16)
        best, with_ps = (row[1] for row in r.rows)
        assert with_ps > best
        assert any("shared state" in n for n in r.notes)
