"""Tests for the combined Figure 8 runner."""

from repro.experiments.figure8 import run_figure8


class TestFigure8:
    def test_two_series_over_same_p(self):
        r = run_figure8(proc_counts=[1, 4, 16])
        assert set(r.series) == {"CG", "IS"}
        assert [x for x, _ in r.series["CG"]] == [1, 4, 16]
        assert [x for x, _ in r.series["IS"]] == [1, 4, 16]

    def test_baselines_are_one(self):
        r = run_figure8(proc_counts=[1, 8])
        assert r.rows[0][1] == 1.0 and r.rows[0][2] == 1.0

    def test_cg_ends_above_is(self):
        """The paper's Figure 8: the CG curve tops the IS curve at the
        full ring."""
        r = run_figure8(proc_counts=[1, 16, 32])
        assert r.rows[-1][1] > r.rows[-1][2]

    def test_cli_integration(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig8"]) == 0
        assert "FIG8" in capsys.readouterr().out
