"""Paper-size shape assertions: the headline numbers of each table.

These run the kernels at the paper's problem sizes (the slowest tests
in the suite, ~30 s total) and pin the reproduced *shape* against the
published anchors: who wins, by what factor, where the crossovers are.
"""

import pytest

from repro.experiments.base import PAPER_ANCHORS
from repro.kernels.cg import CgKernel
from repro.kernels.is_sort import IsKernel
from repro.kernels.sp import SpApplication
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable


@pytest.fixture(scope="module")
def config():
    return MachineConfig.ksr1(32)


@pytest.fixture(scope="module")
def cg_table(config):
    kernel = CgKernel.paper_size(config)
    return ScalingTable.from_pairs(
        [(p, kernel.run(p).time_s) for p in (1, 2, 4, 8, 16, 32)]
    )


@pytest.fixture(scope="module")
def is_table(config):
    kernel = IsKernel.paper_size(config)
    return ScalingTable.from_pairs(
        [(p, kernel.run(p).time_s) for p in (1, 2, 4, 8, 16, 30, 32)]
    )


class TestCgPaperSize:
    def test_speedup_at_32_in_band(self, cg_table):
        """Paper: 22.76; we accept 22.76 +/- 30%."""
        published = PAPER_ANCHORS["cg_speedups"][32]
        measured = cg_table.points()[-1].speedup
        assert measured == pytest.approx(published, rel=0.30)

    def test_superunitary_regime_exists(self, cg_table):
        """Cache relief must produce at least one superunitary step
        (paper: between 4 and 16 processors; our word-size model shifts
        it earlier — see EXPERIMENTS.md)."""
        assert cg_table.superunitary_steps()

    def test_serial_fraction_rises_at_scale(self, cg_table):
        pts = {p.processors: p.serial_fraction for p in cg_table.points()}
        assert pts[32] > pts[8]

    def test_efficiency_declines_16_to_32(self, cg_table):
        pts = {p.processors: p.efficiency for p in cg_table.points()}
        assert pts[32] < pts[16]


class TestIsPaperSize:
    def test_speedup_at_32_in_band(self, is_table):
        """Paper: 18.92; same ballpark (+/- 35%)."""
        published = PAPER_ANCHORS["is_speedups"][32]
        measured = is_table.points()[-1].speedup
        assert measured == pytest.approx(published, rel=0.35)

    def test_serial_fraction_rises(self, is_table):
        fr = [
            p.serial_fraction
            for p in is_table.points()
            if p.serial_fraction is not None and p.processors >= 8
        ]
        assert fr == sorted(fr)

    def test_30_to_32_step_marginal(self, is_table):
        """Paper: adding the last two processors gains nothing."""
        times = {p.processors: p.time_s for p in is_table.points()}
        assert times[32] > 0.97 * times[30]

    def test_efficiency_profile(self, is_table):
        pts = {p.processors: p.efficiency for p in is_table.points()}
        assert pts[8] > pts[16] > pts[32]
        assert pts[32] < 0.75  # paper: 0.591


class TestSpPaperSize:
    @pytest.fixture(scope="class")
    def sp(self, config):
        return SpApplication.paper_size(config)

    def test_speedup_at_31_in_band(self, sp):
        """Paper: 27.8 at 31 processors; accept +/- 20%."""
        runs = sp.scaling([1, 31])
        speedup = runs[0].time_per_iteration_s / runs[1].time_per_iteration_s
        assert speedup == pytest.approx(PAPER_ANCHORS["sp_speedups"][31], rel=0.20)

    def test_optimization_ladder_ratios(self, sp):
        """Paper: 2.54 -> 2.14 (-15.7%) -> 1.89 (-11.7%)."""
        base, padded, prefetched = (
            r.time_per_iteration_s for r in sp.optimization_ladder(30)
        )
        assert 1 - padded / base == pytest.approx(0.157, abs=0.06)
        assert 1 - prefetched / padded == pytest.approx(0.117, abs=0.06)

    def test_poststore_hurts(self, sp):
        assert (
            sp.run(30, poststore=True).time_per_iteration_s
            > sp.run(30).time_per_iteration_s
        )


class TestCgPoststorePaperSize:
    def test_gain_peaks_then_collapses(self, config):
        """Paper: ~3% at 16, mitigated near saturation at 32."""
        kernel = CgKernel.paper_size(config)
        gains = {}
        for p in (16, 32):
            plain = kernel.run(p).time_s
            ps = kernel.run(p, use_poststore=True).time_s
            gains[p] = (plain - ps) / plain
        assert gains[16] > 0.02
        assert gains[32] < gains[16] * 0.5
