"""Tests for the section-4 future-features study."""

import pytest

from repro.experiments.future_features import evaluate_cg_matvec, run_future_features
from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig


@pytest.fixture(scope="module")
def kernel():
    return CgKernel(MachineConfig.ksr1(32), n=1400, nnz_target=203_000)


class TestVariants:
    def test_prefetch_cuts_stream_fills(self, kernel):
        stock = evaluate_cg_matvec(kernel)
        pf = evaluate_cg_matvec(kernel, subcache_prefetch=True)
        assert pf.stream_cycles < 0.6 * stock.stream_cycles
        assert pf.gather_cycles == stock.gather_cycles  # data-dependent

    def test_selective_subcaching_cheapens_gather(self, kernel):
        stock = evaluate_cg_matvec(kernel)
        sel = evaluate_cg_matvec(kernel, selective_subcaching=True)
        assert sel.gather_cycles < stock.gather_cycles
        # ...at the price of uncached streams
        assert sel.stream_cycles > stock.stream_cycles

    def test_combination_is_best(self, kernel):
        both = evaluate_cg_matvec(
            kernel, subcache_prefetch=True, selective_subcaching=True
        )
        others = [
            evaluate_cg_matvec(kernel),
            evaluate_cg_matvec(kernel, subcache_prefetch=True),
            evaluate_cg_matvec(kernel, selective_subcaching=True),
        ]
        assert all(both.total_cycles < o.total_cycles for o in others)

    def test_mflops_consistent_with_cycles(self, kernel):
        c = evaluate_cg_matvec(kernel)
        expected = 2.0 * kernel.matrix.nnz / kernel.config.seconds(c.total_cycles) / 1e6
        assert c.mflops == pytest.approx(expected)


class TestRunner:
    def test_four_rows_and_notes(self):
        r = run_future_features()
        assert [row[0] for row in r.rows] == [
            "stock",
            "sub-cache prefetch",
            "selective sub-caching",
            "both",
        ]
        assert any("only pay off together" in n for n in r.notes)

    def test_cli_integration(self, capsys):
        from repro.experiments.cli import main

        assert main(["future"]) == 0
        assert "FUTURE" in capsys.readouterr().out
