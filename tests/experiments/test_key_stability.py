"""Cache keys must be byte-identical across process boundaries.

The result cache is only sound if ``point_key`` computed in a
``SweepRunner`` worker equals the one computed in the parent — for
*every* kwarg type the experiment CLIs actually pass.  A type whose
canonical form smuggles in per-process state (a memory address, hash
randomisation, set iteration order) would silently split the cache into
per-process shards that never hit.

Covered here: numbers, strings, bools, None, config dataclasses
(:class:`MachineConfig`), :class:`FaultPlan` (cache-token values),
:class:`ObsSpec`, and containers of all of those.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.sweep import point_key
from repro.faults import FaultPlan
from repro.machine.config import MachineConfig
from repro.obs import ObsSpec


def probe(x=0, **kwargs) -> int:
    """Module-level target so workers can unpickle it by reference."""
    return 0


def key_in_subprocess(kwargs: dict) -> str:
    """Computed inside a worker: a fresh interpreter, fresh id()s."""
    return point_key(probe, kwargs)


#: One case per kwarg shape the experiment CLIs pass to point functions.
CASES = {
    "int": dict(n_procs=32),
    "large_int": dict(samples=1 << 23),
    "float": dict(read_fraction=0.4),
    "tiny_float": dict(rate=1e-5),
    "str": dict(kind="rw"),
    "bool": dict(full=True),
    "none": dict(obs=None),
    "config_dataclass": dict(config=MachineConfig.ksr1(n_cells=8, seed=303)),
    "fault_plan": dict(plan=FaultPlan(corruption_rate=1e-4, dead_cells=(3, 5))),
    "obs_spec": dict(obs=ObsSpec(bucket_cycles=5000.0, max_records=100)),
    "list_of_ints": dict(procs=[1, 2, 8, 32]),
    "tuple_of_floats": dict(rates=(0.0, 1e-5, 1e-4)),
    "dict_of_scalars": dict(opts={"ops": 30, "seed": 303}),
    "list_of_plans": dict(plans=[FaultPlan(), FaultPlan(corruption_rate=1e-3)]),
    "dict_of_plans": dict(plans={"clean": FaultPlan(), "faulty": FaultPlan(stall_rate=1e-6)}),
    "nested_mixed": dict(grid=[{"p": 8, "plan": FaultPlan(dead_cells=(1,))}]),
    "set_of_ints": dict(cells=frozenset({5, 3, 1})),
    "everything": dict(
        kind="rw", n_procs=16, read_fraction=0.0, ops=30, seed=303,
        plan=FaultPlan(corruption_rate=1e-4), obs=ObsSpec(),
        procs=[2, 4], extras={"full": False},
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_key_stable_across_process_roundtrip(name):
    kwargs = CASES[name]
    parent_key = point_key(probe, kwargs)
    with ProcessPoolExecutor(max_workers=1) as pool:
        child_key = pool.submit(key_in_subprocess, kwargs).result()
    assert child_key == parent_key, (
        f"{name}: key differs across processes — this kwarg type would "
        f"produce a cache that never hits under --jobs"
    )


def test_all_cases_produce_distinct_keys():
    """The canonicaliser must separate, not conflate, distinct points."""
    keys = {name: point_key(probe, kwargs) for name, kwargs in CASES.items()}
    assert len(set(keys.values())) == len(keys)


def test_key_stable_across_repeated_interpreters():
    """Two *separate* pools: guards against pool-level warm state."""
    kwargs = CASES["everything"]
    seen = set()
    for _ in range(2):
        with ProcessPoolExecutor(max_workers=1) as pool:
            seen.add(pool.submit(key_in_subprocess, kwargs).result())
    assert len(seen) == 1
