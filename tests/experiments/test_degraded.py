"""Degraded-mode experiment points and tables."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.degraded import (
    DegradedRingLoadModel,
    degraded_barrier_point,
    degraded_cg_point,
    degraded_ep_point,
    degraded_lock_point,
    fault_factors,
    run_degraded_barriers,
    run_degraded_kernels,
    run_degraded_locks,
)
from repro.experiments.locks import measure_lock
from repro.faults import FaultPlan
from repro.machine.config import MachineConfig


class TestLockPoint:
    def test_zero_plan_reproduces_the_clean_measurement(self):
        clean = measure_lock("rw", 8, 0.0, ops=10, seed=303)
        degraded = degraded_lock_point(
            "rw", 8, 0.0, ops=10, seed=303, plan=FaultPlan()
        )
        assert degraded.seconds == clean
        assert all(v == 0.0 for _, v in degraded.faults)

    def test_corruption_slows_and_tallies(self):
        clean = degraded_lock_point("rw", 8, 0.0, ops=10, plan=FaultPlan())
        faulty = degraded_lock_point(
            "rw", 8, 0.0, ops=10, plan=FaultPlan(corruption_rate=1e-2)
        )
        assert faulty.seconds > clean.seconds
        assert faulty.fault("retries") > 0

    def test_dead_cell_under_thread_placement_rejected(self):
        with pytest.raises(ConfigError, match="thread placement"):
            degraded_lock_point("rw", 8, 0.0, ops=10, plan=FaultPlan(dead_cells=(3,)))

    def test_dead_cell_above_thread_placement_allowed(self):
        point = degraded_lock_point(
            "rw", 4, 0.0, ops=10, plan=FaultPlan(dead_cells=(5,))
        )
        assert point.fault("bypass_hops") > 0

    def test_unknown_lock_kind(self):
        with pytest.raises(ValueError, match="lock kind"):
            degraded_lock_point("spin", 4, 0.0, ops=10)


class TestBarrierPoint:
    def test_needs_two_processors(self):
        with pytest.raises(ConfigError):
            degraded_barrier_point("tree", 1)

    def test_zero_and_faulty_points_run(self):
        clean = degraded_barrier_point("tree", 4, reps=4, plan=FaultPlan())
        faulty = degraded_barrier_point(
            "tree", 4, reps=4, plan=FaultPlan(corruption_rate=1e-2)
        )
        assert clean.seconds > 0
        assert faulty.fault("retries") > 0


class TestFaultFactors:
    def test_zero_plan_is_identity(self):
        assert fault_factors(FaultPlan()) == (1.0, 0.0, 1.0)

    def test_corruption_inflates_retry_factor(self):
        retry, extra, inflation = fault_factors(FaultPlan(corruption_rate=0.5))
        assert 1.0 < retry < 2.0  # truncated geometric, budget of 8
        assert extra == 0.0
        assert inflation == 1.0

    def test_dead_cells_and_jitter_add_flat_cycles(self):
        _, extra, _ = fault_factors(
            FaultPlan(dead_cells=(40, 41), bypass_hop_cycles=8.0,
                      slot_jitter_cycles=2.0)
        )
        assert extra == 2 * 8.0 + 2.0

    def test_stall_inflation_capped(self):
        *_, inflation = fault_factors(
            FaultPlan(stall_rate=0.9, stall_cycles=1e6)
        )
        assert inflation == pytest.approx(1.0 / 0.1)


class TestDegradedLoadModel:
    def test_scales_and_offsets_the_clean_latency(self):
        ring = MachineConfig.ksr1(n_cells=4, seed=1).ring
        from repro.ring.contention import RingLoadModel

        clean = RingLoadModel(ring).effective_latency(8)
        degraded = DegradedRingLoadModel(
            ring, retry_factor=1.5, extra_cycles=10.0
        ).effective_latency(8)
        assert degraded == pytest.approx(clean * 1.5 + 10.0)

    def test_kernel_points_degrade_monotonically(self):
        plan = FaultPlan(corruption_rate=0.2)
        assert degraded_ep_point(4, n_pairs=1 << 12, plan=plan).seconds > (
            degraded_ep_point(4, n_pairs=1 << 12).seconds
        )
        assert degraded_cg_point(4, plan=plan).seconds > (
            degraded_cg_point(4).seconds
        )


class TestTables:
    RATES = [0.0, 1e-3]

    def test_locks_table_shape(self):
        result = run_degraded_locks([2, 4], self.RATES, ops=6)
        assert result.experiment_id == "F1"
        assert len(result.rows) == 2
        # P, clean, p=..., retries p=...
        assert len(result.headers) == 4
        assert result.notes

    def test_barriers_table_shape(self):
        result = run_degraded_barriers(
            [4], self.RATES, algorithms=["tree"], reps=4
        )
        assert result.experiment_id == "F2"
        assert len(result.rows) == 1
        assert result.rows[0][0] == "tree"

    def test_kernels_table_shape(self):
        result = run_degraded_kernels([1, 4], self.RATES)
        assert result.experiment_id == "F3"
        assert [row[0] for row in result.rows] == ["EP", "EP", "CG", "CG"]
