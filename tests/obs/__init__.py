"""Tests for the machine-wide observability pipeline (repro.obs)."""
