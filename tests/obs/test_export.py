"""Tests for the Chrome-trace/CSV exporters and their schema checker."""

import functools
import json

import pytest

from repro.experiments.locks import measure_lock
from repro.obs import (
    ObsSpec,
    chrome_trace_events,
    export_chrome,
    export_csv,
    point_slug,
    trace_sink,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.series import DERIVED_CHANNELS, RAW_CHANNELS


@functools.lru_cache(maxsize=None)
def _capture(max_records=None):
    """One small traced fig3 point, computed once per test process."""
    _, cap = measure_lock(
        "rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec(max_records=max_records)
    )
    return cap


class TestChromeExport:
    def test_document_passes_schema_check(self):
        doc = json.loads(export_chrome([_capture()]))
        assert validate_chrome_trace(doc) == []

    def test_event_population(self):
        cap = _capture()
        events = chrome_trace_events(cap, pid=3)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(cap.records)
        assert all(e["pid"] == 3 for e in events)
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "ring_utilization" in counters

    def test_timestamps_are_simulated_microseconds(self):
        cap = _capture()
        first = next(
            e
            for e in chrome_trace_events(cap)
            if e["ph"] == "X" and e["args"]["process"] == cap.records[0].process
        )
        assert first["ts"] == pytest.approx(
            cap.records[0].time / cap.clock_hz * 1e6
        )

    def test_multiple_captures_get_distinct_pids(self):
        doc = json.loads(export_chrome([_capture(), _capture()]))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}
        assert [c["pid"] for c in doc["otherData"]["captures"]] == [0, 1]

    def test_dropped_records_surface_in_other_data(self):
        doc = json.loads(export_chrome([_capture(max_records=10)]))
        (meta,) = doc["otherData"]["captures"]
        assert meta["records"] == 10
        assert meta["dropped_records"] > 0

    def test_export_is_byte_deterministic(self):
        cap = _capture()
        _, again = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        assert export_chrome([cap]) == export_chrome([again])

    def test_write_chrome_trace_creates_parents(self, tmp_path):
        out = write_chrome_trace(tmp_path / "a" / "b.trace.json", [_capture()])
        assert out.exists()
        assert validate_chrome_trace(json.loads(out.read_text())) == []


class TestSchemaChecker:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_flags_missing_fields(self):
        doc = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]}
        problems = validate_chrome_trace(doc)
        assert any("'name'" in p for p in problems)
        assert any("'ts'" in p for p in problems)
        assert any("'dur'" in p for p in problems)

    def test_flags_counter_without_args(self):
        doc = {
            "traceEvents": [
                {"ph": "C", "pid": 0, "tid": 0, "name": "x", "ts": 1.0}
            ]
        }
        assert any("'args'" in p for p in validate_chrome_trace(doc))

    def test_flags_non_object_event(self):
        assert validate_chrome_trace({"traceEvents": ["nope"]}) != []


class TestCsvExport:
    def test_shape_and_totals(self):
        cap = _capture()
        text = export_csv(cap)
        lines = text.splitlines()
        header = lines[0].split(",")
        assert header[0] == "bucket_start_cycles"
        assert set(RAW_CHANNELS) <= set(header)
        assert set(DERIVED_CHANNELS) <= set(header)
        data = [ln for ln in lines[1:] if not ln.startswith("#")]
        assert len(data) == len(cap.view.channel("ops"))
        assert all(len(ln.split(",")) == len(header) for ln in data)
        assert f"# label,{cap.label}" in lines
        assert any(ln.startswith("# total_ring_transactions,") for ln in lines)

    def test_dropped_records_comment(self):
        text = export_csv(_capture(max_records=10))
        dropped = next(
            ln for ln in text.splitlines() if ln.startswith("# dropped_records,")
        )
        assert int(dropped.split(",")[1]) > 0

    def test_csv_is_deterministic(self):
        assert export_csv(_capture()) == export_csv(_capture())


class TestPointSlug:
    def test_scalars_only_and_safe(self):
        slug = point_slug(
            dict(kind="rw", n_procs=8, read_fraction=0.4, obs=ObsSpec(), fn=print)
        )
        assert slug == "kind-rw_n_procs-8_read_fraction-0p4"
        assert "/" not in slug and " " not in slug

    def test_empty_kwargs(self):
        assert point_slug({}) == "point"


class TestTraceSink:
    def test_writes_only_traced_results(self, tmp_path):
        sink = trace_sink("FIG9", tmp_path)
        sink(0, dict(n_procs=2), 1.25)  # untraced result: skipped
        sink(1, dict(n_procs=4), (1.25, _capture()))
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["fig9_n_procs-4.trace.json"]
        doc = json.loads((tmp_path / files[0]).read_text())
        assert validate_chrome_trace(doc) == []
