"""Tests for the terminal summary and the service-facing capture digest."""

from __future__ import annotations

import functools
import json

from repro.experiments.locks import measure_lock
from repro.obs import ObsSpec, capture_summary, render_summary


@functools.lru_cache(maxsize=None)
def _capture():
    """One small traced fig3 point, computed once per test process."""
    _, cap = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
    return cap


class TestCaptureSummary:
    def test_json_safe(self):
        doc = capture_summary(_capture())
        round_tripped = json.loads(json.dumps(doc))
        assert round_tripped == doc

    def test_carries_the_analysis_channels(self):
        doc = capture_summary(_capture())
        assert doc["n_cells"] == 2
        assert doc["sim_seconds"] > 0
        assert doc["totals"]["ring_transactions"] > 0
        assert "subcache_miss_rate" in doc["derived"]
        assert "subpages" in doc["directory"]
        assert "peak_ring_utilization" in doc

    def test_zero_fault_capture_reports_zero_faults(self):
        doc = capture_summary(_capture())
        assert all(v == 0 for v in doc["faults"].values())

    def test_equal_captures_summarise_identically(self):
        _, a = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        _, b = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        assert capture_summary(a) == capture_summary(b)

    def test_summary_keys_sorted_for_determinism(self):
        doc = capture_summary(_capture())
        for field in ("totals", "derived", "directory", "faults"):
            assert list(doc[field]) == sorted(doc[field])


class TestRenderSummary:
    def test_render_mentions_label_and_table(self):
        text = render_summary([_capture()])
        assert "Machine-wide observability summary" in text
        assert _capture().label in text
