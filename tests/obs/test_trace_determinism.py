"""Traced runs are deterministic: serial, parallel and repeated runs
of the same points export byte-identical Chrome traces.

This is the observability pipeline's contract with the sweep
infrastructure: captures are pure functions of the point arguments, so
``--jobs N`` fan-out and result caching stay sound for traced runs.
"""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import validate_chrome_trace

_ARGS = ["fig3", "--procs", "16", "--ops", "6", "--format", "chrome", "--no-cache"]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep any cache writes inside the test's tmp directory."""
    monkeypatch.setenv("KSR_CACHE_DIR", str(tmp_path / "cache"))


def _export(tmp_path, name: str, extra: list[str]) -> bytes:
    out = tmp_path / name
    assert main([*_ARGS, *extra, "--output", str(out)]) == 0
    return out.read_bytes()


@pytest.mark.slow
def test_fig3_chrome_trace_is_jobs_invariant_and_repeatable(tmp_path, capsys):
    serial = _export(tmp_path, "serial.json", ["--jobs", "1"])
    parallel = _export(tmp_path, "parallel.json", ["--jobs", "4"])
    repeat = _export(tmp_path, "repeat.json", ["--jobs", "1"])
    assert serial == parallel
    assert serial == repeat
    doc = json.loads(serial)
    assert validate_chrome_trace(doc) == []
    labels = [c["label"] for c in doc["otherData"]["captures"]]
    assert labels[0] == "fig3 hardware P=16"
    assert len(labels) == 7
