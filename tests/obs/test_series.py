"""Tests for machine-wide time-bucketed series accumulation."""

import pytest

from repro.obs.series import DERIVED_CHANNELS, RAW_CHANNELS, MachineSeries, SeriesView


class _Ring:
    label = "leaf0"


class _OtherRing:
    label = "level1"


class TestBucketing:
    def test_events_land_in_their_bucket(self):
        s = MachineSeries(100.0)
        s.on_event(0.0)
        s.on_event(99.999)
        s.on_event(100.0)
        view = s.view()
        assert view.channel("events") == ((0.0, 2.0), (100.0, 1.0))

    def test_bucket_width_must_be_positive(self):
        with pytest.raises(ValueError):
            MachineSeries(0.0)
        with pytest.raises(ValueError):
            MachineSeries(-5.0)

    def test_view_covers_every_channel(self):
        s = MachineSeries(10.0)
        s.on_op(1.0, "read", "subcache", 2.0)
        view = s.view()
        for name in (*RAW_CHANNELS, *DERIVED_CHANNELS):
            assert name in view.series

    def test_empty_series(self):
        view = MachineSeries(10.0).view()
        assert view.channel("ops") == ()
        assert view.total("ops") == 0.0
        assert view.peak("ring_utilization") == 0.0


class TestOpClassification:
    def test_read_hit_levels(self):
        s = MachineSeries(1000.0)
        s.on_op(0.0, "read", "subcache", 2.0)
        s.on_op(1.0, "read", "local-cache", 18.0)
        s.on_op(2.0, "read", "remote", 180.0)
        s.on_op(3.0, "write", "", 20.0)
        s.on_op(4.0, "write", "cold", 40.0)
        view = s.view()
        assert view.total("ops") == 5
        assert view.total("reads") == 3
        assert view.total("writes") == 2
        assert view.total("read_subcache_hits") == 1
        assert view.total("read_local_hits") == 1
        assert view.total("remote_ops") == 1
        assert view.total("cold_ops") == 1
        assert view.total("op_cycles") == pytest.approx(260.0)

    def test_read_miss_rates(self):
        s = MachineSeries(1000.0)
        s.on_op(0.0, "read", "subcache", 2.0)
        s.on_op(1.0, "read", "remote", 180.0)
        view = s.view()
        ((_, miss_rate),) = view.channel("read_subcache_miss_rate")
        assert miss_rate == pytest.approx(0.5)
        ((_, remote_rate),) = view.channel("read_remote_rate")
        assert remote_rate == pytest.approx(0.5)


class TestRingChannels:
    def test_utilization_uses_total_slots(self):
        s = MachineSeries(100.0, total_slots=10)
        s.on_ring(_Ring(), 0.0, 0.0, 250.0)  # 250 of 1000 slot-cycles
        view = s.view()
        ((_, util),) = view.channel("ring_utilization")
        assert util == pytest.approx(0.25)

    def test_utilization_capped_at_one(self):
        s = MachineSeries(100.0, total_slots=1)
        s.on_ring(_Ring(), 0.0, 0.0, 5000.0)
        assert s.view().peak("ring_utilization") == 1.0

    def test_utilization_zero_without_slots(self):
        s = MachineSeries(100.0)  # total_slots defaults to 0
        s.on_ring(_Ring(), 0.0, 0.0, 250.0)
        assert s.view().peak("ring_utilization") == 0.0

    def test_wait_channels(self):
        s = MachineSeries(100.0, total_slots=10)
        s.on_ring(_Ring(), 0.0, 30.0, 90.0)
        s.on_ring(_Ring(), 1.0, 10.0, 70.0)
        view = s.view()
        ((_, frac),) = view.channel("slot_wait_fraction")
        assert frac == pytest.approx(40.0 / 200.0)
        ((_, mean_wait),) = view.channel("mean_slot_wait_cycles")
        assert mean_wait == pytest.approx(20.0)
        assert view.total("ring_tx") == 2

    def test_per_ring_transit(self):
        s = MachineSeries(100.0)
        s.on_ring(_Ring(), 0.0, 0.0, 50.0)
        s.on_ring(_OtherRing(), 0.0, 0.0, 30.0)
        s.on_ring(_Ring(), 5.0, 0.0, 20.0)
        assert s.per_ring_transit() == {"leaf0": 70.0, "level1": 30.0}

    def test_invalidations(self):
        s = MachineSeries(100.0)
        s.on_invalidations(10.0, 3)
        s.on_invalidations(20.0, 2)
        assert s.view().total("invalidations") == 5


class TestSeriesView:
    def test_view_is_frozen_and_ordered(self):
        s = MachineSeries(10.0)
        s.on_event(25.0)
        s.on_event(5.0)
        view = s.view()
        assert isinstance(view, SeriesView)
        starts = [t for t, _ in view.channel("events")]
        assert starts == sorted(starts) == [0.0, 20.0]
        with pytest.raises(AttributeError):
            view.bucket_cycles = 1.0
