"""Tests for Observer attach/detach wiring and capture snapshots."""

import pickle

import pytest

from repro.errors import SimulationError
from repro.experiments.locks import measure_lock
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.memory.perfmon import PerfMonitor
from repro.obs import Observer, ObsCapture, ObsSpec


def _machine(n_cells: int = 2, seed: int = 7) -> KsrMachine:
    return KsrMachine(MachineConfig.ksr1(n_cells=n_cells, seed=seed))


class TestAttachDetach:
    def test_attach_wires_every_probe(self):
        machine = _machine()
        obs = Observer().attach(machine)
        assert obs.attached
        assert machine.engine.probe is not None
        assert machine.protocol.probe is obs.series
        assert all(r.probe is not None for r in machine.hierarchy.all_rings)
        assert machine.trace is obs.trace

    def test_detach_restores_everything(self):
        machine = _machine()
        prev_trace = machine.trace
        obs = Observer().attach(machine)
        obs.detach()
        assert not obs.attached
        assert machine.engine.probe is None
        assert machine.protocol.probe is None
        assert all(r.probe is None for r in machine.hierarchy.all_rings)
        assert machine.trace is prev_trace
        for cell in machine.cells:
            assert cell.trace is prev_trace

    def test_double_attach_rejected(self):
        machine = _machine()
        obs = Observer().attach(machine)
        with pytest.raises(SimulationError):
            obs.attach(_machine())
        with pytest.raises(SimulationError):
            Observer().attach(machine)
        obs.detach()
        Observer().attach(machine).detach()  # free again after detach

    def test_capture_requires_attachment(self):
        with pytest.raises(SimulationError):
            Observer().capture("nothing")

    def test_detach_is_idempotent(self):
        obs = Observer()
        obs.detach()  # never attached: a no-op
        obs.attach(_machine())
        obs.detach()
        obs.detach()


class TestObservedRuns:
    def test_probes_do_not_perturb_the_simulation(self):
        plain = measure_lock("rw", 2, 0.5, ops=6, seed=11)
        traced, capture = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        assert traced == plain
        assert isinstance(capture, ObsCapture)

    def test_capture_contents(self):
        _, cap = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        assert cap.label == "fig3 rw 50% read P=2"
        assert cap.n_cells == 2
        assert cap.end_cycles > 0
        assert cap.end_seconds == pytest.approx(cap.end_cycles / cap.clock_hz)
        assert cap.us(cap.clock_hz) == pytest.approx(1e6)
        assert len(cap.perfmon) == cap.n_cells
        assert cap.meta["ops"] == "6"
        assert cap.meta["seed"] == "11"
        # machine totals really are the sum of the per-cell monitors
        agg = PerfMonitor.aggregate(PerfMonitor(**snap) for snap in cap.perfmon)
        assert agg.snapshot() == cap.totals
        # the series saw the ops the trace recorded
        assert cap.view.total("ops") == len(cap.records)
        assert cap.view.total("ring_tx") == cap.totals["ring_transactions"]
        assert cap.directory["subpages"] >= 1

    def test_capture_is_picklable_and_stable(self):
        _, cap = measure_lock("rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec())
        clone = pickle.loads(pickle.dumps(cap))
        assert clone == cap

    def test_record_cap_counts_drops_but_series_stay_exact(self):
        _, full = measure_lock(
            "rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec(max_records=None)
        )
        _, capped = measure_lock(
            "rw", 2, 0.5, ops=6, seed=11, obs=ObsSpec(max_records=10)
        )
        assert full.dropped_records == 0
        assert len(capped.records) == 10
        assert capped.dropped_records == len(full.records) - 10
        # the retained records are the newest ones
        assert capped.records == full.records[-10:]
        # bucketed series include the evicted records
        assert capped.view == full.view

    def test_spec_repr_is_deterministic(self):
        # the sweep cache keys points by repr of their kwargs
        assert repr(ObsSpec()) == repr(ObsSpec())
        assert repr(ObsSpec(bucket_cycles=1.0)) != repr(ObsSpec())
