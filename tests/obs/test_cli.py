"""Tests for the ksr-trace command line."""

import json

import pytest

from repro.obs.cli import SUBJECTS, main
from repro.obs.export import validate_chrome_trace

_FAST = ["--procs", "2", "--ops", "4", "--no-cache"]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep any cache writes inside the test's tmp directory."""
    monkeypatch.setenv("KSR_CACHE_DIR", str(tmp_path / "cache"))


class TestSelection:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in SUBJECTS:
            assert key in out

    def test_no_subjects_lists(self, capsys):
        assert main([]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_unknown_subject(self, capsys):
        assert main(["fig99"]) == 2
        assert "fig99" in capsys.readouterr().err


class TestFormats:
    def test_summary_to_stdout(self, capsys):
        assert main(["fig3", *_FAST]) == 0
        out = capsys.readouterr().out
        assert "Machine-wide observability summary" in out
        assert "fig3 hardware P=2" in out
        assert "fig3 rw 100% read P=2" in out

    def test_chrome_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig3.trace.json"
        assert main(["fig3", *_FAST, "--format", "chrome", "--output", str(out_file)]) == 0
        assert str(out_file) in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert validate_chrome_trace(doc) == []
        # one capture per fig3 point: hardware + six read fractions
        assert len(doc["otherData"]["captures"]) == 7

    def test_csv_to_stdout(self, capsys):
        assert main(["fig3", *_FAST, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("bucket_start_cycles,")
        assert "# label,fig3 hardware P=2" in out

    def test_record_cap_flag(self, tmp_path, capsys):
        out_file = tmp_path / "capped.trace.json"
        assert (
            main(
                ["fig3", *_FAST, "--max-records", "5",
                 "--format", "chrome", "--output", str(out_file)]
            )
            == 0
        )
        doc = json.loads(out_file.read_text())
        for meta in doc["otherData"]["captures"]:
            assert meta["records"] <= 5

    def test_summary_reports_dropped_records(self, capsys):
        assert main(["fig3", *_FAST, "--max-records", "5"]) == 0
        out = capsys.readouterr().out
        assert "trace ring buffer dropped" in out

    def test_cache_roundtrip_is_identical(self, tmp_path, capsys):
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        args = ["fig3", "--procs", "2", "--ops", "4", "--format", "chrome"]
        assert main([*args, "--output", str(cold)]) == 0  # populates the cache
        assert main([*args, "--output", str(warm)]) == 0  # served from it
        capsys.readouterr()
        assert cold.read_bytes() == warm.read_bytes()


class TestSubjects:
    def test_fig2_points(self, capsys):
        args = ["fig2", "--procs", "2", "--samples", "40", "--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fig2 local read P=2" in out
        assert "fig2 network write P=2" in out

    def test_fig2_single_processor_skips_network(self, capsys):
        args = ["fig2", "--procs", "1", "--samples", "40", "--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fig2 local read P=1" in out
        assert "network" not in out

    def test_fig4_and_fig5_barriers(self, tmp_path, capsys):
        out_file = tmp_path / "bar.trace.json"
        args = [
            "fig4", "fig5", "--procs", "2", "--reps", "2", "--no-cache",
            "--format", "chrome", "--output", str(out_file),
        ]
        assert main(args) == 0
        capsys.readouterr()
        doc = json.loads(out_file.read_text())
        assert validate_chrome_trace(doc) == []
        labels = [c["label"] for c in doc["otherData"]["captures"]]
        assert len(labels) == 18  # nine algorithms per machine
        # fig5 runs on the 33-cell two-ring KSR-2 even at small P
        cells = {c["n_cells"] for c in doc["otherData"]["captures"]}
        assert cells == {2, 33}
