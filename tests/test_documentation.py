"""Meta-tests: every public item in the library carries documentation.

The paper reproduction is also a teaching artifact; undocumented public
surface defeats that purpose, so the suite enforces it.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None


def test_design_and_experiments_docs_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists() and path.stat().st_size > 1000, f"{doc} missing or stubby"
