"""Tests for all nine barrier algorithms.

Correctness is defined by the barrier property: no thread begins
episode e+1 work before every thread has arrived at episode e.  Each
thread records a per-episode timestamp *before* and *after* the
barrier; the property holds iff min(after, e) >= max(before, e).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import LocalOps
from repro.sync.barriers import BARRIER_REGISTRY, make_barrier
from tests.conftest import quiet_ksr1, quiet_ksr2

ALL_BARRIERS = sorted(BARRIER_REGISTRY)


def run_barrier(name, n_procs, episodes=4, *, config=None, jitter=True, seed=17,
                use_poststore=True):
    """Run episodes; returns (before, after) timestamp tables."""
    cfg = config if config is not None else quiet_ksr1(max(2, n_procs), seed=seed)
    machine = KsrMachine(cfg)
    mem = SharedMemory(machine)
    barrier = make_barrier(name, mem, n_procs, use_poststore=use_poststore)
    before = {i: [] for i in range(n_procs)}
    after = {i: [] for i in range(n_procs)}

    def body(pid):
        for e in range(episodes):
            # uneven arrival times stress the algorithms
            yield LocalOps(37 * ((pid * 7 + e * 13) % 11) if jitter else 10)
            before[pid].append(machine.engine.now)
            yield from barrier.wait(pid, e)
            after[pid].append(machine.engine.now)

    for i in range(n_procs):
        machine.spawn(f"b{i}", body(i), i)
    machine.run()
    return before, after


def assert_barrier_property(before, after, n_procs, episodes):
    for e in range(episodes):
        last_arrival = max(before[i][e] for i in range(n_procs))
        first_exit = min(after[i][e] for i in range(n_procs))
        assert first_exit >= last_arrival, (
            f"episode {e}: a thread left at {first_exit} before the last "
            f"arrival at {last_arrival}"
        )


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_barrier_property_p8(self, name):
        before, after = run_barrier(name, 8, episodes=4)
        assert_barrier_property(before, after, 8, 4)

    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_barrier_property_non_power_of_two(self, name):
        before, after = run_barrier(name, 7, episodes=3)
        assert_barrier_property(before, after, 7, 3)

    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_barrier_property_p2(self, name):
        before, after = run_barrier(name, 2, episodes=3)
        assert_barrier_property(before, after, 2, 3)

    @pytest.mark.parametrize("name", ALL_BARRIERS)
    def test_single_thread_trivial(self, name):
        before, after = run_barrier(name, 1, episodes=2)
        assert len(after[0]) == 2

    @pytest.mark.parametrize("name", ["counter", "tournament(M)", "mcs"])
    def test_without_poststore_still_correct(self, name):
        before, after = run_barrier(name, 6, episodes=3, use_poststore=False)
        assert_barrier_property(before, after, 6, 3)

    @pytest.mark.parametrize("name", ["tree(M)", "mcs(M)", "dissemination"])
    def test_on_two_ring_ksr2(self, name):
        cfg = quiet_ksr2(64)
        before, after = run_barrier(name, 40, episodes=2, config=cfg)
        assert_barrier_property(before, after, 40, 2)

    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(["tournament", "mcs", "tree", "dissemination"]),
        n_procs=st.integers(min_value=2, max_value=13),
    )
    def test_barrier_property_fuzzed_sizes(self, name, n_procs):
        before, after = run_barrier(name, n_procs, episodes=3)
        assert_barrier_property(before, after, n_procs, 3)


class TestValidation:
    def test_unknown_name_rejected(self):
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        with pytest.raises(ConfigError):
            make_barrier("fancy", mem, 2)

    def test_pid_out_of_range(self):
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        barrier = make_barrier("counter", mem, 2)
        with pytest.raises(ConfigError):
            list(barrier.wait(5, 0))

    def test_zero_participants_rejected(self):
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        with pytest.raises(ConfigError):
            make_barrier("counter", mem, 0)


class TestStructure:
    def test_registry_complete(self):
        assert set(BARRIER_REGISTRY) == {
            "counter",
            "tree",
            "tree(M)",
            "dissemination",
            "tournament",
            "tournament(M)",
            "mcs",
            "mcs(M)",
            "system",
        }

    def test_mcs_trees(self):
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        from repro.sync.barriers.mcs import McsBarrier

        b = McsBarrier(mem, 16)
        assert b.arrival_children(0) == [1, 2, 3, 4]
        assert b.arrival_children(3) == [13, 14, 15]
        assert b.arrival_parent(7) == (1, 2)
        assert b.wakeup_children(0) == [1, 2]

    def test_mcs_child_flags_share_subpage(self):
        """The deliberate false sharing of the 4-child arrival word."""
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        from repro.sync.barriers.mcs import McsBarrier

        b = McsBarrier(mem, 8)
        subpages = {addr // 128 for addr in b.child_flags[0]}
        assert len(subpages) == 1

    def test_tournament_flags_padded(self):
        """Tournament flags must NOT share subpages (no false sharing)."""
        machine = KsrMachine(quiet_ksr1(2))
        mem = SharedMemory(machine)
        from repro.sync.barriers.tournament import TournamentBarrier

        b = TournamentBarrier(mem, 8)
        all_flags = [a for r in b.arrival for a in r.values()] + b.wakeup
        subpages = [a // 128 for a in all_flags]
        assert len(set(subpages)) == len(subpages)

    def test_rounds_for(self):
        from repro.sync.barriers.base import BarrierAlgorithm

        assert BarrierAlgorithm.rounds_for(1) == 0
        assert BarrierAlgorithm.rounds_for(2) == 1
        assert BarrierAlgorithm.rounds_for(5) == 3
        assert BarrierAlgorithm.rounds_for(32) == 5


class TestPerformanceShape:
    """The orderings the paper's Figure 4 establishes, at modest P so
    the suite stays fast; the full sweep lives in the benchmarks."""

    def _times(self, names, n_procs=16):
        from repro.experiments.barriers import measure_barrier

        return {n: measure_barrier(n, n_procs, reps=6) for n in names}

    def test_global_wakeup_beats_tree_wakeup(self):
        t = self._times(["tournament", "tournament(M)", "tree", "tree(M)"])
        assert t["tournament(M)"] < t["tournament"]
        assert t["tree(M)"] < t["tree"]

    def test_counter_is_worst_at_scale(self):
        t = self._times(["counter", "tournament(M)", "dissemination"], n_procs=32)
        assert t["counter"] > t["dissemination"] > t["tournament(M)"]

    def test_tournament_m_flat(self):
        """The winning curve stays nearly flat as P doubles."""
        from repro.experiments.barriers import measure_barrier

        t8 = measure_barrier("tournament(M)", 8, reps=6)
        t32 = measure_barrier("tournament(M)", 32, reps=6)
        assert t32 / t8 < 2.2

    def test_counter_grows_steeply(self):
        from repro.experiments.barriers import measure_barrier

        t8 = measure_barrier("counter", 8, reps=6)
        t32 = measure_barrier("counter", 32, reps=6)
        assert t32 / t8 > 3.0
