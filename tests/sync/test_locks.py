"""Tests for the lock algorithms: mutual exclusion, FCFS, read combining."""

import pytest

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, LocalOps, Read, Write
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    TicketReadWriteLock,
    run_lock_workload,
)
from tests.conftest import quiet_ksr1


def fresh(n_cells=4, seed=9):
    m = KsrMachine(quiet_ksr1(n_cells, seed=seed))
    return m, SharedMemory(m)


def _critical_increment(machine, mem, lock, n_threads, rounds, *, mode="write"):
    """Spawn incrementers protected by ``lock``; return final counter."""
    counter = mem.alloc_word()

    def body(pid):
        for _ in range(rounds):
            if mode == "write":
                yield from lock.acquire_write(pid)
            else:
                yield from lock.acquire_read(pid)
            v = yield Read(counter)
            yield Compute(50)  # widen the race window
            yield Write(counter, v + 1)
            if mode == "write":
                yield from lock.release_write(pid)
            else:
                yield from lock.release_read(pid)

    for i in range(n_threads):
        machine.spawn(f"inc-{i}", body(i), i)
    machine.run()
    return mem.peek(counter)


class TestHardwareLock:
    def test_mutual_exclusion(self):
        m, mem = fresh()
        lock = HardwareExclusiveLock(mem)
        assert _critical_increment(m, mem, lock, 4, 10) == 40

    def test_shared_mode_degrades_to_exclusive(self):
        """No read concurrency on the hardware primitive: increments
        under 'read' locks are still correct because they serialize."""
        m, mem = fresh()
        lock = HardwareExclusiveLock(mem)
        assert _critical_increment(m, mem, lock, 4, 10, mode="read") == 40


class TestTicketRwLock:
    def test_writer_mutual_exclusion(self):
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        assert _critical_increment(m, mem, lock, 4, 10) == 40

    def test_fcfs_among_writers(self):
        """Tickets are served strictly in acquisition order, unlike the
        ring-ordered hardware grants."""
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        order = []

        def body(pid, delay):
            def gen():
                yield Compute(delay)
                yield from lock.acquire_write(pid)
                order.append(pid)
                yield LocalOps(2000)
                yield from lock.release_write(pid)

            return gen()

        # staggered requests: 2 asks first, then 0, then 3, then 1
        delays = {2: 100, 0: 3000, 3: 6000, 1: 9000}
        for pid, d in delays.items():
            m.spawn(f"w{pid}", body(pid, d), pid)
        m.run()
        assert order == [2, 0, 3, 1]

    def test_readers_share(self):
        """Concurrent readers hold the lock simultaneously."""
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        active = {"now": 0, "peak": 0}

        def reader(pid):
            yield Compute(10 * pid)
            yield from lock.acquire_read(pid)
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            yield LocalOps(5000)
            active["now"] -= 1
            yield from lock.release_read(pid)

        for i in range(4):
            m.spawn(f"r{i}", reader(i), i)
        m.run()
        assert active["peak"] >= 2  # combining actually happened
        assert active["now"] == 0

    def test_writer_waits_for_all_readers(self):
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        log = []

        def reader(pid):
            yield from lock.acquire_read(pid)
            log.append(("r-in", pid))
            yield LocalOps(4000)
            log.append(("r-out", pid))
            yield from lock.release_read(pid)

        def writer(pid):
            yield Compute(500)  # readers first
            yield from lock.acquire_write(pid)
            log.append(("w-in", pid))
            yield from lock.release_write(pid)

        m.spawn("r0", reader(0), 0)
        m.spawn("r1", reader(1), 1)
        m.spawn("w", writer(2), 2)
        m.run()
        w_index = log.index(("w-in", 2))
        assert ("r-out", 0) in log[:w_index]
        assert ("r-out", 1) in log[:w_index]

    def test_reader_after_writer_is_fenced(self):
        """A reader requesting after a writer must wait (FCFS), not
        join the earlier read group."""
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        order = []

        def early_reader():
            yield from lock.acquire_read(0)
            order.append("r0-in")
            yield LocalOps(8000)
            order.append("r0-out")
            yield from lock.release_read(0)

        def writer():
            yield Compute(1000)
            yield from lock.acquire_write(1)
            order.append("w-in")
            yield from lock.release_write(1)

        def late_reader():
            yield Compute(2000)
            yield from lock.acquire_read(2)
            order.append("r2-in")
            yield from lock.release_read(2)

        m.spawn("r0", early_reader(), 0)
        m.spawn("w", writer(), 1)
        m.spawn("r2", late_reader(), 2)
        m.run()
        assert order.index("w-in") < order.index("r2-in")

    def test_counter_ring_validation(self):
        _, mem = fresh()
        with pytest.raises(ConfigError):
            TicketReadWriteLock(mem, counter_ring=1)


class TestWorkload:
    def test_params_validation(self):
        with pytest.raises(ConfigError):
            LockWorkloadParams(ops_per_processor=0)
        with pytest.raises(ConfigError):
            LockWorkloadParams(read_fraction=1.5)
        with pytest.raises(ConfigError):
            LockWorkloadParams(hold_local_ops=-1)

    def test_workload_counts(self):
        m, mem = fresh()
        lock = TicketReadWriteLock(mem)
        params = LockWorkloadParams(ops_per_processor=5, read_fraction=0.5, seed=3)
        result = run_lock_workload(m, lock, params, n_threads=4)
        assert result.n_acquisitions == 20
        assert 0 < result.n_read_acquisitions < 20
        assert result.total_seconds > 0

    def test_exclusive_grows_with_processors(self):
        """Figure 3's headline: in the lock-bound regime (P >= 8, where
        the critical sections fully serialize), total time grows about
        linearly with the processor count."""

        def total(n):
            m, mem = fresh(n_cells=n, seed=11)
            lock = HardwareExclusiveLock(mem)
            params = LockWorkloadParams(ops_per_processor=10)
            return run_lock_workload(m, lock, params, n_threads=n).total_seconds

        t8, t32 = total(8), total(32)
        assert 2.8 < t32 / t8 < 5.5

    def test_read_sharing_beats_exclusive(self):
        """Readers-only software lock clearly beats the hardware lock."""
        n = 8
        m1, mem1 = fresh(n_cells=n, seed=13)
        hw = HardwareExclusiveLock(mem1)
        t_hw = run_lock_workload(
            m1, hw, LockWorkloadParams(ops_per_processor=10, read_fraction=1.0)
        ).total_seconds
        m2, mem2 = fresh(n_cells=n, seed=13)
        sw = TicketReadWriteLock(mem2)
        t_sw = run_lock_workload(
            m2, sw, LockWorkloadParams(ops_per_processor=10, read_fraction=1.0)
        ).total_seconds
        assert t_sw < 0.8 * t_hw
