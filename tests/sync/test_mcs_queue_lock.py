"""Tests for the MCS queue lock extension."""

import pytest

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, LocalOps, Read, Write
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    McsQueueLock,
    run_lock_workload,
)
from tests.conftest import quiet_ksr1


def fresh(n_cells=4, seed=31):
    m = KsrMachine(quiet_ksr1(n_cells, seed=seed))
    return m, SharedMemory(m)


class TestMutualExclusion:
    def test_protected_increments(self):
        m, mem = fresh()
        lock = McsQueueLock(mem, 4)
        counter = mem.alloc_word()

        def body(pid):
            for _ in range(8):
                yield from lock.acquire(pid)
                v = yield Read(counter)
                yield Compute(40)
                yield Write(counter, v + 1)
                yield from lock.release(pid)

        for i in range(4):
            m.spawn(f"t{i}", body(i), i)
        m.run()
        assert mem.peek(counter) == 32

    def test_uncontended_fast_path(self):
        """Acquire+release with an empty queue never spins."""
        m, mem = fresh()
        lock = McsQueueLock(mem, 4)

        def body():
            yield from lock.acquire(0)
            yield from lock.release(0)

        p = m.spawn("solo", body(), 0)
        m.run()
        assert p.stall_cycles == 0

    def test_reusable_across_episodes(self):
        m, mem = fresh()
        lock = McsQueueLock(mem, 2)
        log = []

        def body(pid):
            for k in range(5):
                yield from lock.acquire(pid)
                log.append((pid, k))
                yield LocalOps(300)
                yield from lock.release(pid)

        m.spawn("a", body(0), 0)
        m.spawn("b", body(1), 1)
        m.run()
        assert len(log) == 10


class TestFcfs:
    def test_fcfs_order(self):
        m, mem = fresh()
        lock = McsQueueLock(mem, 4)
        order = []

        def body(pid, delay):
            def gen():
                yield Compute(delay)
                yield from lock.acquire(pid)
                order.append(pid)
                yield LocalOps(3000)
                yield from lock.release(pid)

            return gen()

        delays = {3: 50, 1: 2500, 0: 5000, 2: 7500}
        for pid, d in delays.items():
            m.spawn(f"t{pid}", body(pid, d), pid)
        m.run()
        assert order == [3, 1, 0, 2]


class TestWorkloadIntegration:
    def test_runs_paper_workload(self):
        m, mem = fresh(n_cells=8)
        lock = McsQueueLock(mem, 8)
        result = run_lock_workload(
            m, lock, LockWorkloadParams(ops_per_processor=6), n_threads=8
        )
        assert result.n_acquisitions == 48
        assert result.total_seconds > 0

    def test_competitive_with_hardware_under_contention(self):
        """Local spinning keeps MCS in the hardware lock's ballpark
        despite the software queue overhead."""

        def run(lock_factory):
            m, mem = fresh(n_cells=8, seed=77)
            lock = lock_factory(mem)
            return run_lock_workload(
                m, lock, LockWorkloadParams(ops_per_processor=10), n_threads=8
            ).total_seconds

        t_mcs = run(lambda mem: McsQueueLock(mem, 8))
        t_hw = run(HardwareExclusiveLock)
        assert t_mcs < 1.5 * t_hw


class TestValidation:
    def test_pid_bounds(self):
        m, mem = fresh()
        lock = McsQueueLock(mem, 2)
        with pytest.raises(ConfigError):
            list(lock.acquire(2))

    def test_needs_slots(self):
        _, mem = fresh()
        with pytest.raises(ConfigError):
            McsQueueLock(mem, 0)
