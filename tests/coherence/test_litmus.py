"""Sequential-consistency litmus tests, including fuzzing over
interleavings (thread start skews) and seeds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.litmus import ALL_LITMUS, run_iriw, run_lb, run_mp, run_sb
from repro.errors import ConfigError

skew = st.floats(min_value=0.0, max_value=600.0)
seeds = st.integers(min_value=0, max_value=10_000)

# Three-way skew grid: simultaneous start, a sub-ring-hop nudge, and a
# skew longer than a full remote miss.  The exhaustive product covers
# every alignment class of the racing threads.
GRID = (0.0, 40.0, 350.0)
grid_skew = st.sampled_from(GRID)


class TestBaseline:
    @pytest.mark.parametrize("name", sorted(ALL_LITMUS))
    def test_default_skews_allowed(self, name):
        outcome = ALL_LITMUS[name]()
        assert not outcome.forbidden, outcome

    def test_mp_sees_data_with_flag(self):
        # producer clearly first: observer must see both
        outcome = run_mp(skews=(0, 5000))
        assert outcome.observed == (1, 42)

    def test_sb_with_one_side_late(self):
        outcome = run_sb(skews=(0, 5000))
        # the late thread must observe the early store
        assert outcome.observed[1] == 1
        assert not outcome.forbidden


class TestFuzzedInterleavings:
    @settings(max_examples=25, deadline=None)
    @given(s0=skew, s1=skew, seed=seeds)
    def test_sb_never_forbidden(self, s0, s1, seed):
        assert not run_sb(skews=(s0, s1), seed=seed).forbidden

    @settings(max_examples=25, deadline=None)
    @given(s0=skew, s1=skew, seed=seeds)
    def test_mp_never_forbidden(self, s0, s1, seed):
        assert not run_mp(skews=(s0, s1), seed=seed).forbidden

    @settings(max_examples=25, deadline=None)
    @given(s0=skew, s1=skew, seed=seeds)
    def test_lb_never_forbidden(self, s0, s1, seed):
        assert not run_lb(skews=(s0, s1), seed=seed).forbidden

    @settings(max_examples=15, deadline=None)
    @given(s0=skew, s1=skew, s2=skew, s3=skew, seed=seeds)
    def test_iriw_never_forbidden(self, s0, s1, s2, s3, seed):
        assert not run_iriw(skews=(s0, s1, s2, s3), seed=seed).forbidden


class TestSkewGrids:
    """Exhaustive 3-way skew grids for the multi-thread litmus tests.

    Unlike the random fuzz above, these enumerate the full cartesian
    product of grid skews, so every start-order permutation and every
    tie is exercised deterministically on every run.
    """

    @pytest.mark.parametrize("s0", GRID)
    @pytest.mark.parametrize("s1", GRID)
    def test_lb_grid_never_forbidden(self, s0, s1):
        outcome = run_lb(skews=(s0, s1))
        assert not outcome.forbidden, (s0, s1, outcome)

    @pytest.mark.parametrize("s0", GRID)
    @pytest.mark.parametrize("s1", GRID)
    @pytest.mark.parametrize("s2", GRID)
    @pytest.mark.parametrize("s3", GRID)
    def test_iriw_grid_never_forbidden(self, s0, s1, s2, s3):
        outcome = run_iriw(skews=(s0, s1, s2, s3))
        assert not outcome.forbidden, (s0, s1, s2, s3, outcome)

    @settings(max_examples=30, deadline=None)
    @given(s0=grid_skew, s1=grid_skew, seed=seeds)
    def test_lb_grid_points_stable_across_seeds(self, s0, s1, seed):
        # grid alignments are the adversarial cases; vary the seed there
        assert not run_lb(skews=(s0, s1), seed=seed).forbidden

    @settings(max_examples=30, deadline=None)
    @given(s0=grid_skew, s1=grid_skew, s2=grid_skew, s3=grid_skew, seed=seeds)
    def test_iriw_grid_points_stable_across_seeds(self, s0, s1, s2, s3, seed):
        assert not run_iriw(skews=(s0, s1, s2, s3), seed=seed).forbidden


class TestValidation:
    def test_skew_arity(self):
        with pytest.raises(ConfigError):
            run_sb(skews=(1,))

    def test_negative_skew(self):
        with pytest.raises(ConfigError):
            run_mp(skews=(-1, 0))


class TestLitmusAsData:
    """The generalized data form (LitmusTest) behind the named runners."""

    def test_structure_of_the_ported_tests(self):
        from repro.coherence.litmus import IRIW, LB, MP, SB

        assert SB.n_cells == MP.n_cells == LB.n_cells == 2
        assert IRIW.n_cells == 4
        assert SB.reading_threads() == [0, 1]
        assert MP.reading_threads() == [1]
        assert IRIW.reading_threads() == [2, 3]
        assert (1, 1) in LB.forbidden and ((1, 0), (1, 0)) in IRIW.forbidden

    def test_run_litmus_matches_the_named_runner(self):
        from repro.coherence.litmus import MP, run_litmus

        direct = run_litmus(MP, skews=(0, 5000))
        named = run_mp(skews=(0, 5000))
        assert (direct.observed, direct.forbidden) == (named.observed, named.forbidden)
        assert direct.name == "MP"

    def test_single_reader_observation_is_unwrapped(self):
        from repro.coherence.litmus import MP, run_litmus

        outcome = run_litmus(MP, skews=(0, 5000))
        assert outcome.observed == (1, 42)  # flat, not ((1, 42),)

    def test_skew_arity_checked_against_thread_count(self):
        from repro.coherence.litmus import IRIW, run_litmus

        with pytest.raises(ConfigError):
            run_litmus(IRIW, skews=(0, 0))


class TestRunSchedule:
    """Step-at-a-time schedule execution (the scenario lowering target)."""

    def test_write_then_read_round_trip(self):
        from repro.coherence.litmus import run_schedule

        outcome = run_schedule(
            [("write", 0, 0, 7), ("read", 1, 0)], n_cells=2, n_vars=1
        )
        assert outcome.completed
        assert outcome.observations == ((1, 7),)
        assert outcome.memory == (7,)
        assert outcome.created == (True,)
        # both sides SHARED after the migratory read
        assert outcome.directory_states == (("SHARED", "SHARED"),)
        assert outcome.cache_states == outcome.directory_states

    def test_gsp_blocks_other_cells_until_released(self):
        from repro.coherence.litmus import run_schedule

        outcome = run_schedule(
            [("gsp", 0, 0), ("write", 1, 0, 9)],
            n_cells=2,
            n_vars=1,
            step_max_events=2_000,
        )
        assert not outcome.completed
        assert "step 1" in outcome.diagnostics

    def test_gsp_release_drains_to_exclusive(self):
        from repro.coherence.litmus import run_schedule

        outcome = run_schedule(
            [("gsp", 0, 0), ("rsp", 0, 0)], n_cells=2, n_vars=1
        )
        assert outcome.completed
        assert outcome.directory_states == (("EXCLUSIVE", None),)

    def test_subpages_are_independent(self):
        from repro.coherence.litmus import run_schedule

        outcome = run_schedule(
            [("write", 0, 0, 3), ("write", 1, 1, 4)], n_cells=2, n_vars=2
        )
        assert outcome.completed
        assert outcome.memory == (3, 4)
        assert outcome.directory_states == (
            ("EXCLUSIVE", None),
            (None, "EXCLUSIVE"),
        )
