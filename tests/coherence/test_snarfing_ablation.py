"""Tests for the read-snarfing ablation knob."""

from dataclasses import replace

from repro.experiments.barriers import measure_barrier
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, Read, WaitUntil, Write
from tests.conftest import quiet_ksr1


def machine_without_snarfing(n=4, seed=7):
    return KsrMachine(replace(quiet_ksr1(n, seed=seed), enable_snarfing=False))


class TestKnob:
    def test_no_snarfs_counted_when_disabled(self):
        m = machine_without_snarfing()
        mem = SharedMemory(m)
        a = mem.alloc_word()

        def writer():
            yield Write(a, 1)

        def reader(pid):
            def body():
                yield Compute(100 * pid)
                yield Read(a)

            return body()

        m.spawn("w", writer(), 0)
        for pid in (1, 2, 3):
            m.spawn(f"r{pid}", reader(pid), pid)
        m.run()
        assert m.total_perf().snarfs == 0

    def test_spinners_still_wake_correctly(self):
        m = machine_without_snarfing()
        mem = SharedMemory(m)
        flag = mem.alloc_word()

        def spinner(pid):
            def body():
                v = yield WaitUntil(flag, lambda x: x == 1)
                return v

            return body()

        def writer():
            yield Compute(2000)
            yield Write(flag, 1)

        spinners = [m.spawn(f"s{i}", spinner(i), i) for i in (1, 2, 3)]
        m.spawn("w", writer(), 0)
        m.run()
        assert all(p.result == 1 for p in spinners)
        # wakeups serialize: the spread exceeds one ring latency
        times = sorted(p.finished_at for p in spinners)
        assert times[-1] - times[0] >= m.config.remote_latency_cycles

    def test_global_flag_barrier_pays_for_missing_snarf(self):
        base = quiet_ksr1(16)
        with_snarf = measure_barrier("tree(M)", 16, machine_config=base, reps=6)
        without = measure_barrier(
            "tree(M)",
            16,
            machine_config=replace(base, enable_snarfing=False),
            reps=6,
        )
        assert without > 1.5 * with_snarf
