"""Protocol fuzzing: random well-formed programs must run to
completion with a consistent machine afterwards.

Checks after every fuzzed run:

1. no deadlock / livelock (machine.run() returns, all threads finish),
2. the directory's view of every subpage matches each cell's local
   cache state exactly,
3. directory invariants hold (sole exclusive owner, no valid+placeholder
   overlap) — ``entry.check()`` re-run over everything,
4. every value a thread wrote to its *private* region reads back
   correctly through the coherent memory,
5. lock-protected shared counters show no lost updates.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.sim.process import (
    Compute,
    GetSubpage,
    Poststore,
    Prefetch,
    Read,
    ReleaseSubpage,
    Write,
)
from tests.conftest import quiet_ksr1

N_CELLS = 4
OWN_WORDS = 6
SHARED_WORDS = 6

# one action = (kind, operand index); scripts are lists of actions
ACTIONS = st.sampled_from(
    [
        "compute",
        "read_shared",
        "write_shared",
        "read_own",
        "write_own",
        "prefetch_shared",
        "poststore_own",
        "locked_increment",
    ]
)
script = st.lists(st.tuples(ACTIONS, st.integers(0, 5)), min_size=1, max_size=25)


def _run_fuzz(scripts, seed):
    machine = KsrMachine(quiet_ksr1(N_CELLS, seed=seed))
    mem = SharedMemory(machine)
    shared = mem.array("shared", SHARED_WORDS)
    own = [mem.array(f"own{i}", OWN_WORDS) for i in range(N_CELLS)]
    lock = mem.alloc_word()
    counter = mem.alloc_word()
    expected_own: list[dict[int, int]] = [dict() for _ in range(N_CELLS)]
    expected_increments = 0

    def body(pid, actions):
        nonlocal expected_increments
        stamp = 0
        for kind, idx in actions:
            if kind == "compute":
                yield Compute(10 + idx * 7)
            elif kind == "read_shared":
                yield Read(shared.addr(idx % SHARED_WORDS))
            elif kind == "write_shared":
                yield Write(shared.addr(idx % SHARED_WORDS), pid * 1000 + idx)
            elif kind == "read_own":
                yield Read(own[pid].addr(idx % OWN_WORDS))
            elif kind == "write_own":
                stamp += 1
                value = pid * 100_000 + stamp
                expected_own[pid][idx % OWN_WORDS] = value
                yield Write(own[pid].addr(idx % OWN_WORDS), value)
            elif kind == "prefetch_shared":
                yield Prefetch(shared.addr(idx % SHARED_WORDS))
            elif kind == "poststore_own":
                word = idx % OWN_WORDS
                if word in expected_own[pid]:
                    yield Poststore(own[pid].addr(word))
            elif kind == "locked_increment":
                expected_increments += 1
                yield GetSubpage(lock)
                v = yield Read(counter)
                yield Write(counter, v + 1)
                yield ReleaseSubpage(lock)

    for pid, actions in enumerate(scripts):
        machine.spawn(f"fuzz-{pid}", body(pid, actions), pid)
    machine.run()  # check 1: terminates, no deadlock
    return machine, mem, own, counter, expected_own, expected_increments


def _check_consistency(machine):
    protocol = machine.protocol
    for sp, entry in protocol.directory._entries.items():
        entry.check()  # check 3
        for cell in machine.cells:
            dir_view = protocol.directory.state_in(sp, cell.cell_id)
            cache_view = cell.local_cache.state_of(sp)
            assert dir_view == cache_view, (
                f"subpage {sp}: directory says {dir_view} but cell "
                f"{cell.cell_id} cache says {cache_view}"
            )


class TestFuzzedPrograms:
    @settings(max_examples=30, deadline=None)
    @given(
        scripts=st.lists(script, min_size=N_CELLS, max_size=N_CELLS),
        seed=st.integers(0, 9999),
    )
    def test_random_programs_stay_consistent(self, scripts, seed):
        machine, mem, own, counter, expected_own, expected_incs = _run_fuzz(
            scripts, seed
        )
        _check_consistency(machine)  # checks 2 + 3
        # check 4: private writes read back
        for pid in range(N_CELLS):
            for word, value in expected_own[pid].items():
                assert mem.peek(own[pid].addr(word)) == value
        # check 5: no lost updates under the subpage lock
        assert mem.peek(counter) == expected_incs

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_all_threads_hammer_one_lock(self, seed):
        scripts = [[("locked_increment", k) for k in range(12)]] * N_CELLS
        machine, mem, own, counter, _, expected = _run_fuzz(scripts, seed)
        assert mem.peek(counter) == expected == 48
        _check_consistency(machine)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_write_storm_on_shared_words(self, seed):
        scripts = [
            [("write_shared", k % SHARED_WORDS) for k in range(15)]
            for _ in range(N_CELLS)
        ]
        machine, mem, own, counter, _, _ = _run_fuzz(scripts, seed)
        _check_consistency(machine)


class TestPostRunInvariants:
    def test_no_dangling_atomic_state(self):
        """After balanced gsp/rsp programs, nothing stays atomic."""
        scripts = [[("locked_increment", 0)] * 5 for _ in range(N_CELLS)]
        machine, *_ = _run_fuzz(scripts, seed=3)
        for entry in machine.protocol.directory._entries.values():
            assert not entry.atomic

    def test_no_leftover_watchers_or_waiters(self):
        scripts = [[("locked_increment", 0)] * 5 for _ in range(N_CELLS)]
        machine, *_ = _run_fuzz(scripts, seed=4)
        assert machine.protocol.blocked_description() == []
