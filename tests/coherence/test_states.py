"""Tests for the coherence state transition relation."""

from repro.coherence.states import LEGAL_TRANSITIONS, SubpageState, legal_transition


class TestTransitions:
    def test_self_transitions_legal(self):
        for s in SubpageState:
            assert legal_transition(s, s)

    def test_fill_from_absent(self):
        assert legal_transition(None, SubpageState.SHARED)
        assert legal_transition(None, SubpageState.EXCLUSIVE)

    def test_invalidation_paths(self):
        assert legal_transition(SubpageState.SHARED, SubpageState.INVALID)
        assert legal_transition(SubpageState.EXCLUSIVE, SubpageState.INVALID)

    def test_atomic_cycle(self):
        assert legal_transition(SubpageState.EXCLUSIVE, SubpageState.ATOMIC)
        assert legal_transition(SubpageState.ATOMIC, SubpageState.EXCLUSIVE)

    def test_atomic_cannot_come_from_shared(self):
        """get_subpage must first obtain exclusivity."""
        assert not legal_transition(SubpageState.SHARED, SubpageState.ATOMIC)

    def test_invalid_cannot_jump_to_atomic(self):
        assert not legal_transition(SubpageState.INVALID, SubpageState.ATOMIC)

    def test_table_pairs_are_state_pairs(self):
        for old, new in LEGAL_TRANSITIONS:
            assert isinstance(old, SubpageState) and isinstance(new, SubpageState)
