"""Tests for the directory bookkeeping and its invariants."""

import pytest

from repro.coherence.directory import Directory
from repro.errors import ProtocolError
from repro.memory.local_cache import SubpageState


class TestFills:
    def test_shared_fill(self):
        d = Directory()
        d.record_fill_shared(1, cell_id=0)
        d.record_fill_shared(1, cell_id=3)
        entry = d.entry(1)
        assert entry.sharers == {0, 3}
        assert entry.owner is None
        assert entry.created

    def test_exclusive_fill(self):
        d = Directory()
        d.record_fill_exclusive(1, cell_id=2)
        entry = d.entry(1)
        assert entry.owner == 2
        assert entry.sharers == {2}

    def test_exclusive_fill_with_sharers_rejected(self):
        d = Directory()
        d.record_fill_shared(1, 0)
        with pytest.raises(ProtocolError):
            d.record_fill_exclusive(1, 3)

    def test_shared_fill_while_owned_rejected(self):
        d = Directory()
        d.record_fill_exclusive(1, 0)
        with pytest.raises(ProtocolError):
            d.record_fill_shared(1, 3)

    def test_owner_rereading_keeps_own_copy(self):
        d = Directory()
        d.record_fill_exclusive(1, 0)
        d.record_fill_shared(1, 0)  # owner's own read demotes itself
        assert d.entry(1).owner is None
        assert d.entry(1).sharers == {0}


class TestInvalidation:
    def test_invalidate_others_moves_to_placeholders(self):
        d = Directory()
        for c in (0, 1, 2):
            d.record_fill_shared(1, c)
        losers = d.invalidate_others(1, keep_cell=1)
        assert losers == {0, 2}
        entry = d.entry(1)
        assert entry.sharers == {1}
        assert entry.placeholders == {0, 2}

    def test_demote_owner(self):
        d = Directory()
        d.record_fill_exclusive(1, 0)
        d.demote_owner(1)
        assert d.entry(1).owner is None
        assert d.entry(1).sharers == {0}

    def test_demote_unowned_rejected(self):
        d = Directory()
        d.record_fill_shared(1, 0)
        with pytest.raises(ProtocolError):
            d.demote_owner(1)


class TestAtomic:
    def test_atomic_flag(self):
        d = Directory()
        d.record_fill_exclusive(1, 0, atomic=True)
        assert d.entry(1).atomic
        d.set_atomic(1, 0, False)
        assert not d.entry(1).atomic

    def test_set_atomic_requires_ownership(self):
        d = Directory()
        d.record_fill_exclusive(1, 0)
        with pytest.raises(ProtocolError):
            d.set_atomic(1, 5, True)


class TestResponderSelection:
    def test_prefers_same_ring(self):
        d = Directory()
        d.record_fill_shared(1, 2)   # same ring
        d.record_fill_shared(1, 40)  # another ring
        assert d.responder_for(1, requester=0, same_ring=range(0, 32)) == 2

    def test_falls_back_to_any(self):
        d = Directory()
        d.record_fill_shared(1, 40)
        assert d.responder_for(1, requester=0, same_ring=range(0, 32)) == 40

    def test_requester_not_own_responder(self):
        d = Directory()
        d.record_fill_shared(1, 0)
        assert d.responder_for(1, requester=0, same_ring=range(0, 32)) is None

    def test_uncached_returns_none(self):
        assert Directory().responder_for(9, 0, range(32)) is None


class TestDropAndState:
    def test_drop_copy_clears_ownership(self):
        d = Directory()
        d.record_fill_exclusive(1, 0, atomic=True)
        d.drop_copy(1, 0)
        entry = d.entry(1)
        assert entry.owner is None and not entry.atomic and not entry.sharers

    def test_state_in_views(self):
        d = Directory()
        d.record_fill_exclusive(1, 0, atomic=True)
        assert d.state_in(1, 0) is SubpageState.ATOMIC
        d.set_atomic(1, 0, False)
        assert d.state_in(1, 0) is SubpageState.EXCLUSIVE
        d.invalidate_others(1, keep_cell=5)  # 0 loses its copy
        assert d.state_in(1, 0) is SubpageState.INVALID
        assert d.state_in(1, 7) is None

    def test_known(self):
        d = Directory()
        assert not d.known(4)
        d.entry(4)
        assert d.known(4)
