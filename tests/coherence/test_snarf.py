"""Tests for read combining (snarfing) and outstanding fills."""

from repro.coherence.ops import OutstandingFills
from repro.coherence.snarf import ReadCombiner


class TestReadCombiner:
    def test_join_within_window(self):
        c = ReadCombiner()
        c.begin(5, injected_at=10.0, completed_at=150.0)
        t = c.try_join(5, now=100.0)
        assert t is not None and t >= 150.0
        assert c.n_joined == 1

    def test_no_join_after_completion(self):
        c = ReadCombiner()
        c.begin(5, 10.0, 150.0)
        assert c.try_join(5, now=151.0) is None

    def test_no_join_other_subpage(self):
        c = ReadCombiner()
        c.begin(5, 10.0, 150.0)
        assert c.try_join(6, now=100.0) is None

    def test_expire_cleans_up(self):
        c = ReadCombiner()
        c.begin(5, 10.0, 150.0)
        c.expire(5, now=200.0)
        assert c.try_join(5, 100.0) is None

    def test_expire_keeps_live_flight(self):
        c = ReadCombiner()
        c.begin(5, 10.0, 150.0)
        c.expire(5, now=100.0)
        assert c.try_join(5, 100.0) is not None


class TestOutstandingFills:
    def test_pending_then_landed(self):
        f = OutstandingFills()
        f.issue(0, 7, completes_at=500.0)
        assert f.pending_completion(0, 7, now=100.0) == 500.0
        f.complete(0, 7)
        assert f.pending_completion(0, 7, now=100.0) is None

    def test_past_fill_auto_clears(self):
        f = OutstandingFills()
        f.issue(0, 7, 500.0)
        assert f.pending_completion(0, 7, now=600.0) is None
        assert f.pending_completion(0, 7, now=100.0) is None  # cleared

    def test_earlier_fill_wins(self):
        f = OutstandingFills()
        f.issue(0, 7, 500.0)
        f.issue(0, 7, 300.0)
        assert f.pending_completion(0, 7, now=0.0) == 300.0

    def test_outstanding_for_cell(self):
        f = OutstandingFills()
        f.issue(0, 7, 500.0)
        f.issue(0, 8, 600.0)
        f.issue(1, 9, 700.0)
        assert sorted(f.outstanding_for(0)) == [(7, 500.0), (8, 600.0)]
