"""End-to-end protocol behaviour, exercised through a small machine.

These are the tests that pin the architecture effects the paper's
experiments rely on: invalidation costs, snarfing, poststore semantics,
get_subpage serialization and ring-order (non-FCFS) grants.
"""

import pytest

from repro.errors import DeadlockError
from repro.machine.api import SharedMemory
from repro.machine.ksr import KsrMachine
from repro.memory.local_cache import SubpageState
from repro.sim.process import (
    Compute,
    Fence,
    GetSubpage,
    Poststore,
    Prefetch,
    Read,
    ReleaseSubpage,
    WaitUntil,
    Write,
)
from tests.conftest import quiet_ksr1


def fresh(n_cells=4, seed=7):
    m = KsrMachine(quiet_ksr1(n_cells, seed=seed))
    return m, SharedMemory(m)


def time_ops(machine, cell_id, ops):
    """Run a list of ops on one cell; return elapsed cycles."""

    def body():
        for op in ops:
            yield op

    p = machine.spawn("timed", body(), cell_id)
    machine.run()
    return p.elapsed


class TestReadWriteLatencies:
    def test_second_read_is_subcache_hit(self):
        m, mem = fresh()
        a = mem.alloc_word()

        def body():
            yield Read(a)
            t0 = m.engine.now
            yield Read(a)
            return m.engine.now - t0

        p = m.spawn("t", body(), 0)
        m.run()
        assert p.result == pytest.approx(2.0)

    def test_remote_read_costs_ring_latency(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 5)])  # cell 0 owns the data
        elapsed = time_ops(m, 1, [Read(a)])
        assert 175.0 <= elapsed <= 175.0 + 130.0  # latency + page alloc + jitter

    def test_remote_write_more_expensive_than_remote_read(self):
        """Figure 2: writes sit slightly above reads."""
        m1, mem1 = fresh(seed=11)
        a = mem1.alloc_word()
        time_ops(m1, 0, [Write(a, 1)])
        read_cost = time_ops(m1, 1, [Read(a)])

        m2, mem2 = fresh(seed=11)
        b = mem2.alloc_word()
        time_ops(m2, 0, [Write(b, 1)])
        write_cost = time_ops(m2, 1, [Write(b, 2)])
        assert write_cost > read_cost

    def test_read_returns_last_written_value(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 1234)])

        def body():
            v = yield Read(a)
            return v

        p = m.spawn("r", body(), 2)
        m.run()
        assert p.result == 1234


class TestInvalidation:
    def test_write_invalidates_sharers(self):
        m, mem = fresh()
        a = mem.alloc_word()
        sp = a // 128
        time_ops(m, 0, [Write(a, 1)])
        time_ops(m, 1, [Read(a)])
        time_ops(m, 2, [Read(a)])
        assert m.cells[1].local_cache.is_valid(sp)
        time_ops(m, 3, [Write(a, 2)])
        assert not m.cells[1].local_cache.is_valid(sp)
        assert not m.cells[2].local_cache.is_valid(sp)
        assert m.cells[1].local_cache.contains(sp)  # place-holder remains
        assert m.total_perf().invalidations_received >= 2

    def test_reread_after_invalidation_is_remote(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 1, [Read(a)])
        time_ops(m, 0, [Write(a, 9)])
        cost = time_ops(m, 1, [Read(a)])
        assert cost > 170.0


class TestSnarfing:
    def test_spinners_wake_from_one_write(self):
        m, mem = fresh()
        flag = mem.alloc_word()

        def spinner():
            v = yield WaitUntil(flag, lambda x: x == 1)
            return v

        def writer():
            yield Compute(5000)
            yield Write(flag, 1)

        spinners = [m.spawn(f"s{i}", spinner(), i) for i in (1, 2, 3)]
        m.spawn("w", writer(), 0)
        m.run()
        assert all(p.result == 1 for p in spinners)
        wake_times = sorted(p.finished_at for p in spinners)
        # all spinners wake within a fraction of a circuit of each other
        assert wake_times[-1] - wake_times[0] < m.config.ring.circuit_cycles

    def test_snarf_counter_incremented(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 1)])
        time_ops(m, 1, [Read(a)])
        time_ops(m, 2, [Read(a)])
        time_ops(m, 0, [Write(a, 2)])  # both readers invalidated

        # a single re-read by cell 1 revalidates cell 2's place-holder
        time_ops(m, 1, [Read(a)])
        assert m.cells[2].local_cache.is_valid(a // 128)
        assert m.total_perf().snarfs >= 1


class TestPoststore:
    def test_poststore_issuer_continues_quickly(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 1)])
        cost = time_ops(m, 0, [Poststore(a)])
        # issuer stalls only for the local-cache writeback
        assert cost <= m.config.latency.poststore_issue_cycles + 1

    def test_poststore_delivers_to_placeholders(self):
        m, mem = fresh()
        a = mem.alloc_word()
        sp = a // 128
        time_ops(m, 1, [Read(a)])
        time_ops(m, 0, [Write(a, 7)])  # invalidates cell 1
        assert not m.cells[1].local_cache.is_valid(sp)
        time_ops(m, 0, [Poststore(a)])
        assert m.cells[1].local_cache.is_valid(sp)

    def test_poststore_demotes_issuer_to_shared(self):
        """The SP-hurting semantics: after poststore the issuer's next
        write pays an upgrade again."""
        m, mem = fresh()
        a = mem.alloc_word()
        sp = a // 128
        time_ops(m, 0, [Write(a, 1), Poststore(a)])
        m.run()
        assert m.cells[0].local_cache.state_of(sp) is SubpageState.SHARED
        upgrade_cost = time_ops(m, 0, [Write(a, 2)])
        assert upgrade_cost > 100.0  # ring upgrade, not a local write

    def test_poststore_wakes_spinner_without_refetch(self):
        m, mem = fresh()
        flag = mem.alloc_word()

        def spinner():
            yield WaitUntil(flag, lambda x: x == 1)

        def writer():
            yield Compute(3000)
            yield Write(flag, 1)
            yield Poststore(flag)

        s = m.spawn("s", spinner(), 1)
        w = m.spawn("w", writer(), 0)
        m.run()
        assert s.finished and w.finished


class TestGetSubpage:
    def test_mutual_exclusion_serializes_increments(self):
        m, mem = fresh()
        counter = mem.alloc_word()
        lock = mem.alloc_word()

        def incrementer():
            for _ in range(10):
                yield GetSubpage(lock)
                v = yield Read(counter)
                yield Write(counter, v + 1)
                yield ReleaseSubpage(lock)

        for i in range(4):
            m.spawn(f"inc{i}", incrementer(), i)
        m.run()
        assert mem.peek(counter) == 40

    def test_gsp_retries_counted(self):
        m, mem = fresh()
        lock = mem.alloc_word()

        def holder():
            yield GetSubpage(lock)
            yield Compute(5000)
            yield ReleaseSubpage(lock)

        def contender():
            yield Compute(100)  # let the holder win
            yield GetSubpage(lock)
            yield ReleaseSubpage(lock)

        m.spawn("h", holder(), 0)
        m.spawn("c", contender(), 1)
        m.run()
        assert m.cells[1].perfmon.get_subpage_retries >= 1

    def test_grant_follows_ring_order_not_fcfs(self):
        """Hardware grants the released subpage in ring order after the
        releaser — cell 1 beats cell 3 even when 3 asked first."""
        m, mem = fresh(n_cells=4)
        lock = mem.alloc_word()
        order = []

        def holder():
            yield GetSubpage(lock)
            yield Compute(8000)
            yield ReleaseSubpage(lock)

        def contender(tag, delay):
            def body():
                yield Compute(delay)
                yield GetSubpage(lock)
                order.append(tag)
                yield ReleaseSubpage(lock)

            return body()

        m.spawn("h", holder(), 0)
        m.spawn("late-but-near", contender("cell1", 2000), 1)
        m.spawn("early-but-far", contender("cell3", 500), 3)
        m.run()
        assert order == ["cell1", "cell3"]


class TestPrefetch:
    def test_prefetch_hides_remote_latency(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 3)])

        def with_prefetch():
            yield Prefetch(a)
            yield Compute(400)  # enough to cover the fill
            t0 = m.engine.now
            yield Read(a)
            return m.engine.now - t0

        p = m.spawn("pf", with_prefetch(), 1)
        m.run()
        assert p.result < 50.0  # local hit, not a 175-cycle miss

    def test_demand_read_waits_for_inflight_prefetch(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 3)])

        def body():
            yield Prefetch(a)
            t0 = m.engine.now
            v = yield Read(a)  # fill still in flight
            return (m.engine.now - t0, v)

        p = m.spawn("pf", body(), 1)
        m.run()
        waited, value = p.result
        assert value == 3
        assert 20.0 < waited < 250.0

    def test_fence_drains_prefetches(self):
        m, mem = fresh()
        a = mem.alloc_word()
        time_ops(m, 0, [Write(a, 3)])
        elapsed = time_ops(m, 1, [Prefetch(a), Fence()])
        assert elapsed >= 170.0


class TestDeadlockDetection:
    def test_unsatisfied_spin_reported(self):
        m, mem = fresh()
        flag = mem.alloc_word()

        def spinner():
            yield WaitUntil(flag, lambda x: x == 99)

        m.spawn("s", spinner(), 0)
        with pytest.raises(DeadlockError, match="spin"):
            m.run()
