"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three studies that take the architecture apart feature by feature:

1. **Read-snarfing** — how much do the global-wakeup barriers owe to
   combined re-reads?  (The paper credits snarfing for tree(M)'s
   "remarkable performance enhancement".)
2. **Random vs LRU replacement** — the paper blames the sub-cache's
   random replacement for SP's thrashing; the event-level caches can
   run either policy.
3. **Poststore in synchronization** — the (M) barriers with and
   without the explicit push.
"""

import numpy as np
from dataclasses import replace

from repro.experiments.barriers import measure_barrier
from repro.machine.config import CacheConfig, MachineConfig, TimerConfig
from repro.memory.cache_sets import SetAssociativeCache


def _quiet(n, *, snarfing=True):
    return replace(
        MachineConfig.ksr1(n_cells=n, timer=TimerConfig(enabled=False)),
        enable_snarfing=snarfing,
    )


def test_bench_ablation_snarfing(benchmark, show):
    """Global-flag barrier with and without read-snarfing."""

    def run():
        with_snarf = measure_barrier(
            "tree(M)", 32, machine_config=_quiet(32, snarfing=True), reps=8
        )
        without = measure_barrier(
            "tree(M)", 32, machine_config=_quiet(32, snarfing=False), reps=8
        )
        return with_snarf, without

    with_snarf, without = benchmark.pedantic(run, rounds=1, iterations=1)
    import sys

    print(
        f"\nABLATION snarfing: tree(M)@32 with={with_snarf * 1e6:.1f}us "
        f"without={without * 1e6:.1f}us ({without / with_snarf:.1f}x slower)",
        file=sys.stderr,
    )
    # without combining, 31 spinners re-read serially: a large factor
    assert without > 2.0 * with_snarf


def test_bench_ablation_replacement_policy(benchmark):
    """Random vs LRU replacement on a conflict-heavy sweep.

    A cyclic sweep slightly larger than the cache is LRU's worst case
    (0% hits) and random replacement's redemption — while for a
    working set under capacity both behave the same.  This is why the
    KSR's choice is defensible in general and yet produced the
    pathological SP behaviour for specific layouts.
    """
    config = CacheConfig(total_bytes=64 * 1024, ways=4, line_bytes=128, alloc_bytes=2048)

    def sweep(policy, n_lines):
        cache = SetAssociativeCache(config, np.random.default_rng(0), policy=policy)
        for _ in range(4):
            for line in range(n_lines):
                cache.access(line * 16)  # one line per allocation unit
        return cache.hit_rate

    def run():
        over = {p: sweep(p, 40) for p in ("random", "lru")}  # 40 > 32 frames
        under = {p: sweep(p, 24) for p in ("random", "lru")}  # fits
        return over, under

    over, under = benchmark.pedantic(run, rounds=1, iterations=1)
    # cyclic over-capacity: LRU collapses to ~0, random keeps some hits
    assert over["lru"] < 0.05
    assert over["random"] > 0.15
    # under capacity both retain everything after the cold pass
    assert under["lru"] > 0.7 and under["random"] > 0.7


def test_bench_ablation_barrier_poststore(benchmark, show):
    """The (M) barriers with and without the explicit poststore push."""

    def run():
        out = {}
        for name in ("tree(M)", "tournament(M)", "mcs(M)"):
            with_ps = measure_barrier("%s" % name, 32, reps=8, use_poststore=True)
            without = measure_barrier("%s" % name, 32, reps=8, use_poststore=False)
            out[name] = (with_ps, without)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (with_ps, without) in results.items():
        # with snarfing active the two deliveries are close — the
        # coherence protocol's combined re-read already does the job
        assert 0.5 < with_ps / without < 1.5
