"""Figure 3 benchmark: exclusive vs read-write lock curves."""

from repro.experiments.locks import run_figure3


def test_bench_fig3_locks(benchmark, show, paper_size, sweep_runner):
    ops = 500 if paper_size else 60
    result = benchmark.pedantic(
        lambda: run_figure3(proc_counts=[2, 8, 16, 32], ops=ops, runner=sweep_runner),
        rounds=1,
        iterations=1,
    )
    show(result)
    excl = dict(result.series["exclusive lock"])
    readers = dict(result.series["rw 100%"])
    # exclusive-lock time grows steeply with P; readers-only stays low
    assert excl[32] > 2.5 * excl[8]
    assert readers[32] < 0.5 * excl[32]
    # more read sharing, less time (at the full ring)
    row32 = result.rows[-1]
    rw_columns = row32[2:]
    assert rw_columns == sorted(rw_columns, reverse=True)
