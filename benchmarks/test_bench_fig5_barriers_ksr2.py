"""Figure 5 benchmark: barriers on the two-ring 64-node KSR-2."""

from repro.experiments.barriers import run_figure5


def test_bench_fig5_barriers_ksr2(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_figure5(proc_counts=[16, 32, 48, 64], reps=6),
        rounds=1,
        iterations=1,
    )
    show(result)
    # trends carry over from the one-ring KSR-1 (paper section 3.2.4)
    at64 = {name: dict(result.series[name])[64] for name in result.headers[1:]}
    assert at64["counter"] == max(at64.values())
    assert at64["tournament(M)"] < at64["tournament"]
    # the global-flag family stays in front
    winners = sorted(at64, key=at64.get)[:4]
    assert {"tournament(M)", "tree(M)", "mcs(M)"} & set(winners[:3])
    # crossing the level-1 ring produces a jump for the tree-based ones
    tm = dict(result.series["tree(M)"])
    assert tm[48] > tm[32] * 1.1
