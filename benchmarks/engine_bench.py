"""Engine throughput meter: events/sec on the pinned acceptance workloads.

Two workloads, each run with the macro-event batching core off and on:

* **fig3** — 32 processors fighting over one hardware exclusive lock
  (the paper's Figure 3 point with the most ring traffic; >90 % of
  events are hardware ``get_subpage`` retries, the chain shape the
  batching core coalesces).
* **fig4** — 16 processors in a counter barrier (Figure 4's most
  contended algorithm: lock traffic plus spin-wait phases).

Measured by the engine's own ``Engine.stats`` counter.  Usable as::

    python benchmarks/engine_bench.py                  # print the numbers
    python benchmarks/engine_bench.py --out bench.json # also write JSON
    python benchmarks/engine_bench.py --check          # exit 1 if batching
                                                       # does not pay on fig3

The JSON entry shape matches the committed ``BENCH_engine.json`` history
file at the repository root, so a new measurement can be appended
verbatim.  Batched and unbatched runs must fire the same number of
events (byte-identity is the batching contract); ``--check`` also
enforces that.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.sim.process import LocalOps
from repro.sync.barriers import make_barrier
from repro.sync.locks import HardwareExclusiveLock, LockWorkloadParams, run_lock_workload

#: The measured workloads, stated once so the history stays comparable.
WORKLOAD = "fig3 hardware-lock workload: 32 procs, 30 ops/proc, seed 303"
WORKLOAD_FIG4 = "fig4 counter-barrier workload: 16 procs, 40 reps, seed 404"

#: Matches the inter-episode compute of ``experiments.barriers``.
_INTER_EPISODE_OPS = 20


def _record(machine: KsrMachine, workload: str, batching: bool) -> dict:
    stats = machine.engine.stats
    return {
        "workload": workload,
        "batching": "on" if batching else "off",
        "events": stats.events_fired,
        "batched_events": stats.batched_events,
        "wall_seconds": round(stats.wall_seconds, 4),
        "events_per_sec": round(stats.events_per_sec),
    }


def measure(
    n_procs: int = 32, ops: int = 30, seed: int = 303, *, batching: bool = False
) -> dict:
    """Run the fig3 lock workload once; return engine throughput stats."""
    machine = KsrMachine(
        MachineConfig.ksr1(n_cells=n_procs, seed=seed, enable_batching=batching)
    )
    mem = SharedMemory(machine)
    lock = HardwareExclusiveLock(mem)
    params = LockWorkloadParams(ops_per_processor=ops, read_fraction=0.0, seed=seed)
    run_lock_workload(machine, lock, params, n_threads=n_procs)
    return _record(machine, WORKLOAD, batching)


def measure_fig4(
    n_procs: int = 16, reps: int = 40, seed: int = 404, *, batching: bool = False
) -> dict:
    """Run the fig4 counter-barrier workload once; return engine stats.

    Mirrors ``experiments.barriers.measure_barrier`` (timer off, same
    inter-episode compute) so the event population is the one the
    figure-4 sweep generates.
    """
    machine = KsrMachine(
        MachineConfig.ksr1(
            n_cells=n_procs,
            seed=seed,
            timer=TimerConfig(enabled=False),
            enable_batching=batching,
        )
    )
    mem = SharedMemory(machine)
    barrier = make_barrier("counter", mem, n_procs)

    def body(pid: int):
        for episode in range(reps):
            yield LocalOps(_INTER_EPISODE_OPS)
            yield from barrier.wait(pid, episode)

    for i in range(n_procs):
        machine.spawn(f"bar-{i}", body(i), i)
    machine.run()
    return _record(machine, WORKLOAD_FIG4, batching)


def run_all() -> list[dict]:
    """All four pinned measurements: both workloads, batching off/on."""
    return [
        measure(batching=False),
        measure(batching=True),
        measure_fig4(batching=False),
        measure_fig4(batching=True),
    ]


def check(entries: list[dict]) -> list[str]:
    """Regression guards: batching must not lose events or throughput."""
    problems: list[str] = []
    by_key = {(e["workload"], e["batching"]): e for e in entries}
    for workload in (WORKLOAD, WORKLOAD_FIG4):
        off, on = by_key.get((workload, "off")), by_key.get((workload, "on"))
        if off is None or on is None:
            continue
        if on["events"] != off["events"]:
            problems.append(
                f"{workload}: batching changed the event count "
                f"({off['events']} -> {on['events']}) — identity broken"
            )
    fig3_off, fig3_on = by_key.get((WORKLOAD, "off")), by_key.get((WORKLOAD, "on"))
    if fig3_off and fig3_on and fig3_on["events_per_sec"] <= fig3_off["events_per_sec"]:
        problems.append(
            f"fig3: batching on is not faster "
            f"({fig3_on['events_per_sec']} <= {fig3_off['events_per_sec']} ev/s)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write the measurements as JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if batching loses events or fig3 throughput",
    )
    args = parser.parse_args(argv)
    entries = run_all()
    for record in entries:
        print(
            f"[batching {record['batching']:>3}] {record['events']} events "
            f"({record['batched_events']} batched) in {record['wall_seconds']:.2f}s "
            f"= {record['events_per_sec']} events/sec  ({record['workload']})"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"entries": entries}, fh, indent=2)
            fh.write("\n")
        print(f"written to {args.out}")
    if args.check:
        problems = check(entries)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("checks passed: identical event counts, fig3 batching pays")
    return 0


if __name__ == "__main__":
    sys.exit(main())
