"""Engine throughput meter: events/sec on the Fig. 3 lock workload.

The acceptance workload for the simulator fast path: 32 processors
fighting over one hardware exclusive lock (the paper's Figure 3 point
with the most ring traffic), measured by the engine's own
``Engine.stats`` counter.  Usable two ways::

    python benchmarks/engine_bench.py                  # print the numbers
    python benchmarks/engine_bench.py --out bench.json # also write JSON

The JSON shape matches the committed ``BENCH_engine.json`` history file
at the repository root, so a new measurement can be appended verbatim.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.sync.locks import HardwareExclusiveLock, LockWorkloadParams, run_lock_workload

#: The measured workload, stated once so the history stays comparable.
WORKLOAD = "fig3 hardware-lock workload: 32 procs, 30 ops/proc, seed 303"


def measure(n_procs: int = 32, ops: int = 30, seed: int = 303) -> dict:
    """Run the workload once and return the engine's throughput stats."""
    machine = KsrMachine(MachineConfig.ksr1(n_cells=n_procs, seed=seed))
    mem = SharedMemory(machine)
    lock = HardwareExclusiveLock(mem)
    params = LockWorkloadParams(ops_per_processor=ops, read_fraction=0.0, seed=seed)
    run_lock_workload(machine, lock, params, n_threads=n_procs)
    stats = machine.engine.stats
    return {
        "workload": WORKLOAD,
        "events": stats.events_fired,
        "wall_seconds": round(stats.wall_seconds, 4),
        "events_per_sec": round(stats.events_per_sec),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write the measurement as JSON")
    args = parser.parse_args(argv)
    record = measure()
    print(
        f"{record['events']} events in {record['wall_seconds']:.2f}s "
        f"= {record['events_per_sec']} events/sec"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
