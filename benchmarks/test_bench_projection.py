"""Benchmark for the beyond-the-paper projection studies."""

from repro.experiments.projection import run_barrier_projection, run_cg_projection


def test_bench_projection_barriers(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_barrier_projection(proc_counts=[32, 64, 128], reps=5),
        rounds=1,
        iterations=1,
    )
    show(result)
    ratios = result.column("ratio")
    assert ratios[-1] > ratios[0]  # the hot spot keeps losing ground


def test_bench_projection_cg(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_cg_projection(proc_counts=[1, 32, 128, 512, 1088]),
        rounds=1,
        iterations=1,
    )
    show(result)
    speedups = dict(result.series["speedup"])
    # this problem size peaks somewhere past the measured machines and
    # declines by the architecture's maximum
    assert speedups[128] > speedups[32]
    assert speedups[1088] < speedups[128]
