"""Benchmark for the section-4 future-features study."""

from repro.experiments.future_features import run_future_features


def test_bench_future_features(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_future_features(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    totals = {row[0]: row[3] for row in result.rows}
    assert totals["sub-cache prefetch"] < totals["stock"]
    assert totals["both"] == min(totals.values())
