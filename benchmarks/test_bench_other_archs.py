"""Section 3.2.3 benchmark: comparative architecture orderings."""

from repro.experiments.other_archs import run_other_archs


def test_bench_other_archs(benchmark, show):
    result = benchmark(run_other_archs, 32)
    show(result)
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    # Symmetry: counter best overall, mcs(M) best among tree-style
    sym = {a: c[0] for a, c in rows.items()}
    assert min(sym, key=sym.get) == "counter"
    tree_style = {a: sym[a] for a in ("tree(M)", "tournament(M)", "mcs(M)")}
    assert min(tree_style, key=tree_style.get) == "mcs(M)"
    # Butterfly: dissemination, then tournament, then MCS
    but = {a: c[1] for a, c in rows.items() if not a.endswith("(M)")}
    ranked = sorted(but, key=but.get)
    assert ranked[0] == "dissemination"
    assert ranked.index("tournament") < ranked.index("mcs")
