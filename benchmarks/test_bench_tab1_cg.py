"""Table 1 benchmark: CG scaling (plus the Figure 8 CG curve and the
poststore study)."""

from repro.experiments.base import PAPER_ANCHORS
from repro.experiments.cg_scaling import run_cg_poststore, run_table1


def test_bench_tab1_cg(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_table1(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    speedups = dict(result.series["CG speedup"])
    assert speedups[32] > speedups[16] > speedups[8]
    if paper_size:
        published = PAPER_ANCHORS["cg_speedups"][32]
        assert abs(speedups[32] - published) / published < 0.30
    # efficiency declines from 16 to 32 (the serial-section effect)
    assert speedups[32] / 32 < speedups[16] / 16


def test_bench_cg_poststore(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_cg_poststore(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    gains = dict(result.series["poststore gain"])
    if paper_size:
        # paper: ~3% at 16, mitigated near saturation at 32
        assert gains[16] > 2.0
        assert gains[32] < gains[16]
