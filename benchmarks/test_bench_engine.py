"""Engine fast-path benchmark: raw dispatch rate and the Fig. 3 workload.

``BENCH_engine.json`` at the repository root records the history of the
second number across PRs; regenerate a data point with
``python benchmarks/engine_bench.py``.
"""

from benchmarks.engine_bench import measure

from repro.sim.engine import Engine


def test_bench_engine_raw_dispatch(benchmark):
    """Upper bound: null-callback events through the tuple-keyed heap."""

    def spin(n: int = 200_000) -> Engine:
        eng = Engine()
        cb = (lambda: None)
        for i in range(n):
            eng.schedule(float(i % 97), cb)
        eng.run()
        return eng

    eng = benchmark.pedantic(spin, rounds=1, iterations=1)
    stats = eng.stats
    assert stats.events_fired == 200_000
    assert stats.events_per_sec > 100_000


def test_bench_engine_fig3_lock_workload(benchmark, capsys):
    """The acceptance workload: Engine.stats events/sec under contention."""
    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"  engine: {record['events']} events, "
            f"{record['events_per_sec']} events/sec ({record['workload']})"
        )
    # The committed BENCH_engine.json baseline (pre-fast-path) measured
    # ~86k events/sec on the dev machine; keep a loose floor so slower
    # CI runners don't flake while still catching order-of-magnitude
    # regressions.
    assert record["events"] == 543_483
    assert record["events_per_sec"] > 60_000
