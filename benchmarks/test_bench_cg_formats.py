"""Benchmark for the CG data-structure study (section 3.3.1 narrative)."""

from repro.experiments.cg_formats import run_format_comparison


def test_bench_cg_format_comparison(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_format_comparison(full_size=paper_size),
        rounds=1,
        iterations=1,
    )
    show(result)
    penalties = dict(zip(result.column("P"), result.column("CSC penalty")))
    assert penalties[1] < 1.5        # sequential: formats comparable
    assert penalties[32] > 8.0       # parallel: the transform is essential
