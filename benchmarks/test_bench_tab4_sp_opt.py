"""Table 4 benchmark: the SP optimization ladder at 30 processors."""

from repro.experiments.sp_scaling import run_table4


def test_bench_tab4_sp_optimizations(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_table4(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    base, padded, prefetched = (row[1] for row in result.rows)
    assert base > padded > prefetched
    pad_gain = 1 - padded / base
    pf_gain = 1 - prefetched / padded
    if paper_size:
        # paper: 2.54 -> 2.14 (-15.7%) -> 1.89 (-11.7%)
        assert 0.08 < pad_gain < 0.25
        assert 0.06 < pf_gain < 0.25
    else:
        assert pad_gain > 0.03 and pf_gain > 0.03
