"""Figure 4 benchmark: the nine barrier algorithms on a 32-node KSR-1."""

from repro.experiments.barriers import run_figure4


def test_bench_fig4_barriers(benchmark, show, sweep_runner):
    result = benchmark.pedantic(
        lambda: run_figure4(proc_counts=[2, 4, 8, 16, 32], reps=8, runner=sweep_runner),
        rounds=1,
        iterations=1,
    )
    show(result)
    at32 = {name: dict(result.series[name])[32] for name in result.headers[1:]}
    # the paper's orderings at the fully populated ring
    assert at32["counter"] == max(at32.values())
    assert at32["tournament(M)"] < at32["tournament"]
    assert at32["tree(M)"] < at32["tree"]
    assert at32["mcs(M)"] < at32["mcs"]
    assert at32["dissemination"] < at32["counter"]
    # system ~ tree(M)
    assert 0.7 < at32["system"] / at32["tree(M)"] < 1.5
    # the winner's curve is nearly flat
    tm = dict(result.series["tournament(M)"])
    assert tm[32] / tm[4] < 2.5
