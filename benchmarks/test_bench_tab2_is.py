"""Table 2 benchmark: IS scaling (plus the Figure 8 IS curve)."""

from repro.experiments.base import PAPER_ANCHORS
from repro.experiments.is_scaling import run_table2


def test_bench_tab2_is(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_table2(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    speedups = dict(result.series["IS speedup"])
    # strong early scaling, flattening at the full ring
    assert speedups[8] > 3.5
    assert speedups[32] < 32 * 0.8
    # the 30 -> 32 step gains (almost) nothing
    assert speedups[32] < speedups[30] * 1.06
    if paper_size:
        published = PAPER_ANCHORS["is_speedups"][32]
        assert abs(speedups[32] - published) / published < 0.35
    # serial fraction column rises toward the full ring
    fractions = [
        row[4] for row in result.rows if isinstance(row[4], float) and row[0] >= 8
    ]
    assert fractions == sorted(fractions)
