"""Figure 2 benchmark: memory-hierarchy read/write latencies."""

from repro.experiments.latency import run_figure2


def test_bench_fig2_latency(benchmark, show, sweep_runner):
    result = benchmark.pedantic(
        lambda: run_figure2(proc_counts=[1, 2, 8, 16, 32], samples=500, runner=sweep_runner),
        rounds=1,
        iterations=1,
    )
    show(result)
    # published anchors: ~0.9 us local read, ~8.75 us network read
    local = dict(result.series["local read"])
    network = dict(result.series["network read"])
    assert 0.8e-6 < local[8] < 1.1e-6
    assert 8.0e-6 < network[8] < 10.5e-6
    # writes sit above reads
    assert dict(result.series["network write"])[8] > network[8]
    # latency grows modestly toward the full ring
    assert network[32] > network[2]
