"""EP benchmark (section 3.3 text): linear speedup, ~11 MFLOPS/cell."""

import pytest

from repro.experiments.ep_scaling import run_ep_scaling


def test_bench_ep_scaling(benchmark, show, paper_size):
    n_pairs = (1 << 24) if paper_size else (1 << 18)
    result = benchmark.pedantic(
        lambda: run_ep_scaling(n_pairs=n_pairs), rounds=1, iterations=1
    )
    show(result)
    speedups = dict(result.series["speedup"])
    for p, s in speedups.items():
        assert s == pytest.approx(p, rel=0.06)  # linear
    mflops = result.column("MFLOPS/cell")
    assert all(9.5 < m < 12.5 for m in mflops)  # paper: ~11 of 40 peak
