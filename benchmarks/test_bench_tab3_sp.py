"""Table 3 benchmark: SP time per iteration across processors."""

from repro.experiments.base import PAPER_ANCHORS
from repro.experiments.sp_scaling import run_sp_poststore, run_table3


def test_bench_tab3_sp(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_table3(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    speedups = dict(result.series["SP speedup"])
    assert speedups[31] > speedups[16] > speedups[8] > speedups[4]
    if paper_size:
        published = PAPER_ANCHORS["sp_speedups"][31]
        assert abs(speedups[31] - published) / published < 0.20
    else:
        assert speedups[31] > 15


def test_bench_sp_poststore(benchmark, show, paper_size):
    result = benchmark.pedantic(
        lambda: run_sp_poststore(full_size=paper_size), rounds=1, iterations=1
    )
    show(result)
    best, with_ps = (row[1] for row in result.rows)
    assert with_ps > best  # poststore hurts SP (paper, section 3.3.3)
