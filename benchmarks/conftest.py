"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows (compare them against the published values
collected in ``repro.experiments.base.PAPER_ANCHORS`` and the
discussion in EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--paper-size`` to regenerate the kernel tables at the paper's
full problem sizes (slower), and ``--jobs N`` to fan independent sweep
points across worker processes (the reproduced numbers are identical;
only the wall time changes).  The on-disk result cache is *disabled*
here by default — a benchmark served from ``.ksr-cache/`` would time
the cache, not the simulator — pass ``--use-cache`` to opt in when you
only care about the printed tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.sweep import ResultCache, SweepRunner


def pytest_addoption(parser):
    parser.addoption(
        "--paper-size",
        action="store_true",
        default=False,
        help="run kernel benchmarks at the paper's full problem sizes",
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-style benchmarks (same numbers, less wall time)",
    )
    parser.addoption(
        "--use-cache",
        action="store_true",
        default=False,
        help="serve sweep points from .ksr-cache/ (times the cache, not the simulator)",
    )


@pytest.fixture(scope="session")
def paper_size(request) -> bool:
    """Whether to use full problem sizes."""
    return request.config.getoption("--paper-size")


@pytest.fixture(scope="session")
def sweep_runner(request) -> SweepRunner:
    """Sweep runner honouring ``--jobs`` / ``--use-cache``."""
    cache = ResultCache.default() if request.config.getoption("--use-cache") else None
    return SweepRunner(jobs=request.config.getoption("--jobs"), cache=cache)


@pytest.fixture
def show(capsys):
    """Print a rendered experiment table outside captured output."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())

    return _show
