"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows (compare them against the published values
collected in ``repro.experiments.base.PAPER_ANCHORS`` and the
discussion in EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--paper-size`` to regenerate the kernel tables at the paper's
full problem sizes (slower).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-size",
        action="store_true",
        default=False,
        help="run kernel benchmarks at the paper's full problem sizes",
    )


@pytest.fixture(scope="session")
def paper_size(request) -> bool:
    """Whether to use full problem sizes."""
    return request.config.getoption("--paper-size")


@pytest.fixture
def show(capsys):
    """Print a rendered experiment table outside captured output."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())

    return _show
