"""Synchronization algorithms from the paper's section 3.2.

Locks: the hardware exclusive lock (a bare ``get_subpage``) and the
software FCFS read-write ticket lock with reader combining.

Barriers: all nine variants of Figure 4/5 — counter, dynamic combining
tree, dissemination, tournament, MCS, the global-wakeup-flag (M)
modifications of tree/tournament/MCS, and the "System" library barrier.
"""

from repro.sync.locks import (
    HardwareExclusiveLock,
    McsQueueLock,
    TicketReadWriteLock,
    LockWorkloadParams,
    run_lock_workload,
)
from repro.sync.barriers import (
    BarrierAlgorithm,
    CounterBarrier,
    TreeBarrier,
    DisseminationBarrier,
    TournamentBarrier,
    McsBarrier,
    SystemBarrier,
    BARRIER_REGISTRY,
    make_barrier,
)

__all__ = [
    "HardwareExclusiveLock",
    "McsQueueLock",
    "TicketReadWriteLock",
    "LockWorkloadParams",
    "run_lock_workload",
    "BarrierAlgorithm",
    "CounterBarrier",
    "TreeBarrier",
    "DisseminationBarrier",
    "TournamentBarrier",
    "McsBarrier",
    "SystemBarrier",
    "BARRIER_REGISTRY",
    "make_barrier",
]
