"""The MCS list-based queue lock (Mellor-Crummey & Scott), on the KSR.

The paper implements MCS *barriers*; this companion implements the MCS
*lock* so the lock study can be extended beyond the paper: each thread
spins on its own padded flag (purely local until the predecessor's
hand-off write), making it the classic contrast to both the hot-spot
hardware lock and the single-hand-off ticket lock.

The atomic swap at the tail is built from ``get_subpage`` (the KSR has
no fetch-and-store; the paper's footnote 5 notes any software lock
"may itself be implemented using any hardware primitive that the
architecture provides for mutual exclusion").

Layout: ``tail`` word (atomic via its subpage), and per-thread
``next``/``locked`` words, each on its own subpage.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.sim.process import (
    GetSubpage,
    Op,
    Poststore,
    Read,
    ReleaseSubpage,
    WaitUntil,
    Write,
)

__all__ = ["McsQueueLock"]

_NONE = 0  # tail/next sentinel (thread ids stored +1)


class McsQueueLock:
    """FCFS queue lock with local spinning.

    ``n_threads`` bounds the thread ids that may use the lock (each
    needs its own queue node).
    """

    def __init__(self, mem: SharedMemory, n_threads: int, *, use_poststore: bool = True):
        if n_threads < 1:
            raise ConfigError("need at least one thread slot")
        self.n_threads = n_threads
        self.use_poststore = use_poststore
        self.tail = mem.alloc_word()
        self.next = [mem.alloc_word() for _ in range(n_threads)]
        self.locked = [mem.alloc_word() for _ in range(n_threads)]

    def _check(self, pid: int) -> None:
        if not 0 <= pid < self.n_threads:
            raise ConfigError(f"pid {pid} out of range")

    def acquire(self, pid: int) -> Generator[Op, Any, None]:
        """Enqueue behind the tail; spin locally until handed the lock."""
        self._check(pid)
        # reset our node (we are its only writer while unqueued)
        yield Write(self.next[pid], _NONE)
        yield Write(self.locked[pid], 0)
        # atomic fetch-and-store of the tail via the subpage lock
        yield GetSubpage(self.tail)
        predecessor = yield Read(self.tail)
        yield Write(self.tail, pid + 1)
        yield ReleaseSubpage(self.tail)
        if predecessor != _NONE:
            yield Write(self.next[predecessor - 1], pid + 1)
            if self.use_poststore:
                yield Poststore(self.next[predecessor - 1])
            yield WaitUntil(self.locked[pid], lambda v: v == 1)

    def release(self, pid: int) -> Generator[Op, Any, None]:
        """Hand the lock to the successor (waiting for a late enqueuer
        that has swapped the tail but not yet linked itself)."""
        self._check(pid)
        successor = yield Read(self.next[pid])
        if successor == _NONE:
            yield GetSubpage(self.tail)
            tail = yield Read(self.tail)
            if tail == pid + 1:
                # no one behind us: empty the queue
                yield Write(self.tail, _NONE)
                yield ReleaseSubpage(self.tail)
                return
            yield ReleaseSubpage(self.tail)
            # someone swapped in but has not linked yet: wait for it
            successor = yield WaitUntil(self.next[pid], lambda v: v != _NONE)
        yield Write(self.locked[successor - 1], 1)
        if self.use_poststore:
            yield Poststore(self.locked[successor - 1])

    # uniform read/write interface for the workload driver -------------

    def acquire_read(self, pid: int) -> Generator[Op, Any, None]:
        """No shared mode: reads serialize like writes."""
        yield from self.acquire(pid)

    def release_read(self, pid: int) -> Generator[Op, Any, None]:
        """Release a (serialized) read hold."""
        yield from self.release(pid)

    def acquire_write(self, pid: int) -> Generator[Op, Any, None]:
        """Exclusive acquisition."""
        yield from self.acquire(pid)

    def release_write(self, pid: int) -> Generator[Op, Any, None]:
        """Exclusive release."""
        yield from self.release(pid)
