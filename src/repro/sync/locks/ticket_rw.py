"""Software FCFS read-write ticket lock with reader combining.

"We have implemented a simple read-write lock using the KSR-1 exclusive
lock primitive.  Our algorithm is a modified version of Anderson's
ticket lock.  Lock requests are granted tickets atomically using the
get_sub_page primitive.  Consecutive read lock requests are combined by
allowing them to get the same ticket.  Concurrent readers can thus
share the lock and writers are stalled until all readers have released
the lock.  Fairness is assured among readers and writers by maintaining
a strict FCFS queue."

Layout (every box on its own subpage — no false sharing):

* *meta* subpage: ``next_ticket``, ``tail_kind``, ``tail_ticket`` —
  mutated only under ``get_subpage`` of the meta word.
* ``now_serving``: its own subpage; spun on by waiters, advanced by the
  releasing holder with a plain write followed by a poststore so every
  waiting place-holder snarfs the new value.
* a ring of per-ticket reader counters, each on its own subpage.

FCFS holds because tickets are handed out in get_subpage order and
``now_serving`` only ever advances to the next ticket.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.sim.process import (
    GetSubpage,
    Op,
    Poststore,
    Read,
    ReleaseSubpage,
    WaitUntil,
    Write,
)

__all__ = ["TicketReadWriteLock"]

_KIND_NONE = 0
_KIND_READ = 1
_KIND_WRITE = 2


class TicketReadWriteLock:
    """FCFS read-write lock; see module docstring for the algorithm.

    ``counter_ring`` bounds how many *distinct tickets* may be
    simultaneously unreleased; the default comfortably exceeds any
    machine size (one ticket per waiting processor at most).
    """

    def __init__(self, mem: SharedMemory, *, counter_ring: int = 256, use_poststore: bool = True):
        if counter_ring < 2:
            raise ConfigError("counter ring must have at least 2 entries")
        self.meta = mem.alloc_words(3)  # next_ticket, tail_kind, tail_ticket
        self.now_serving = mem.alloc_word()
        self.readers = mem.array("rwlock-readers", counter_ring)
        self.ring_size = counter_ring
        self.use_poststore = use_poststore
        mem.poke(self._next_ticket, 1)  # ticket 0 == "already served"
        mem.poke(self.now_serving, 1)
        self._held_ticket: dict[int, int] = {}  # per-pid bookkeeping

    # Meta-word addresses -------------------------------------------------

    @property
    def _next_ticket(self) -> int:
        return self.meta

    @property
    def _tail_kind(self) -> int:
        return self.meta + 8

    @property
    def _tail_ticket(self) -> int:
        return self.meta + 16

    def _counter(self, ticket: int) -> int:
        return self.readers.addr(ticket % self.ring_size)

    # Read side ------------------------------------------------------------

    def acquire_read(self, pid: int) -> Generator[Op, Any, None]:
        """Take (or join) a read ticket, then wait for service."""
        yield GetSubpage(self.meta)
        tail_kind = yield Read(self._tail_kind)
        tail_ticket = yield Read(self._tail_ticket)
        serving = yield Read(self.now_serving)
        if tail_kind == _KIND_READ and tail_ticket >= serving:
            # combine with the pending/active read group
            ticket = tail_ticket
            count = yield Read(self._counter(ticket))
            yield Write(self._counter(ticket), count + 1)
        else:
            ticket = yield Read(self._next_ticket)
            yield Write(self._next_ticket, ticket + 1)
            yield Write(self._tail_kind, _KIND_READ)
            yield Write(self._tail_ticket, ticket)
            yield Write(self._counter(ticket), 1)
        yield ReleaseSubpage(self.meta)
        self._held_ticket[pid] = ticket
        yield WaitUntil(self.now_serving, lambda v, t=ticket: v >= t)

    def release_read(self, pid: int) -> Generator[Op, Any, None]:
        """Last releasing reader of the group advances ``now_serving``."""
        ticket = self._held_ticket.pop(pid)
        yield GetSubpage(self.meta)
        count = yield Read(self._counter(ticket))
        yield Write(self._counter(ticket), count - 1)
        if count - 1 == 0:
            yield from self._advance(ticket)
        yield ReleaseSubpage(self.meta)

    # Write side -----------------------------------------------------------

    def acquire_write(self, pid: int) -> Generator[Op, Any, None]:
        """Take a fresh (exclusive) ticket, then wait for service."""
        yield GetSubpage(self.meta)
        ticket = yield Read(self._next_ticket)
        yield Write(self._next_ticket, ticket + 1)
        yield Write(self._tail_kind, _KIND_WRITE)
        yield Write(self._tail_ticket, ticket)
        yield ReleaseSubpage(self.meta)
        self._held_ticket[pid] = ticket
        yield WaitUntil(self.now_serving, lambda v, t=ticket: v >= t)

    def release_write(self, pid: int) -> Generator[Op, Any, None]:
        """Pass the lock to the next ticket.

        No meta lock needed: ``now_serving`` has a single writer (the
        current holder) — Anderson's ticket release is just the
        holder's own increment, which keeps the serialized hand-off
        path to one write plus the poststore push.
        """
        ticket = self._held_ticket.pop(pid)
        yield from self._advance(ticket)

    # ------------------------------------------------------------------

    def _advance(self, ticket: int) -> Generator[Op, Any, None]:
        """now_serving := ticket + 1, pushed to all spinners."""
        yield Write(self.now_serving, ticket + 1)
        if self.use_poststore:
            yield Poststore(self.now_serving)
