"""The synthetic lock workload of section 3.2.1 / Figure 3.

"Each processor repeatedly accesses data in read or write mode, with a
delay of 10000 local operations between successive lock requests.  The
lock is held for 3000 local operations."  The figure reports total time
for 500 operations per processor at read-share fractions 0 %..100 %.

``run_lock_workload`` drives either lock implementation with that
pattern and returns the total time plus acquisition statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.errors import ConfigError
from repro.machine.ksr import KsrMachine
from repro.sim.process import LocalOps, Op
from repro.util.rng import derive_rng

__all__ = ["LockWorkloadParams", "LockWorkloadResult", "run_lock_workload"]


@dataclass(frozen=True)
class LockWorkloadParams:
    """Knobs of the synthetic workload (paper defaults)."""

    ops_per_processor: int = 500
    read_fraction: float = 0.0
    hold_local_ops: int = 3000
    delay_local_ops: int = 10000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.ops_per_processor < 1:
            raise ConfigError("need at least one lock operation")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be in [0, 1]")
        if self.hold_local_ops < 0 or self.delay_local_ops < 0:
            raise ConfigError("hold/delay must be non-negative")


@dataclass(frozen=True)
class LockWorkloadResult:
    """Outcome of one workload run."""

    total_seconds: float
    n_acquisitions: int
    n_read_acquisitions: int
    mean_thread_seconds: float


def run_lock_workload(
    machine: KsrMachine,
    lock: Any,
    params: LockWorkloadParams,
    *,
    n_threads: int | None = None,
) -> LockWorkloadResult:
    """Run the Figure 3 workload on an already-built machine.

    ``lock`` is anything exposing ``acquire_read/release_read/
    acquire_write/release_write`` generator methods taking a thread id
    (both :class:`~repro.sync.locks.hardware.HardwareExclusiveLock` and
    :class:`~repro.sync.locks.ticket_rw.TicketReadWriteLock` qualify).
    """
    n = machine.config.n_cells if n_threads is None else n_threads
    if n < 1 or n > machine.config.n_cells:
        raise ConfigError(f"n_threads {n} out of range")
    reads_total = 0

    def worker(pid: int) -> Generator[Op, Any, None]:
        nonlocal reads_total
        rng = derive_rng(params.seed, f"lock-workload/{pid}")
        # pre-draw the read/write pattern so the generator body is cheap
        is_read = rng.random(params.ops_per_processor) < params.read_fraction
        for k in range(params.ops_per_processor):
            yield LocalOps(params.delay_local_ops)
            if is_read[k]:
                reads_total += 1
                yield from lock.acquire_read(pid)
                yield LocalOps(params.hold_local_ops)
                yield from lock.release_read(pid)
            else:
                yield from lock.acquire_write(pid)
                yield LocalOps(params.hold_local_ops)
                yield from lock.release_write(pid)

    processes = [machine.spawn(f"lock-{i}", worker(i), i) for i in range(n)]
    machine.run()
    finish = max(p.finished_at for p in processes)
    start = min(p.started_at for p in processes)
    mean_thread = float(np.mean([p.elapsed for p in processes]))
    return LockWorkloadResult(
        total_seconds=machine.config.seconds(finish - start),
        n_acquisitions=n * params.ops_per_processor,
        n_read_acquisitions=reads_total,
        mean_thread_seconds=machine.config.seconds(mean_thread),
    )
