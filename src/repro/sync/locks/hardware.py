"""The hardware exclusive lock: a bare get_subpage.

"The KSR-1 hardware primitive get_sub_page provides an exclusive lock
on a sub-page for the requesting processor.  This exclusive lock is
relinquished using the release_sub_page instruction.  The hardware does
not guarantee FCFS to resolve lock contention but does guarantee
forward progress due to the unidirectionality of the ring."

Under contention every blocked requester's hardware retry burns a ring
slot per circuit (see
:meth:`repro.coherence.protocol.CoherenceProtocol._block_on_atomic`),
which is why acquisition time grows linearly with the number of
contending processors in Figure 3.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import GetSubpage, Op, ReleaseSubpage

__all__ = ["HardwareExclusiveLock"]


class HardwareExclusiveLock:
    """Mutual exclusion via the atomic subpage state.

    Use inside a thread generator::

        yield from lock.acquire()
        ... critical section ...
        yield from lock.release()
    """

    def __init__(self, mem: SharedMemory):
        self.addr = mem.alloc_word()

    def acquire(self) -> Generator[Op, Any, None]:
        """Take the subpage atomic (blocks, non-FCFS, with retries)."""
        yield GetSubpage(self.addr)

    def release(self) -> Generator[Op, Any, None]:
        """Drop the atomic state; ring-order grant to any waiter."""
        yield ReleaseSubpage(self.addr)

    # The read/write interface lets the workload driver treat the
    # hardware lock and the software read-write lock uniformly: the
    # hardware primitive has no shared mode, so reads serialize too —
    # the very deficiency the paper's software lock addresses.

    def acquire_read(self, pid: int) -> Generator[Op, Any, None]:
        """Shared-mode request — degrades to exclusive on hardware."""
        yield from self.acquire()

    def release_read(self, pid: int) -> Generator[Op, Any, None]:
        """Release a shared-mode (actually exclusive) hold."""
        yield from self.release()

    def acquire_write(self, pid: int) -> Generator[Op, Any, None]:
        """Exclusive-mode request."""
        yield from self.acquire()

    def release_write(self, pid: int) -> Generator[Op, Any, None]:
        """Release an exclusive hold."""
        yield from self.release()
