"""Lock algorithms and the synthetic lock workload of section 3.2.1."""

from repro.sync.locks.hardware import HardwareExclusiveLock
from repro.sync.locks.mcs_queue import McsQueueLock
from repro.sync.locks.ticket_rw import TicketReadWriteLock
from repro.sync.locks.workload import LockWorkloadParams, run_lock_workload

__all__ = [
    "HardwareExclusiveLock",
    "McsQueueLock",
    "TicketReadWriteLock",
    "LockWorkloadParams",
    "run_lock_workload",
]
