"""Algorithm 3: the dissemination barrier (Hensgen/Finkel/Manber).

"A dissemination barrier, which involves exchanging messages for
ceil(log2 P) rounds as processors arrive at the barrier.  In each round
a total of P messages are exchanged ...  after the rounds are over all
the processors are aware of barrier completion."

In round ``r`` processor ``i`` notifies processor ``(i + 2^r) mod P``
and waits for the notification from ``(i - 2^r) mod P``.  All P
notifications of one round land on distinct subpages, so the pipelined
ring carries them in parallel — but the algorithm still performs
O(P log P) total communications, which is why it trails tournament and
MCS on the KSR-1 while beating the hot-spot counter.

Flags carry episode numbers, so no reset phase is needed.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import Op, Poststore, WaitUntil, Write
from repro.sync.barriers.base import BarrierAlgorithm

__all__ = ["DisseminationBarrier"]


class DisseminationBarrier(BarrierAlgorithm):
    """Symmetric log-round notification exchange."""

    name = "dissemination"

    def __init__(self, mem: SharedMemory, n_procs: int, *, use_poststore: bool = True):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self.n_rounds = self.rounds_for(n_procs)
        # flags[r][i]: the flag processor i waits on in round r
        self.flags = [
            [mem.alloc_word() for _ in range(n_procs)] for r in range(self.n_rounds)
        ]

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Notify ``pid + 2^r``, await ``pid - 2^r``, for each round."""
        self._check_pid(pid)
        for r in range(self.n_rounds):
            partner = (pid + (1 << r)) % self.n_procs
            yield Write(self.flags[r][partner], episode + 1)
            if self.use_poststore:
                yield Poststore(self.flags[r][partner])
            yield WaitUntil(self.flags[r][pid], lambda v, e=episode: v > e)
