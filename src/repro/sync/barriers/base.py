"""Common barrier interface.

A barrier object is built once for ``n_procs`` participants over a
:class:`~repro.machine.api.SharedMemory`; each thread then calls

    yield from barrier.wait(pid, episode)

with ``episode`` counting its own barrier crossings from 0.  Episode
numbers replace sense-reversal: flags carry monotonically increasing
episode values, so barriers are trivially reusable and a stale wakeup
can never be confused with a fresh one.

All shared variables are allocated on their own subpages ("we have
aligned (whenever possible) mutually exclusive parts of shared data
structures on separate cache lines so that there is no false sharing")
— except where an algorithm's defining structure *is* false sharing,
namely the MCS 4-child arrival word.
"""

from __future__ import annotations

import abc
from typing import Any, Generator

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.sim.process import Op

__all__ = ["BarrierAlgorithm"]


class BarrierAlgorithm(abc.ABC):
    """Base class of all barrier implementations."""

    #: Registry key; subclasses set it (e.g. ``"tournament"``).
    name: str = "abstract"

    def __init__(self, mem: SharedMemory, n_procs: int, *, use_poststore: bool = True):
        if n_procs < 1:
            raise ConfigError("a barrier needs at least one participant")
        self.mem = mem
        self.n_procs = n_procs
        self.use_poststore = use_poststore

    @abc.abstractmethod
    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Arrive at the barrier and block until everyone has."""

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n_procs:
            raise ConfigError(
                f"pid {pid} out of range for a {self.n_procs}-way barrier"
            )

    @staticmethod
    def rounds_for(n: int) -> int:
        """ceil(log2(n)) — the number of pairing rounds for n players."""
        rounds = 0
        span = 1
        while span < n:
            span *= 2
            rounds += 1
        return rounds
