"""Barrier algorithm library: the nine variants of Figures 4 and 5.

``BARRIER_REGISTRY`` maps the paper's curve labels to factories;
:func:`make_barrier` builds one by name.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.sync.barriers.base import BarrierAlgorithm
from repro.sync.barriers.counter import CounterBarrier
from repro.sync.barriers.dissemination import DisseminationBarrier
from repro.sync.barriers.mcs import McsBarrier
from repro.sync.barriers.system import SystemBarrier
from repro.sync.barriers.tournament import TournamentBarrier
from repro.sync.barriers.tree import TreeBarrier

__all__ = [
    "BarrierAlgorithm",
    "CounterBarrier",
    "TreeBarrier",
    "DisseminationBarrier",
    "TournamentBarrier",
    "McsBarrier",
    "SystemBarrier",
    "BARRIER_REGISTRY",
    "make_barrier",
]

BARRIER_REGISTRY: dict[str, Callable[..., BarrierAlgorithm]] = {
    "counter": CounterBarrier,
    "tree": lambda mem, n, **kw: TreeBarrier(mem, n, global_wakeup=False, **kw),
    "tree(M)": lambda mem, n, **kw: TreeBarrier(mem, n, global_wakeup=True, **kw),
    "dissemination": DisseminationBarrier,
    "tournament": lambda mem, n, **kw: TournamentBarrier(
        mem, n, global_wakeup=False, **kw
    ),
    "tournament(M)": lambda mem, n, **kw: TournamentBarrier(
        mem, n, global_wakeup=True, **kw
    ),
    "mcs": lambda mem, n, **kw: McsBarrier(mem, n, global_wakeup=False, **kw),
    "mcs(M)": lambda mem, n, **kw: McsBarrier(mem, n, global_wakeup=True, **kw),
    "system": SystemBarrier,
}


def make_barrier(
    name: str, mem: SharedMemory, n_procs: int, *, use_poststore: bool = True
) -> BarrierAlgorithm:
    """Build a barrier by its Figure 4 curve label."""
    try:
        factory = BARRIER_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown barrier {name!r}; choose from {sorted(BARRIER_REGISTRY)}"
        ) from None
    return factory(mem, n_procs, use_poststore=use_poststore)
