"""Algorithm 2: the dynamic combining-tree barrier (and tree(M)).

"A tree combining barrier that reduces the hot spot contention ... by
allocating a barrier variable (a counter) for every pair of processors.
The processors are the leaves of the binary tree, and the higher levels
of the tree get constructed dynamically as the processors reach the
barrier ...  The last processor to arrive at the barrier will reach the
root of the arrival tree and becomes responsible for starting the
notification of barrier completion down this same binary tree."

The fetch-and-increment at every node uses ``get_subpage`` — the mutual
exclusion whose cost makes this algorithm degrade as P grows.

Counters are *cumulative* (never reset): node ``(level, j)`` with
``expected`` reporters is complete for episode ``e`` when its count
reaches ``expected * (e + 1)`` — reuse without re-arm races.

The (M) variant replaces the wakeup tree with one global flag written
by the last arriver (poststored, snarfed by every spinner) — the
modification from Mellor-Crummey & Scott's paper that the authors found
to produce a "remarkable performance enhancement".
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import (
    GetSubpage,
    Op,
    Poststore,
    Read,
    ReleaseSubpage,
    WaitUntil,
    Write,
)
from repro.sync.barriers.base import BarrierAlgorithm

__all__ = ["TreeBarrier"]


class TreeBarrier(BarrierAlgorithm):
    """Dynamic combining tree; ``global_wakeup=True`` gives tree(M)."""

    name = "tree"

    def __init__(
        self,
        mem: SharedMemory,
        n_procs: int,
        *,
        global_wakeup: bool = False,
        use_poststore: bool = True,
    ):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self.global_wakeup = global_wakeup
        if global_wakeup:
            self.name = "tree(M)"
        self.n_levels = self.rounds_for(n_procs)
        # node (level, j) covers pids [j * 2^(level+1), (j+1) * 2^(level+1))
        self.counters: list[list[int]] = []
        self.wakeups: list[list[int]] = []
        self.expected: list[list[int]] = []
        for level in range(self.n_levels):
            span = 1 << (level + 1)
            n_nodes = -(-n_procs // span)
            self.counters.append([mem.alloc_word() for _ in range(n_nodes)])
            self.wakeups.append([mem.alloc_word() for _ in range(n_nodes)])
            half = span // 2
            self.expected.append(
                [
                    # arrivals = non-empty halves of the node's pid range
                    sum(
                        1
                        for base in (j * span, j * span + half)
                        if base < n_procs
                    )
                    for j in range(n_nodes)
                ]
            )
        self.flag = mem.alloc_word()

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Climb while last-at-node; wait where not; wake downwards."""
        self._check_pid(pid)
        if self.n_procs == 1:
            return
        won_path: list[tuple[int, int]] = []  # nodes this pid completed
        stopped_at: tuple[int, int] | None = None
        idx = pid
        for level in range(self.n_levels):
            j = idx // 2
            counter = self.counters[level][j]
            yield GetSubpage(counter)
            count = yield Read(counter)
            yield Write(counter, count + 1)
            yield ReleaseSubpage(counter)
            if count + 1 < self.expected[level][j] * (episode + 1):
                stopped_at = (level, j)
                break
            won_path.append((level, j))
            idx = j
        if stopped_at is not None:
            if self.global_wakeup:
                yield WaitUntil(self.flag, lambda v, e=episode: v > e)
            else:
                level, j = stopped_at
                yield WaitUntil(
                    self.wakeups[level][j], lambda v, e=episode: v > e
                )
        # Wake everything below the nodes this pid completed.
        if self.global_wakeup:
            if stopped_at is None:  # the overall last arriver
                yield Write(self.flag, episode + 1)
                if self.use_poststore:
                    yield Poststore(self.flag)
            return
        for level, j in reversed(won_path):
            if self.expected[level][j] > 1:  # a partner is waiting there
                yield Write(self.wakeups[level][j], episode + 1)
                if self.use_poststore:
                    yield Poststore(self.wakeups[level][j])
