"""Algorithm 4: the tournament barrier (and tournament(M)).

"A tournament barrier (another tree-style algorithm ...) in which the
winner in each round is determined statically."

Round ``r`` pairs player ``w`` (with the low ``r+1`` bits of its id
zero) against ``w + 2^r``; the loser is statically known, writes its
arrival flag at the match and waits for wakeup; the winner spins on
that flag and advances.  No atomic operations anywhere — this is what
lets every match of a round proceed in parallel on the pipelined ring,
1 communication step per round best case (2 worst), versus MCS's 4 (8)
— the paper's explanation for tournament(M) being the overall winner
on the KSR-1.

Wakeup is the reverse tournament: each player wakes the losers of the
matches it won, champion first.  The (M) variant replaces that with a
single poststored global flag.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import Op, Poststore, WaitUntil, Write
from repro.sync.barriers.base import BarrierAlgorithm

__all__ = ["TournamentBarrier"]


class TournamentBarrier(BarrierAlgorithm):
    """Static binary tournament; ``global_wakeup=True`` gives
    tournament(M)."""

    name = "tournament"

    def __init__(
        self,
        mem: SharedMemory,
        n_procs: int,
        *,
        global_wakeup: bool = False,
        use_poststore: bool = True,
    ):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self.global_wakeup = global_wakeup
        if global_wakeup:
            self.name = "tournament(M)"
        self.n_rounds = self.rounds_for(n_procs)
        # arrival[r][w]: the flag the round-r loser sets at winner w
        self.arrival = [
            {
                w: mem.alloc_word()
                for w in range(0, n_procs, 1 << (r + 1))
                if w + (1 << r) < n_procs
            }
            for r in range(self.n_rounds)
        ]
        # per-player wakeup flag (used by the tree-wakeup variant)
        self.wakeup = [mem.alloc_word() for _ in range(n_procs)]
        self.flag = mem.alloc_word()

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Play the bracket; champion triggers the wakeup phase."""
        self._check_pid(pid)
        if self.n_procs == 1:
            return
        won_rounds: list[int] = []
        lost_round: int | None = None
        for r in range(self.n_rounds):
            step = 1 << r
            if pid % (step << 1) == 0:
                # winner of this round (or bye if no opponent)
                if pid + step < self.n_procs:
                    yield WaitUntil(
                        self.arrival[r][pid], lambda v, e=episode: v > e
                    )
                    won_rounds.append(r)
            else:
                # statically determined loser: report and wait
                winner = pid - step
                yield Write(self.arrival[r][winner], episode + 1)
                if self.use_poststore:
                    yield Poststore(self.arrival[r][winner])
                lost_round = r
                break
        if lost_round is not None:
            if self.global_wakeup:
                yield WaitUntil(self.flag, lambda v, e=episode: v > e)
            else:
                yield WaitUntil(self.wakeup[pid], lambda v, e=episode: v > e)
        if self.global_wakeup:
            if lost_round is None:  # champion
                yield Write(self.flag, episode + 1)
                if self.use_poststore:
                    yield Poststore(self.flag)
            return
        # Tree wakeup: wake the losers of won matches, top round first.
        for r in reversed(won_rounds):
            loser = pid + (1 << r)
            yield Write(self.wakeup[loser], episode + 1)
            if self.use_poststore:
                yield Poststore(self.wakeup[loser])
