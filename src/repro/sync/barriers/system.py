"""The "System" barrier: the vendor pthread library barrier.

The paper observes that "the performance of the system library provided
pthread barriers ... is almost similar to that of the dynamic-tree
barrier with global wakeup flag".  We model it accordingly: a tree(M)
barrier wrapped in the fixed software overhead of a library call
(argument checking, descriptor lookup, thread bookkeeping) on entry and
exit.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import LocalOps, Op
from repro.sync.barriers.base import BarrierAlgorithm
from repro.sync.barriers.tree import TreeBarrier

__all__ = ["SystemBarrier"]


class SystemBarrier(BarrierAlgorithm):
    """pthread-style library barrier (tree(M) + call overhead)."""

    name = "system"

    #: Local operations charged for the library-call path on each side
    #: of the barrier proper.
    CALL_OVERHEAD_LOCAL_OPS = 60

    def __init__(self, mem: SharedMemory, n_procs: int, *, use_poststore: bool = True):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self._inner = TreeBarrier(
            mem, n_procs, global_wakeup=True, use_poststore=use_poststore
        )

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Library entry, tree(M) barrier, library exit."""
        self._check_pid(pid)
        yield LocalOps(self.CALL_OVERHEAD_LOCAL_OPS)
        yield from self._inner.wait(pid, episode)
        yield LocalOps(self.CALL_OVERHEAD_LOCAL_OPS)
