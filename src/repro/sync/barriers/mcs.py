"""Algorithm 5: the MCS tree barrier (Mellor-Crummey & Scott).

A 4-ary *arrival* tree — every processor is a tree node; it waits for
its (up to) four children to report, then reports to its own parent —
and a binary *wakeup* tree.

The defining implementation detail, faithfully modelled: the four
children report by "setting a designated byte of a 32-bit word" at the
parent.  Those four flags share one subpage here, so each child's write
must pull the subpage exclusive over the ring and the parent's spin
re-reads interleave with them: "each node in the MCS tree incurs 4
sequential communication steps in the best case, and 8 in the worst
(owing to false sharing)".  On the KSR-1 this cancels the 4-ary tree's
halved height, which is why MCS ties tournament in Figure 4 and only
pulls slightly ahead on the faster-clocked KSR-2.

The (M) variant wakes through one poststored global flag.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.machine.config import SUBPAGE_BYTES
from repro.sim.process import Op, Poststore, WaitUntil, Write
from repro.sync.barriers.base import BarrierAlgorithm

__all__ = ["McsBarrier"]

_ARRIVAL_ARITY = 4


class McsBarrier(BarrierAlgorithm):
    """4-ary arrival / binary wakeup tree; ``global_wakeup=True`` gives
    MCS(M)."""

    name = "mcs"

    def __init__(
        self,
        mem: SharedMemory,
        n_procs: int,
        *,
        global_wakeup: bool = False,
        use_poststore: bool = True,
    ):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self.global_wakeup = global_wakeup
        if global_wakeup:
            self.name = "mcs(M)"
        # childnotready words: 4 words *sharing one subpage* per node —
        # the false sharing is the algorithm's structure, not an
        # accident, so it is deliberately not padded away.
        self.child_flags: list[list[int]] = []
        for node in range(n_procs):
            base = mem.alloc(_ARRIVAL_ARITY * 8, align=SUBPAGE_BYTES)
            if _ARRIVAL_ARITY * 8 > SUBPAGE_BYTES:
                raise ConfigError("arrival word must fit one subpage")
            self.child_flags.append([base + 8 * k for k in range(_ARRIVAL_ARITY)])
        # binary wakeup flags: one padded word per node
        self.wakeup = [mem.alloc_word() for _ in range(n_procs)]
        self.flag = mem.alloc_word()

    # tree helpers ------------------------------------------------------

    def arrival_children(self, node: int) -> list[int]:
        """Children of ``node`` in the 4-ary arrival tree."""
        first = _ARRIVAL_ARITY * node + 1
        return [c for c in range(first, first + _ARRIVAL_ARITY) if c < self.n_procs]

    def arrival_parent(self, node: int) -> tuple[int, int]:
        """(parent, slot-index-at-parent) of ``node``."""
        return (node - 1) // _ARRIVAL_ARITY, (node - 1) % _ARRIVAL_ARITY

    def wakeup_children(self, node: int) -> list[int]:
        """Children of ``node`` in the binary wakeup tree."""
        return [c for c in (2 * node + 1, 2 * node + 2) if c < self.n_procs]

    # -------------------------------------------------------------------

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Gather children, report to parent, await wakeup, fan out."""
        self._check_pid(pid)
        if self.n_procs == 1:
            return
        # Phase 1: wait for all arrival children (4 flags, one subpage).
        for slot, child in enumerate(self.arrival_children(pid)):
            yield WaitUntil(self.child_flags[pid][slot], lambda v, e=episode: v > e)
        # Phase 2: report to the arrival parent (root has none).  The
        # child flags deliberately get no poststore: a broadcast of the
        # false-shared word would serialize behind the siblings' writes
        # on the same subpage and only add traffic — the parent's spin
        # re-read (snarfed by the other siblings' place-holders) is the
        # efficient delivery here.
        if pid != 0:
            parent, slot = self.arrival_parent(pid)
            yield Write(self.child_flags[parent][slot], episode + 1)
            # Phase 3: await wakeup.
            if self.global_wakeup:
                yield WaitUntil(self.flag, lambda v, e=episode: v > e)
            else:
                yield WaitUntil(self.wakeup[pid], lambda v, e=episode: v > e)
        # Phase 4: propagate the wakeup.
        if self.global_wakeup:
            if pid == 0:
                yield Write(self.flag, episode + 1)
                if self.use_poststore:
                    yield Poststore(self.flag)
            return
        for child in self.wakeup_children(pid):
            yield Write(self.wakeup[child], episode + 1)
            if self.use_poststore:
                yield Poststore(self.wakeup[child])
