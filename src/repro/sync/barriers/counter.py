"""Algorithm 1: the naive counter barrier.

"A global counter is decremented by each processor upon arrival.  The
counter becoming zero is the indication of barrier completion, and this
is observed independently by each processor by testing the counter."

Every arrival costs at least two serialized ring accesses on the *same*
subpage (fetch the counter exclusively, and the spinners' combined
re-read), so the pipelined ring cannot help — this is the hot-spot
algorithm that anchors the top of Figure 4.

Reuse across episodes rotates over three counters: the last arriver of
episode ``e`` re-arms the counter of episode ``e + 2``, which no thread
can reach before every thread has passed episode ``e + 1`` — so the
re-arm can never race a decrement.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.machine.api import SharedMemory
from repro.sim.process import GetSubpage, Op, Read, ReleaseSubpage, WaitUntil, Write
from repro.sync.barriers.base import BarrierAlgorithm

__all__ = ["CounterBarrier"]


class CounterBarrier(BarrierAlgorithm):
    """Centralized counter with atomic decrement via get_subpage."""

    name = "counter"

    def __init__(self, mem: SharedMemory, n_procs: int, *, use_poststore: bool = True):
        super().__init__(mem, n_procs, use_poststore=use_poststore)
        self.counters = [mem.alloc_word() for _ in range(3)]
        for c in self.counters:
            mem.poke(c, n_procs)

    def wait(self, pid: int, episode: int) -> Generator[Op, Any, None]:
        """Decrement; the last arriver re-arms a future counter; all
        others spin on the counter reaching zero."""
        self._check_pid(pid)
        counter = self.counters[episode % 3]
        future = self.counters[(episode + 2) % 3]
        yield GetSubpage(counter)
        value = yield Read(counter)
        yield Write(counter, value - 1)
        yield ReleaseSubpage(counter)
        if value - 1 == 0:
            # last arriver re-arms episode e+2's counter, which nobody
            # can touch before every thread has crossed episode e+1
            yield Write(future, self.n_procs)
        else:
            yield WaitUntil(counter, lambda v: v == 0)
