"""Terminal summary of one or more captures.

The quick look before reaching for a trace viewer: per-run totals, the
derived hardware-monitor ratios the paper reasons with (miss rates,
mean ring latency, slot-wait fraction) and the peak saturation signals
from the bucketed series, rendered with the shared fixed-width
:class:`~repro.util.tables.Table`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.probes import ObsCapture
from repro.util.tables import Table

__all__ = ["capture_summary", "render_summary"]


def capture_summary(capture: ObsCapture) -> dict[str, Any]:
    """One capture as a compact JSON-safe dict.

    The serving layer (:mod:`repro.service`) attaches these to HTTP
    responses instead of full captures: every number a response needs
    for a quick saturation read, none of the per-op records.  Keys are
    plain scalars/dicts so ``json.dumps`` works directly, and equal
    captures summarise identically (the values are drawn from the
    frozen capture, nothing is re-derived).
    """
    return {
        "label": capture.label,
        "n_cells": capture.n_cells,
        "sim_seconds": capture.end_seconds,
        "totals": {k: v for k, v in sorted(capture.totals.items())},
        "derived": {k: v for k, v in sorted(capture.derived.items())},
        "directory": {k: v for k, v in sorted(capture.directory.items())},
        "faults": {k: v for k, v in sorted(capture.faults.items())},
        "peak_ring_utilization": capture.view.peak("ring_utilization"),
        "dropped_records": capture.dropped_records,
    }


def render_summary(captures: Sequence[ObsCapture]) -> str:
    """Render a machine-wide observability report for ``captures``."""
    table = Table(
        [
            "run",
            "cells",
            "sim ms",
            "ops",
            "ring tx",
            "avg ring cy",
            "wait frac",
            "peak util",
            "sc miss",
            "lc miss",
            "invals",
            "dropped",
        ],
        title="Machine-wide observability summary",
    )
    for c in captures:
        totals = c.totals
        table.add_row(
            [
                c.label,
                c.n_cells,
                round(c.end_seconds * 1e3, 3),
                int(totals["subcache_hits"] + totals["subcache_misses"]),
                int(totals["ring_transactions"]),
                round(c.derived["avg_ring_latency"], 1),
                round(c.derived["ring_wait_fraction"], 4),
                round(c.view.peak("ring_utilization"), 4),
                round(c.derived["subcache_miss_rate"], 4),
                round(c.derived["local_miss_rate"], 4),
                int(totals["invalidations_received"]),
                c.dropped_records,
            ]
        )
    lines = [table.render()]
    for c in captures:
        ring_parts = ", ".join(
            f"{label}={transit:.0f}cy" for label, transit in c.ring_transit.items()
        )
        if ring_parts:
            lines.append(f"  {c.label}: ring transit {ring_parts}")
        d = c.directory
        lines.append(
            f"  {c.label}: directory {d['subpages']} subpages "
            f"({d['owned_exclusive']} owned, {d['shared_multi']} shared, "
            f"{d['placeholders']} place-holders)"
        )
        if c.dropped_records:
            lines.append(
                f"  {c.label}: trace ring buffer dropped {c.dropped_records} "
                f"older records (kept the most recent {len(c.records)})"
            )
    return "\n".join(lines)
