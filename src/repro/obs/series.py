"""Machine-wide time-bucketed series.

The paper's scalability arguments are all *rates over time*: how busy
the ring is, how long cells queue for a slot, how the miss mix shifts
as processors are added.  :class:`MachineSeries` accumulates exactly
those quantities into fixed-width buckets of simulated time as probe
callbacks arrive, and derives the saturation metrics at read-out.

Accumulation is pure integer/float bookkeeping keyed by
``int(time // bucket_cycles)`` — no engine events are scheduled, so an
attached observer never perturbs simulated timing, and a traced run
produces byte-identical results to an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineSeries", "SeriesView"]

#: Channel names accumulated per bucket (raw sums, before deriving).
RAW_CHANNELS = (
    "events",
    "ops",
    "op_cycles",
    "reads",
    "read_subcache_hits",
    "read_local_hits",
    "writes",
    "remote_ops",
    "cold_ops",
    "ring_tx",
    "ring_wait_cycles",
    "ring_transit_cycles",
    "invalidations",
    "fault_corrupted",
    "fault_retries",
    "fault_timeouts",
    "fault_bypass_hops",
)

#: Derived channel names computed by :meth:`MachineSeries.view`.
DERIVED_CHANNELS = (
    "ring_utilization",
    "slot_wait_fraction",
    "mean_slot_wait_cycles",
    "read_subcache_miss_rate",
    "read_remote_rate",
    "fault_retry_fraction",
)


@dataclass(frozen=True)
class SeriesView:
    """Read-out of one run's bucketed series.

    ``series`` maps channel name to ``((bucket_start_cycles, value),
    ...)`` tuples, sorted by time, covering raw and derived channels.
    Tuples (not lists) so the view is hashable-ish, picklable and
    cannot be mutated after capture.
    """

    bucket_cycles: float
    series: dict[str, tuple[tuple[float, float], ...]] = field(default_factory=dict)

    def channel(self, name: str) -> tuple[tuple[float, float], ...]:
        """One channel's points (empty tuple when nothing accumulated)."""
        return self.series.get(name, ())

    def total(self, name: str) -> float:
        """Sum of one raw channel over all buckets."""
        return sum(v for _, v in self.series.get(name, ()))

    def peak(self, name: str) -> float:
        """Maximum bucket value of one channel (0.0 when empty)."""
        points = self.series.get(name, ())
        return max((v for _, v in points), default=0.0)


class MachineSeries:
    """Accumulates probe callbacks into fixed-width time buckets.

    Parameters
    ----------
    bucket_cycles:
        Bucket width in simulated CPU cycles.
    total_slots:
        Slot count summed over every ring of the machine; the
        denominator of the ``ring_utilization`` derived channel.
    """

    def __init__(self, bucket_cycles: float, total_slots: int = 0):
        if bucket_cycles <= 0:
            raise ValueError(f"bucket_cycles must be positive, got {bucket_cycles}")
        self.bucket_cycles = float(bucket_cycles)
        self.total_slots = total_slots
        self._buckets: dict[int, dict[str, float]] = {}
        self._per_ring_transit: dict[str, float] = {}

    # -- accumulation (probe-facing) -----------------------------------

    def _bucket(self, time: float) -> dict[str, float]:
        key = int(time // self.bucket_cycles)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = dict.fromkeys(RAW_CHANNELS, 0.0)
        return bucket

    def on_event(self, time: float) -> None:
        """Engine probe: one simulator event fired at ``time``."""
        self._bucket(time)["events"] += 1

    def on_op(self, time: float, kind: str, detail: str, cycles: float) -> None:
        """Op-trace probe: one op of ``kind`` charged ``cycles``.

        ``detail`` is the cell's latency classification ("subcache",
        "local-cache", "remote", "cold", "local", ...) and drives the
        bucketed miss-mix channels.
        """
        bucket = self._bucket(time)
        bucket["ops"] += 1
        bucket["op_cycles"] += cycles
        if kind == "read":
            bucket["reads"] += 1
            if detail == "subcache":
                bucket["read_subcache_hits"] += 1
            elif detail == "local-cache":
                bucket["read_local_hits"] += 1
        elif kind == "write":
            bucket["writes"] += 1
        if detail == "remote":
            bucket["remote_ops"] += 1
        elif detail == "cold":
            bucket["cold_ops"] += 1

    def on_ring(self, ring, requested_at: float, wait: float, transit: float) -> None:
        """Ring probe: one slot grant on ``ring`` (any level)."""
        bucket = self._bucket(requested_at)
        bucket["ring_tx"] += 1
        bucket["ring_wait_cycles"] += wait
        bucket["ring_transit_cycles"] += transit
        label = ring.label
        self._per_ring_transit[label] = self._per_ring_transit.get(label, 0.0) + transit

    def on_invalidations(self, now: float, n_losers: int) -> None:
        """Protocol probe: an invalidation round hit ``n_losers`` cells."""
        self._bucket(now)["invalidations"] += n_losers

    def on_fault(self, time: float, channel: str, n: float = 1.0) -> None:
        """Fault-injector probe: ``n`` events on one ``fault_*`` channel."""
        self._bucket(time)[channel] += n

    # -- read-out ------------------------------------------------------

    def per_ring_transit(self) -> dict[str, float]:
        """Total transit cycles carried per ring label (sorted copy)."""
        return dict(sorted(self._per_ring_transit.items()))

    def view(self) -> SeriesView:
        """Freeze the accumulated buckets into a :class:`SeriesView`.

        Raw channels are emitted as accumulated; derived channels are
        computed per bucket: ring utilization (transit over available
        slot-cycles), slot-wait fraction and mean slot wait (the
        saturation signals), and the read miss mix.
        """
        keys = sorted(self._buckets)
        width = self.bucket_cycles
        out: dict[str, list[tuple[float, float]]] = {
            name: [] for name in (*RAW_CHANNELS, *DERIVED_CHANNELS)
        }
        slot_cycles = self.total_slots * width
        for key in keys:
            start = key * width
            b = self._buckets[key]
            for name in RAW_CHANNELS:
                out[name].append((start, b[name]))
            transit = b["ring_transit_cycles"]
            wait = b["ring_wait_cycles"]
            tx = b["ring_tx"]
            reads = b["reads"]
            ops = b["ops"]
            util = min(1.0, transit / slot_cycles) if slot_cycles > 0 else 0.0
            out["ring_utilization"].append((start, util))
            denom = wait + transit
            out["slot_wait_fraction"].append((start, wait / denom if denom else 0.0))
            out["mean_slot_wait_cycles"].append((start, wait / tx if tx else 0.0))
            out["read_subcache_miss_rate"].append(
                (start, 1.0 - b["read_subcache_hits"] / reads if reads else 0.0)
            )
            out["read_remote_rate"].append((start, b["remote_ops"] / ops if ops else 0.0))
            out["fault_retry_fraction"].append(
                (start, b["fault_retries"] / tx if tx else 0.0)
            )
        frozen = {name: tuple(points) for name, points in out.items()}
        return SeriesView(bucket_cycles=width, series=frozen)
