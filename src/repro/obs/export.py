"""Exporters: Chrome-trace JSON and CSV.

The Chrome trace event format (the ``about:tracing`` / Perfetto JSON
schema) maps naturally onto the simulator: one *process* per captured
run, one *thread* per cell, complete (``"ph": "X"``) events for op
records, and counter (``"ph": "C"``) events for the bucketed
machine-wide series.  Timestamps are **simulated** microseconds.

Exports are deterministic by construction: captures are frozen
dataclasses, event lists are built in a fixed order, and JSON is
serialized with sorted keys and fixed separators — two equal captures
always serialize to identical bytes (pinned by
``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.obs.probes import ObsCapture
from repro.obs.series import DERIVED_CHANNELS, RAW_CHANNELS

__all__ = [
    "chrome_trace_events",
    "export_chrome",
    "export_csv",
    "point_slug",
    "trace_sink",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Series channels exported as Chrome counter tracks (the saturation
#: story told by the paper, kept small so traces stay loadable).
COUNTER_CHANNELS = (
    "events",
    "ops",
    "ring_tx",
    "ring_utilization",
    "slot_wait_fraction",
    "mean_slot_wait_cycles",
    "read_subcache_miss_rate",
    "read_remote_rate",
    "invalidations",
    "fault_corrupted",
    "fault_retries",
    "fault_timeouts",
    "fault_bypass_hops",
)


def chrome_trace_events(capture: ObsCapture, pid: int = 0) -> list[dict[str, Any]]:
    """Chrome trace events for one capture, as one trace *process*.

    Emits process/thread metadata, an ``X`` (complete) event per op
    record on the owning cell's thread track, and ``C`` (counter)
    events for the bucketed series.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": capture.label},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": pid},
        },
    ]
    cells_seen = sorted({r.cell_id for r in capture.records})
    for cell_id in cells_seen:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": cell_id,
                "name": "thread_name",
                "args": {"name": f"cell {cell_id}"},
            }
        )
    for r in capture.records:
        args: dict[str, Any] = {"process": r.process}
        if r.addr is not None:
            args["addr"] = f"0x{r.addr:x}"
        if r.detail:
            args["detail"] = r.detail
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": r.cell_id,
                "ts": capture.us(r.time),
                "dur": capture.us(r.cycles),
                "name": r.kind,
                "cat": "op",
                "args": args,
            }
        )
    for channel in COUNTER_CHANNELS:
        for start, value in capture.view.channel(channel):
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": capture.us(start),
                    "name": channel,
                    "cat": "series",
                    "args": {channel: value},
                }
            )
    return events


def export_chrome(captures: Sequence[ObsCapture]) -> str:
    """Serialize captures as one Chrome-trace JSON document (a string).

    Each capture becomes one trace process (``pid`` = its index).  The
    top-level ``otherData`` block carries per-capture metadata,
    including the dropped-record counts of capped traces, so truncation
    is always visible in the artifact itself.
    """
    events: list[dict[str, Any]] = []
    other: dict[str, Any] = {"generator": "ksr-trace (repro.obs)", "captures": []}
    for pid, capture in enumerate(captures):
        events.extend(chrome_trace_events(capture, pid=pid))
        other["captures"].append(
            {
                "pid": pid,
                "label": capture.label,
                "n_cells": capture.n_cells,
                "end_us": capture.us(capture.end_cycles),
                "records": len(capture.records),
                "dropped_records": capture.dropped_records,
                "directory": capture.directory,
                "meta": capture.meta,
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema-check a parsed Chrome-trace document.

    Returns a list of problems (empty = valid).  Checks the subset of
    the trace-event format this package emits and viewers require:
    ``traceEvents`` array; every event carries ``ph``/``pid``/``tid``/
    ``name``; timed phases carry a numeric ``ts``; ``X`` events carry a
    numeric ``dur``; ``C`` and ``M`` events carry ``args``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph in ("X", "B", "E", "C", "I"):
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: phase {ph!r} needs numeric 'ts'")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event needs numeric 'dur'")
        if ph in ("C", "M") and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: phase {ph!r} needs 'args' object")
    return problems


def export_csv(capture: ObsCapture) -> str:
    """Serialize one capture's bucketed series as CSV.

    One row per bucket; the first column is the bucket start in
    simulated cycles, followed by every raw and derived channel.  A
    trailing comment block carries the machine totals so a lone CSV
    file still tells the whole story.
    """
    channels = (*RAW_CHANNELS, *DERIVED_CHANNELS)
    out = io.StringIO()
    out.write("bucket_start_cycles," + ",".join(channels) + "\n")
    by_channel = {name: dict(capture.view.channel(name)) for name in channels}
    starts = sorted({t for points in by_channel.values() for t in points})
    for start in starts:
        row = [repr(start)]
        row.extend(repr(by_channel[name].get(start, 0.0)) for name in channels)
        out.write(",".join(row) + "\n")
    out.write(f"# label,{capture.label}\n")
    out.write(f"# n_cells,{capture.n_cells}\n")
    out.write(f"# end_cycles,{capture.end_cycles!r}\n")
    out.write(f"# dropped_records,{capture.dropped_records}\n")
    for key in sorted(capture.totals):
        out.write(f"# total_{key},{capture.totals[key]!r}\n")
    return out.getvalue()


def point_slug(kwargs: dict[str, Any]) -> str:
    """A filesystem-safe, deterministic name for one sweep point.

    Built from the point's scalar keyword arguments (observability
    options and other non-scalars are skipped).
    """
    parts = []
    for key in sorted(kwargs):
        value = kwargs[key]
        if isinstance(value, (str, int, float, bool)):
            text = str(value).replace(".", "p")
            safe = "".join(c if c.isalnum() or c in "-p" else "-" for c in text)
            parts.append(f"{key}-{safe}")
    return "_".join(parts) or "point"


def write_chrome_trace(
    path: str | Path, captures: Iterable[ObsCapture]
) -> Path:
    """Write captures as a Chrome-trace JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(export_chrome(list(captures)), encoding="utf-8")
    return path


def trace_sink(
    experiment_id: str, trace_dir: str | Path
) -> Callable[[int, dict[str, Any], Any], None]:
    """An ``on_result`` callback writing one Chrome trace per sweep point.

    Suitable for :meth:`repro.experiments.sweep.SweepRunner.map`: point
    results shaped ``(value, ObsCapture)`` get written to
    ``<trace_dir>/<experiment_id>_<point_slug>.trace.json``; any other
    result shape is silently skipped (untraced points).
    """
    root = Path(trace_dir)

    def sink(index: int, kwargs: dict[str, Any], result: Any) -> None:
        """Write the point's capture, if the result carries one."""
        if (
            isinstance(result, tuple)
            and len(result) == 2
            and isinstance(result[1], ObsCapture)
        ):
            name = f"{experiment_id.lower()}_{point_slug(kwargs)}.trace.json"
            write_chrome_trace(root / name, [result[1]])

    return sink
