"""Command-line front end: ``ksr-trace``.

Re-runs the paper's machine-level experiments with the observability
pipeline attached and exports what the machine did: a Chrome-trace JSON
(load in ``about:tracing`` or https://ui.perfetto.dev), a CSV of the
bucketed machine-wide series, or a terminal summary.

Examples::

    ksr-trace --list
    ksr-trace fig3 --procs 16                        # terminal summary
    ksr-trace fig3 --procs 16 --format chrome --output fig3.trace.json
    ksr-trace fig4 fig5 --reps 4 --format csv
    ksr-trace fig3 --jobs 4 --no-cache               # byte-identical to serial

Traces do not perturb the simulation: probes are read-only, so a traced
point reports exactly the value an untraced run would.  Exports are
deterministic — same subjects, same options, same bytes, whatever
``--jobs`` says.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.obs.export import export_chrome, export_csv
from repro.obs.probes import ObsCapture, ObsSpec
from repro.obs.summary import render_summary
from repro.util.cli import (
    build_parser,
    install_sigpipe_handler,
    print_unknown,
    resolve_selection,
)

__all__ = ["main", "SUBJECTS"]

_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def _captures(runner, func, calls) -> list[ObsCapture]:
    return [capture for _, capture in runner.map(func, calls)]


def _fig2(args, spec, runner) -> list[ObsCapture]:
    from repro.experiments.latency import measure_latencies

    calls = []
    for level in ("local", "network"):
        if level == "network" and args.procs < 2:
            continue
        for op in ("read", "write"):
            calls.append(
                dict(n_procs=args.procs, level=level, op=op,
                     samples=args.samples, obs=spec)
            )
    return _captures(runner, measure_latencies, calls)


def _fig3(args, spec, runner) -> list[ObsCapture]:
    from repro.experiments.locks import measure_lock

    calls = [
        dict(kind="hardware", n_procs=args.procs, read_fraction=0.0,
             ops=args.ops, obs=spec)
    ]
    calls += [
        dict(kind="rw", n_procs=args.procs, read_fraction=f,
             ops=args.ops, obs=spec)
        for f in _FRACTIONS
    ]
    return _captures(runner, measure_lock, calls)


def _fig4(args, spec, runner) -> list[ObsCapture]:
    from repro.experiments.barriers import DEFAULT_ALGORITHMS, figure4_point

    calls = [
        dict(name=name, n_procs=args.procs, reps=args.reps, seed=404, obs=spec)
        for name in DEFAULT_ALGORITHMS
    ]
    return _captures(runner, figure4_point, calls)


def _fig5(args, spec, runner) -> list[ObsCapture]:
    from repro.experiments.barriers import DEFAULT_ALGORITHMS, figure5_point

    calls = [
        dict(name=name, n_procs=args.procs, reps=args.reps, seed=404, obs=spec)
        for name in DEFAULT_ALGORITHMS
    ]
    return _captures(runner, figure5_point, calls)


#: Subject id -> (description, capture producer).
SUBJECTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("Figure 2 latency points (local + network, read + write)", _fig2),
    "fig3": ("Figure 3 lock points (hardware + rw read-share sweep)", _fig3),
    "fig4": ("Figure 4 barrier algorithms on the KSR-1", _fig4),
    "fig5": ("Figure 5 barrier algorithms on the two-ring KSR-2", _fig5),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-trace``."""
    install_sigpipe_handler()
    parser = build_parser(
        "ksr-trace",
        "Trace the simulated KSR machine while it reruns the paper's "
        "experiments; export Chrome traces, CSV series or a summary.",
        positional="subjects",
        positional_help="what to trace (see --list)",
    )
    parser.add_argument(
        "--procs", type=int, default=16, metavar="P",
        help="processor count for every traced point (default 16)",
    )
    parser.add_argument(
        "--format", choices=("summary", "chrome", "csv"), default="summary",
        help="export format (default: terminal summary)",
    )
    parser.add_argument(
        "--bucket", type=float, default=10_000.0, metavar="CYCLES",
        help="series bucket width in simulated cycles (default 10000)",
    )
    parser.add_argument(
        "--max-records", type=int, default=20_000, metavar="N",
        help="op-trace ring-buffer capacity; 0 = unbounded (default 20000; "
        "evictions are counted and reported, never silent)",
    )
    parser.add_argument(
        "--ops", type=int, default=30, metavar="N",
        help="fig3: lock operations per processor (default 30)",
    )
    parser.add_argument(
        "--samples", type=int, default=400, metavar="N",
        help="fig2: timed accesses per processor (default 400)",
    )
    parser.add_argument(
        "--reps", type=int, default=6, metavar="N",
        help="fig4/fig5: barrier episodes per point (default 6)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan points across N worker processes "
        "(output is byte-identical to the serial run)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point instead of reusing .ksr-cache/",
    )
    args = parser.parse_args(argv)
    if args.list or not args.subjects:
        for key, (title, _) in SUBJECTS.items():
            print(f"{key:6s} {title}")
        return 0
    wanted, unknown = resolve_selection(args.subjects, SUBJECTS)
    if unknown:
        return print_unknown(unknown, "subject")
    from repro.experiments.sweep import ResultCache, SweepRunner

    runner = SweepRunner(
        jobs=args.jobs, cache=None if args.no_cache else ResultCache.default()
    )
    spec = ObsSpec(
        bucket_cycles=args.bucket,
        max_records=args.max_records if args.max_records > 0 else None,
    )
    captures: list[ObsCapture] = []
    for key in wanted:
        _, producer = SUBJECTS[key]
        captures.extend(producer(args, spec, runner))
    if args.format == "chrome":
        text = export_chrome(captures)
    elif args.format == "csv":
        text = "\n".join(export_csv(c) for c in captures)
    else:
        text = render_summary(captures) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"{args.format} export written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
