"""Machine-wide observability: probes, aggregation, export (`ksr-trace`).

The paper's measurements lean on the KSR-1's per-node hardware
performance monitor; this package is the machine-wide version for the
simulator.  An :class:`Observer` taps the engine, the rings, the
coherence protocol and every cell's op stream through zero-cost-when-
disabled probe seams, aggregates into time-bucketed series
(:mod:`repro.obs.series`), and exports Chrome-trace JSON, CSV or a
terminal summary (:mod:`repro.obs.export`, :mod:`repro.obs.summary`)
— also via the ``ksr-trace`` command line (:mod:`repro.obs.cli`).

Captures are pure values: a traced sweep point remains a deterministic
function of its arguments, so `ksr-experiments --jobs N` and the result
cache hold for traced runs, byte for byte.
"""

from repro.obs.export import (
    chrome_trace_events,
    export_chrome,
    export_csv,
    point_slug,
    trace_sink,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.probes import Observer, ObsCapture, ObsSpec
from repro.obs.series import MachineSeries, SeriesView
from repro.obs.summary import capture_summary, render_summary

__all__ = [
    "MachineSeries",
    "ObsCapture",
    "ObsSpec",
    "Observer",
    "SeriesView",
    "capture_summary",
    "chrome_trace_events",
    "export_chrome",
    "export_csv",
    "point_slug",
    "render_summary",
    "trace_sink",
    "validate_chrome_trace",
    "write_chrome_trace",
]
