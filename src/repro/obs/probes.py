"""Probe wiring: attach one observer to a whole machine.

The KSR-1's hardware performance monitor is per-node; the paper's
analysis is machine-wide.  :class:`Observer` closes that gap: it hooks
the engine, every ring, the coherence protocol and every cell's op
stream through the lightweight probe seams those modules expose, feeds
a :class:`~repro.obs.series.MachineSeries`, and snapshots everything
into one picklable :class:`ObsCapture` at the end of a run.

Design constraints honoured here:

* **Zero cost when absent** — every probe seam is an attribute that is
  ``None`` by default; instrumented code pays one branch, no calls.
* **Read-only** — probes never schedule events, draw random numbers or
  mutate simulator state, so an observed run's simulated timing is
  bit-identical to an unobserved one (tested).
* **Pure captures** — an :class:`ObsCapture` is a plain frozen
  dataclass of numbers, tuples and dicts, so sweep workers can pickle
  it back to the parent and the result cache can store it; exports from
  equal captures are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.faults.injector import FAULT_TOTAL_KEYS
from repro.obs.series import MachineSeries, SeriesView
from repro.sim.tracing import Trace, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.ksr import KsrMachine

__all__ = ["ObsSpec", "ObsCapture", "Observer"]

# Determinism sinks for `ksr-analyze flow` (KSR110): capture labels
# and metadata feed the golden-table regression suite and must be
# stable run to run.
__ksr_flow_sinks__ = ("Observer.capture",)


@dataclass(frozen=True)
class ObsSpec:
    """Observability options for one run.

    Frozen with a deterministic ``repr`` on purpose: sweep point
    functions take an ``ObsSpec`` as a keyword argument, and the result
    cache keys points by the canonical repr of their arguments.
    """

    #: Width of one aggregation bucket in simulated CPU cycles.
    bucket_cycles: float = 10_000.0
    #: Ring-buffer capacity of the op trace (``None`` = unbounded).
    #: Evictions are counted and surfaced in every export.
    max_records: Optional[int] = 20_000


@dataclass(frozen=True)
class ObsCapture:
    """Everything observed during one run, frozen and picklable."""

    #: Human-readable run label ("fig3 rw 40% P=16", ...).
    label: str
    n_cells: int
    #: Simulated-clock rate, for cycle → wall-time conversion in exports.
    clock_hz: float
    #: Simulation time when the capture was taken.
    end_cycles: float
    #: Bucketed machine-wide series (raw + derived channels).
    view: SeriesView
    #: Op records retained by the (possibly capped) trace.
    records: tuple[TraceRecord, ...]
    #: Records evicted by the trace ring buffer (0 when uncapped).
    dropped_records: int
    #: Per-cell performance-monitor snapshots, indexed by cell id.
    perfmon: tuple[dict[str, float], ...]
    #: Machine-wide counter totals (sum of ``perfmon``).
    totals: dict[str, float]
    #: Derived machine-wide ratios (miss rates, ring wait fraction).
    derived: dict[str, float]
    #: Directory sharing profile at capture time.
    directory: dict[str, int]
    #: Transit cycles carried per ring label.
    ring_transit: dict[str, float]
    #: Fault-injection totals (:data:`repro.faults.FAULT_TOTAL_KEYS`);
    #: all zeros when no injector was attached, so a zero-fault capture
    #: is byte-identical to an uninjected one.
    faults: dict[str, float] = field(default_factory=dict)
    #: Free-form experiment metadata (arguments, seeds, ...).
    meta: dict[str, str] = field(default_factory=dict)

    @property
    def end_seconds(self) -> float:
        """Simulated end time in seconds."""
        return self.end_cycles / self.clock_hz

    def us(self, cycles: float) -> float:
        """Convert simulated cycles to simulated microseconds."""
        return cycles / self.clock_hz * 1e6


class _SeriesTrace(Trace):
    """A :class:`Trace` that also feeds the bucketed series.

    Bucketing happens for *every* record, including ones later evicted
    by the ring buffer, so the series stay exact however small the
    record cap is.
    """

    def __init__(self, capacity: Optional[int], series: MachineSeries):
        super().__init__(capacity=capacity)
        self._series = series

    def record(
        self,
        time: float,
        cell_id: int,
        process: str,
        kind: str,
        addr: int | None,
        cycles: float,
        detail: str = "",
    ) -> None:
        """Bucket the op, then retain it subject to the ring buffer."""
        self._series.on_op(time, kind, detail, cycles)
        super().record(time, cell_id, process, kind, addr, cycles, detail)


class Observer:
    """Attaches to a :class:`~repro.machine.ksr.KsrMachine` and records.

    Usage::

        machine = KsrMachine(config)
        obs = Observer(ObsSpec(bucket_cycles=5000)).attach(machine)
        ...  # spawn threads, machine.run()
        capture = obs.capture("my workload")
        obs.detach()

    Attach before running; probes only see what fires while attached.
    """

    def __init__(self, spec: ObsSpec | None = None):
        self.spec = spec or ObsSpec()
        self.series: MachineSeries | None = None
        self.trace: _SeriesTrace | None = None
        self._machine: "KsrMachine" | None = None
        self._prev_trace: Trace | None = None

    @property
    def attached(self) -> bool:
        """Whether the observer is currently wired into a machine."""
        return self._machine is not None

    def attach(self, machine: "KsrMachine") -> "Observer":
        """Wire every probe seam of ``machine`` to this observer.

        Raises :class:`~repro.errors.SimulationError` if this observer
        is already attached or the machine already carries probes (two
        observers on one machine would double-count).
        """
        if self._machine is not None:
            raise SimulationError("observer is already attached to a machine")
        if machine.engine.probe is not None or machine.protocol.probe is not None:
            raise SimulationError("machine already has an observer attached")
        self._machine = machine
        self.series = MachineSeries(
            self.spec.bucket_cycles, total_slots=machine.hierarchy.total_slots
        )
        machine.engine.probe = self.series.on_event
        machine.protocol.probe = self.series
        for ring in machine.hierarchy.all_rings:
            ring.probe = self.series.on_ring
        injector = getattr(machine, "fault_injector", None)
        if injector is not None:
            if injector.probe is not None:
                raise SimulationError("fault injector already has a probe wired")
            injector.probe = self.series
        self.trace = _SeriesTrace(self.spec.max_records, self.series)
        self._prev_trace = machine.set_trace(self.trace)
        return self

    def detach(self) -> None:
        """Unhook every probe and restore the machine's previous trace."""
        machine = self._machine
        if machine is None:
            return
        machine.engine.probe = None
        machine.protocol.probe = None
        for ring in machine.hierarchy.all_rings:
            ring.probe = None
        injector = getattr(machine, "fault_injector", None)
        if injector is not None and injector.probe is self.series:
            injector.probe = None
        machine.set_trace(self._prev_trace)
        self._machine = None
        self._prev_trace = None

    def capture(self, label: str, **meta: str) -> ObsCapture:
        """Snapshot everything observed so far into an :class:`ObsCapture`.

        ``meta`` key/values are stored verbatim (stringified) in the
        capture and surfaced by the exports.
        """
        machine = self._machine
        if machine is None or self.series is None or self.trace is None:
            raise SimulationError("capture() requires an attached observer")
        totals = machine.total_perf()
        injector = getattr(machine, "fault_injector", None)
        faults = (
            injector.counters.snapshot()
            if injector is not None
            else dict.fromkeys(FAULT_TOTAL_KEYS, 0.0)
        )
        return ObsCapture(
            label=label,
            n_cells=machine.config.n_cells,
            clock_hz=machine.config.clock_hz,
            end_cycles=machine.engine.now,
            view=self.series.view(),
            records=tuple(self.trace.records),
            dropped_records=self.trace.dropped,
            perfmon=tuple(cell.perfmon.snapshot() for cell in machine.cells),
            totals=totals.snapshot(),
            derived=totals.derived(),
            directory=machine.protocol.directory.summary(),
            ring_transit=self.series.per_ring_transit(),
            faults=faults,
            meta={k: str(v) for k, v in sorted(meta.items())},
        )
