"""A processing node (cell): CEU + caches + ring interface.

The cell interprets the ops yielded by the thread bound to it, charges
the local cost model (sub-cache and local-cache hits, allocation
penalties, instruction issue) and defers everything global to the
coherence protocol.  One thread runs per cell, as the paper's
experiments bind them.

Latency composition for a read (write analogous, plus write extras):

=======================  =============================================
Case                     Charge (CPU cycles)
=======================  =============================================
sub-cache hit            2
local-cache hit          18 (+9 if the access allocated a fresh 2 KB
                         sub-cache block — the measured +50 % case)
remote                   ring transaction (~175 uncontended: one
                         circuit + protocol overhead + slot queueing)
                         (+105 if it allocated a fresh 16 KB page —
                         the measured +60 % case) (+block penalty)
cold first touch         local creation: 18 + allocation penalties
=======================  =============================================
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.machine.config import MachineConfig
from repro.machine.thread import TimerModel
from repro.memory.address import subpage_of
from repro.memory.local_cache import LocalCache
from repro.memory.perfmon import PerfMonitor
from repro.memory.subcache import SubCache
from repro.sim.engine import Engine
from repro.sim.process import (
    Compute,
    Fence,
    GetSubpage,
    LocalOps,
    Op,
    Poststore,
    Prefetch,
    Process,
    Read,
    ReleaseSubpage,
    WaitUntil,
    Write,
)
from repro.sim.tracing import Trace
from repro.util.rng import SeedStream

__all__ = ["Cell"]


class Cell:
    """One processing node of the simulated machine."""

    def __init__(
        self,
        cell_id: int,
        config: MachineConfig,
        engine: Engine,
        protocol: "CoherenceProtocol",  # noqa: F821 - import cycle, see machine.ksr
        seeds: SeedStream,
        trace: Optional[Trace] = None,
    ):
        self.cell_id = cell_id
        self.config = config
        self.engine = engine
        self.protocol = protocol
        self.subcache = SubCache(config.subcache, seeds.rng(f"cell/{cell_id}/subcache"))
        self.local_cache = LocalCache(
            config.local_cache, seeds.rng(f"cell/{cell_id}/local-cache")
        )
        self.perfmon = PerfMonitor()
        self.timer = TimerModel(config, cell_id, seeds.rng(f"cell/{cell_id}/timer"))
        self.trace = trace
        #: Set by the protocol when a demand fill allocated a page; the
        #: in-progress access picks it up as a latency penalty.
        self.pending_page_alloc = False
        #: Fault seam (:mod:`repro.faults`): maps a resume time to a
        #: possibly later one while the cell is in a transient stall
        #: window.  ``None`` (the default) costs one branch per resume.
        self.fault_delay: Optional[Callable[[float], float]] = None
        self.current_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Process driving
    # ------------------------------------------------------------------

    def set_trace(self, trace: Optional[Trace]) -> None:
        """Attach (or, with ``None``, detach) the op-record sink.

        The cost model is unaffected: tracing only observes.  Called by
        :meth:`repro.machine.ksr.KsrMachine.set_trace`.
        """
        self.trace = trace

    def start(self, process: Process) -> None:
        """Begin executing a thread on this cell."""
        if self.current_process is not None and not self.current_process.finished:
            raise SimulationError(
                f"cell {self.cell_id} already runs {self.current_process.name}"
            )
        self.current_process = process
        process.started_at = self.engine.now
        self.engine.schedule(0, self._advance, process, None)

    def _advance(self, process: Process, send_value: Any) -> None:
        """Feed the last result in and interpret the next op."""
        try:
            op = process.body.send(send_value)
        except StopIteration as stop:
            process.finish(self.engine.now, stop.value)
            return
        if not isinstance(op, Op):
            raise SimulationError(
                f"thread {process.name} yielded {op!r}; threads must yield Op instances"
            )
        self._dispatch(process, op)

    def _resume(self, process: Process, at: float, value: Any = None) -> None:
        """Schedule the generator to continue at time ``at``.

        The single continuation path for op completion, so a fault
        injector deferring ``at`` here freezes the cell's forward
        progress for the stall window without touching the event queue.
        """
        if self.fault_delay is not None:
            at = self.fault_delay(at)
        if at < self.engine.now:
            raise SimulationError(
                f"resume of {process.name} scheduled in the past "
                f"({at} < {self.engine.now})"
            )
        process.waiting_on = None
        self.engine.schedule_at(at, self._advance, process, value)

    def _trace(self, kind: str, addr: Optional[int], start: float, end: float, detail: str = "") -> None:
        if self.trace is not None and self.current_process is not None:
            self.trace.record(
                start, self.cell_id, self.current_process.name, kind, addr, end - start, detail
            )

    # ------------------------------------------------------------------
    # Op interpretation
    # ------------------------------------------------------------------

    def _dispatch(self, process: Process, op: Op) -> None:
        now = self.engine.now
        if isinstance(op, Compute):
            self._do_compute(process, op.cycles, "compute")
        elif isinstance(op, LocalOps):
            self._do_compute(
                process, op.count * self.config.latency.local_op_cycles, "local-ops"
            )
        elif isinstance(op, Read):
            self._do_read(process, op)
        elif isinstance(op, Write):
            self._do_write(process, op)
        elif isinstance(op, GetSubpage):
            process.waiting_on = f"get_subpage(0x{op.addr:x})"
            lat = self.config.latency

            def gsp_done(done: float) -> None:
                end = done + lat.local_cache_hit_cycles
                self._trace("gsp", op.addr, now, end)
                self._resume(process, end)

            self.protocol.get_subpage(self.cell_id, op.addr, now, gsp_done)
        elif isinstance(op, ReleaseSubpage):
            self.protocol.release_subpage(self.cell_id, op.addr, now)
            end = now + self.config.latency.local_cache_hit_cycles
            self._trace("rsp", op.addr, now, end)
            self._resume(process, end)
        elif isinstance(op, Prefetch):
            self.protocol.prefetch(self.cell_id, op.addr, now)
            end = now + self.config.latency.subcache_hit_cycles
            self._trace("prefetch", op.addr, now, end)
            self._resume(process, end)
        elif isinstance(op, Poststore):
            process.waiting_on = f"poststore(0x{op.addr:x})"

            def ps_done(done: float) -> None:
                self._trace("poststore", op.addr, now, done)
                self._resume(process, done)

            self.protocol.poststore(self.cell_id, op.addr, now, ps_done)
        elif isinstance(op, WaitUntil):
            process.waiting_on = f"spin(0x{op.addr:x})"
            wait_started = now

            def woken(done: float) -> None:
                process.stall_cycles += done - wait_started
                self.perfmon.stall_cycles += done - wait_started
                value = self.protocol.peek(op.addr)
                self._trace("spin", op.addr, wait_started, done)
                self._resume(process, done, value)

            self.protocol.wait_until(self.cell_id, op.addr, op.predicate, now, woken)
        elif isinstance(op, Fence):
            pending = self.protocol.fills.outstanding_for(self.cell_id)
            end = max([now] + [t for _, t in pending])
            self._trace("fence", None, now, end)
            self._resume(process, end)
        else:  # pragma: no cover - exhaustive over the op vocabulary
            raise SimulationError(f"unknown op {op!r}")

    # ------------------------------------------------------------------

    def _do_compute(self, process: Process, cycles: float, kind: str) -> None:
        now = self.engine.now
        end, n_irq = self.timer.extend(now, cycles)
        if n_irq:
            self.perfmon.timer_interrupts += n_irq
            self.perfmon.timer_cycles += n_irq * self.timer.cost_cycles
        self.perfmon.compute_cycles += cycles
        self._trace(kind, None, now, end)
        self._resume(process, end)

    def _do_read(self, process: Process, op: Read) -> None:
        now = self.engine.now
        lat = self.config.latency
        sp = subpage_of(op.addr)

        def finish(end: float, detail: str) -> None:
            # The read's result is the word's value *at completion
            # time*: sample inside the completion event, not now.
            self._trace("read", op.addr, now, end, detail)
            process.waiting_on = None
            self.engine.schedule_at(end, self._deliver_read, process, op.addr)

        valid_locally = self.local_cache.is_valid(sp)
        sc = self.subcache.access(op.addr)
        if sc.hit and valid_locally:
            self.perfmon.subcache_hits += 1
            finish(now + lat.subcache_hit_cycles, "subcache")
            return
        self.perfmon.subcache_misses += 1
        block_extra = 0.0
        if sc.block_allocated:
            self.perfmon.subcache_block_allocs += 1
            block_extra = lat.block_alloc_cycles
        if valid_locally:
            self.perfmon.local_cache_hits += 1
            finish(now + lat.local_cache_hit_cycles + block_extra, "local-cache")
            return
        self.perfmon.local_cache_misses += 1
        process.waiting_on = f"read(0x{op.addr:x})"

        def filled(done: float) -> None:
            extra = block_extra + self._take_page_alloc_penalty()
            base = max(done, now + lat.local_cache_hit_cycles)
            finish(base + extra, "remote" if done > now else "cold")

        self.protocol.acquire_shared(self.cell_id, sp, now, filled)

    def _deliver_read(self, process: Process, addr: int) -> None:
        self._advance(process, self.protocol.peek(addr))

    def _do_write(self, process: Process, op: Write) -> None:
        now = self.engine.now
        lat = self.config.latency
        sp = subpage_of(op.addr)
        state = self.local_cache.state_of(sp)
        sc = self.subcache.access(op.addr)
        block_extra = lat.block_alloc_cycles if sc.block_allocated else 0.0
        if sc.block_allocated:
            self.perfmon.subcache_block_allocs += 1
        if state is not None and state.writable:
            if sc.hit:
                self.perfmon.subcache_hits += 1
                end = now + lat.subcache_hit_cycles
            else:
                self.perfmon.subcache_misses += 1
                self.perfmon.local_cache_hits += 1
                end = now + lat.local_cache_hit_cycles + lat.local_write_extra_cycles + block_extra
            self._complete_write(process, op, now, end, "local")
            return
        self.perfmon.subcache_misses += 1
        if state is not None and state.valid:
            self.perfmon.local_cache_hits += 1  # data present, rights missing
        else:
            self.perfmon.local_cache_misses += 1
        process.waiting_on = f"write(0x{op.addr:x})"

        def owned(done: float) -> None:
            extra = block_extra + self._take_page_alloc_penalty()
            base = max(done, now + lat.local_cache_hit_cycles)
            end = base + lat.remote_write_extra_cycles + extra
            self._complete_write(process, op, now, end, "remote" if done > now else "cold")
            process.waiting_on = None

        self.protocol.acquire_exclusive(self.cell_id, sp, now, owned)

    def _complete_write(
        self, process: Process, op: Write, start: float, end: float, detail: str
    ) -> None:
        self._trace("write", op.addr, start, end, detail)

        def commit() -> None:
            self.protocol.poke(op.addr, op.value)
            self.protocol.notify_write(subpage_of(op.addr), self.cell_id, self.engine.now)
            self._advance(process, None)

        self.engine.schedule_at(end, commit)

    def _take_page_alloc_penalty(self) -> float:
        if self.pending_page_alloc:
            self.pending_page_alloc = False
            return self.config.latency.page_alloc_cycles
        return 0.0
