"""Thread-level OS effects: the per-cell timer interrupt model.

Threads of a parallel program on the KSR are bound to distinct cells,
but "the timer interrupts on the different processors are not
synchronized" — the paper's explanation (via Steve Frank) for why the
software queue lock can beat the hardware lock even with writers only:
requesters keep joining the software queue while the holder's processor
services an interrupt, whereas hardware lock requesters burn ring
bandwidth retrying.

:class:`TimerModel` stretches an operation's duration by the interrupt
service time of every tick that falls inside it (ticks occur at
``phase + k * period``; the phase is per-cell random, which is exactly
the unsynchronized behaviour described).
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.config import MachineConfig

__all__ = ["TimerModel"]


class TimerModel:
    """Interrupt arithmetic for one cell."""

    def __init__(self, config: MachineConfig, cell_id: int, rng: np.random.Generator):
        self.enabled = config.timer.enabled
        self.cell_id = cell_id
        if self.enabled:
            self.period_cycles = config.cycles(config.timer.period_s)
            self.cost_cycles = config.cycles(config.timer.cost_s)
            self.phase = float(rng.uniform(0.0, self.period_cycles))
        else:
            self.period_cycles = math.inf
            self.cost_cycles = 0.0
            self.phase = 0.0

    def ticks_between(self, start: float, end: float) -> int:
        """Number of timer ticks in the half-open interval ``(start, end]``."""
        if not self.enabled or end <= start:
            return 0
        return int(
            math.floor((end - self.phase) / self.period_cycles)
            - math.floor((start - self.phase) / self.period_cycles)
        )

    def extend(self, start: float, duration: float) -> tuple[float, int]:
        """Stretch ``duration`` starting at ``start`` by interrupt costs.

        Returns ``(end_time, n_interrupts)``.  Interrupts landing in
        the stretched tail are themselves serviced, so the computation
        iterates to a fixed point (it terminates because the interrupt
        cost is strictly less than the period).
        """
        end = start + duration
        if not self.enabled or duration <= 0 or self.cost_cycles == 0:
            return end, 0
        counted = 0
        while True:
            total = self.ticks_between(start, end)
            if total == counted:
                return end, counted
            end += (total - counted) * self.cost_cycles
            counted = total
