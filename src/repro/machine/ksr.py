"""Assembly of a complete simulated KSR machine.

``KsrMachine`` wires the engine, the ring hierarchy, the coherence
protocol and one :class:`~repro.machine.cell.Cell` per processor, and
offers the workload-facing surface: spawn threads, run to completion,
read the clock and the performance monitors.

>>> from repro.machine import MachineConfig, KsrMachine
>>> from repro.sim import Compute
>>> m = KsrMachine(MachineConfig.ksr1(n_cells=2))
>>> def body():
...     yield Compute(100)
>>> p = m.spawn("worker", body(), cell_id=0)
>>> m.run()
>>> p.elapsed
100.0
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.coherence.protocol import CoherenceProtocol
from repro.errors import DeadlockError, SimulationError
from repro.machine.cell import Cell
from repro.machine.config import MachineConfig
from repro.memory.perfmon import PerfMonitor
from repro.ring.batch import BatchAdvancer
from repro.ring.hierarchy import RingHierarchy
from repro.sim.engine import Engine
from repro.sim.process import Op, Process
from repro.sim.tracing import Trace
from repro.util.rng import SeedStream

__all__ = ["KsrMachine"]


class KsrMachine:
    """A runnable KSR-1/KSR-2 model.

    Parameters
    ----------
    config:
        Machine description (see :meth:`MachineConfig.ksr1` /
        :meth:`MachineConfig.ksr2`).
    trace:
        Optional op-level :class:`~repro.sim.tracing.Trace` to attach
        to every cell.
    """

    #: Safety valve: a run firing more events than this raises instead
    #: of spinning forever on livelocked hardware retries.
    DEFAULT_MAX_EVENTS = 200_000_000

    def __init__(self, config: MachineConfig, trace: Optional[Trace] = None):
        self.config = config
        self.seeds = SeedStream(config.seed)
        self.engine = Engine()
        self.hierarchy = RingHierarchy(config, self.seeds)
        self.protocol = CoherenceProtocol(config, self.engine, self.hierarchy)
        if config.enable_batching:
            self.protocol.batch_advancer = BatchAdvancer(self.engine, self.hierarchy)
        self.trace = trace
        self.cells = [
            Cell(i, config, self.engine, self.protocol, self.seeds, trace)
            for i in range(config.n_cells)
        ]
        for cell in self.cells:
            self.protocol.register_cell(cell)
        self.processes: list[Process] = []
        #: The attached :class:`repro.faults.FaultInjector`, or ``None``.
        #: Set by :meth:`FaultInjector.attach`; observers read it to
        #: wire the fault probe and snapshot fault counters.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Workload surface
    # ------------------------------------------------------------------

    def spawn(
        self,
        name: str,
        body: Generator[Op, Any, Any],
        cell_id: int,
    ) -> Process:
        """Bind a thread generator to a cell and start it."""
        if not 0 <= cell_id < self.config.n_cells:
            raise SimulationError(
                f"cell {cell_id} out of range on a {self.config.n_cells}-cell machine"
            )
        injector = self.fault_injector
        if injector is not None and cell_id in injector.plan.dead_cells:
            raise SimulationError(
                f"cell {cell_id} is dead under the attached fault plan; "
                "place threads on live cells only"
            )
        process = Process(name=name, body=body, cell_id=cell_id)
        self.processes.append(process)
        self.cells[cell_id].start(process)
        return process

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run the machine; raises :class:`DeadlockError` if threads
        remain blocked when the event queue drains."""
        if max_events is None:
            max_events = self.DEFAULT_MAX_EVENTS
        self.engine.run(until=until, max_events=max_events)
        if until is not None:
            return
        if self.engine.pending and self.engine.events_fired >= max_events:
            raise SimulationError(
                f"run exceeded {max_events} events; "
                f"likely livelock: {self.protocol.blocked_description()}"
            )
        stuck = [p for p in self.processes if not p.finished]
        if stuck:
            details = "; ".join(
                f"{p.name} on cell {p.cell_id} waiting on {p.waiting_on}" for p in stuck
            )
            protocol_view = "; ".join(self.protocol.blocked_description())
            raise DeadlockError(
                f"{len(stuck)} thread(s) never finished: {details}"
                + (f" | protocol: {protocol_view}" if protocol_view else "")
            )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def now_cycles(self) -> float:
        """Current simulation time in CPU cycles."""
        return self.engine.now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds."""
        return self.config.seconds(self.engine.now)

    def elapsed_seconds(self, process: Process) -> float:
        """A finished process's lifetime in seconds."""
        return self.config.seconds(process.elapsed)

    def total_perf(self) -> PerfMonitor:
        """Performance-monitor counters summed over all cells."""
        return PerfMonitor.aggregate(cell.perfmon for cell in self.cells)

    def set_trace(self, trace: Optional[Trace]) -> Optional[Trace]:
        """Attach ``trace`` to every cell (or detach with ``None``).

        Returns the previously attached trace so an observer can
        restore it on detach.  Attaching after construction is how
        :class:`repro.obs.Observer` taps the op stream of a machine it
        did not build.
        """
        previous = self.trace
        self.trace = trace
        for cell in self.cells:
            cell.set_trace(trace)
        return previous

    def reset_perf(self) -> None:
        """Zero every cell's performance monitor."""
        for cell in self.cells:
            cell.perfmon.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KsrMachine({self.config.name}, {self.config.n_cells} cells, "
            f"t={self.engine.now:.0f} cy)"
        )
