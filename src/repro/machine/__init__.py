"""Machine assembly: configurations, cells, threads and the user API.

``MachineConfig`` is the single source of truth for every architectural
parameter (clock, cache geometry, ring geometry, published latencies).
``KsrMachine`` wires cells, the coherence protocol and the ring
hierarchy into a runnable machine; ``Program``/``Thread`` provide the
coroutine programming model, and ``SharedMemory`` the allocation API
that synchronization algorithms and kernels are written against.
"""

from repro.machine.config import (
    MachineConfig,
    RingConfig,
    CacheConfig,
    LatencyConfig,
    TimerConfig,
)
from repro.machine.ksr import KsrMachine
from repro.machine.api import SharedMemory, SharedArray, run_threads

__all__ = [
    "MachineConfig",
    "RingConfig",
    "CacheConfig",
    "LatencyConfig",
    "TimerConfig",
    "KsrMachine",
    "SharedMemory",
    "SharedArray",
    "run_threads",
]
