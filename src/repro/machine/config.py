"""Machine configurations for the KSR-1 and KSR-2.

All architectural parameters used anywhere in the simulator are defined
here, with the values published in the paper and the KSR-1 Principles
of Operations:

===========================  ======================================
Parameter                    Published value
===========================  ======================================
CPU clock                    20 MHz (KSR-1), 40 MHz (KSR-2)
Instruction issue            2 per cycle (CEU/XIU + FPU/IPU)
Peak floating point          40 MFLOPS per cell (KSR-1)
Sub-cache (first level)      256 KB data + 256 KB instruction,
                             2-way set associative, random
                             replacement, 64 B sub-blocks,
                             2 KB block allocation
Local cache (second level)   32 MB, 16-way set associative, random
                             replacement, 128 B sub-pages,
                             16 KB page allocation
Ring (one level)             unidirectional, slotted, pipelined;
                             24 slots as 2 address-interleaved
                             sub-rings of 12 slots; up to 32 cells;
                             1 GB/s
Ring hierarchy               up to 34 leaf rings under one level-1
                             ring (1088 cells)
Latency: sub-cache hit       2 cycles
Latency: local-cache hit     18 cycles
Latency: remote (same ring)  ~175 cycles
===========================  ======================================

The KSR-2 differs *only* in CPU clock speed (the paper, section 2 and
3.2.4).  Because the memory system and ring are physically unchanged,
their latencies are constant in *seconds* and therefore double when
expressed in the KSR-2's CPU cycles; the sub-cache is part of the CPU
pipeline and stays at 2 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.errors import ConfigError
from repro.util.units import KIB, MIB

__all__ = [
    "CacheConfig",
    "RingConfig",
    "LatencyConfig",
    "TimerConfig",
    "MachineConfig",
    "SUBPAGE_BYTES",
    "SUBBLOCK_BYTES",
    "PAGE_BYTES",
    "BLOCK_BYTES",
    "WORD_BYTES",
]

#: Unit of coherence and ring transfer (the local-cache line).
SUBPAGE_BYTES = 128
#: Unit of transfer between local cache and sub-cache.
SUBBLOCK_BYTES = 64
#: Unit of allocation in the local cache.
PAGE_BYTES = 16 * KIB
#: Unit of allocation in the sub-cache.
BLOCK_BYTES = 2 * KIB
#: The KSR-1 is a 64-bit machine.
WORD_BYTES = 8


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level.

    ``line_bytes`` is the transfer granularity into this level and
    ``alloc_bytes`` the allocation granularity (a KSR oddity: space is
    reserved per 2 KB block / 16 KB page while data moves per 64 B
    sub-block / 128 B sub-page).
    """

    total_bytes: int
    ways: int
    line_bytes: int
    alloc_bytes: int

    def __post_init__(self) -> None:
        for name in ("total_bytes", "ways", "line_bytes", "alloc_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"CacheConfig.{name} must be positive")
        if self.alloc_bytes % self.line_bytes != 0:
            raise ConfigError(
                f"alloc_bytes ({self.alloc_bytes}) must be a multiple of "
                f"line_bytes ({self.line_bytes})"
            )
        if self.total_bytes % (self.alloc_bytes * self.ways) != 0:
            raise ConfigError(
                f"total_bytes ({self.total_bytes}) must divide into "
                f"{self.ways} ways of {self.alloc_bytes}-byte frames"
            )

    @property
    def n_lines(self) -> int:
        """Number of line-sized frames in the cache."""
        return self.total_bytes // self.line_bytes

    @property
    def n_frames(self) -> int:
        """Number of allocation-unit frames in the cache."""
        return self.total_bytes // self.alloc_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (indexed by allocation unit)."""
        return self.n_frames // self.ways

    @property
    def lines_per_alloc(self) -> int:
        """How many transfer lines fit in one allocation unit."""
        return self.alloc_bytes // self.line_bytes


@dataclass(frozen=True)
class RingConfig:
    """Geometry and timing of one ring level.

    A transaction (request out + response back) travels exactly one
    full circuit regardless of where the responder sits, because the
    ring is unidirectional — the paper exploits this to argue that the
    neighbour is as far away as the farthest cell.
    """

    #: Stations on the ring (cell slots plus the ARD port).
    n_stations: int
    #: Independent slotted sub-rings, address-interleaved by subpage.
    n_subrings: int
    #: Slots circulating per sub-ring.
    slots_per_subring: int
    #: CPU cycles for a slot to advance one station.
    hop_cycles: float
    #: Fixed protocol cycles per remote transaction (lookup, packet
    #: assembly, cache fill) on top of the circuit time.
    protocol_overhead_cycles: float
    #: Extra CPU cycles when a transaction must cross the ARD into the
    #: level-1 ring and back down into another leaf ring.
    inter_ring_extra_cycles: float

    def __post_init__(self) -> None:
        if self.n_stations < 2:
            raise ConfigError("a ring needs at least 2 stations")
        if self.n_subrings < 1 or self.slots_per_subring < 1:
            raise ConfigError("ring must have at least one sub-ring and one slot")
        if self.hop_cycles <= 0 or self.protocol_overhead_cycles < 0:
            raise ConfigError("ring timing parameters must be positive")

    # Derived values are cached: RingConfig is frozen, and these sit on
    # the per-transaction hot path of the slotted-ring model.

    @cached_property
    def circuit_cycles(self) -> float:
        """CPU cycles for one full circuit of the ring."""
        return self.n_stations * self.hop_cycles

    @cached_property
    def total_slots(self) -> int:
        """Concurrent transactions the ring level can carry."""
        return self.n_subrings * self.slots_per_subring

    @cached_property
    def slot_spacing_cycles(self) -> float:
        """Cycles between consecutive slots passing a station."""
        return self.circuit_cycles / self.slots_per_subring

    @cached_property
    def slot_hold_cycles(self) -> float:
        """How long one transaction keeps its slot busy: the full
        circuit plus half a slot spacing of removal/turnaround before
        the emptied slot is usable by the next station."""
        return self.circuit_cycles + 0.5 * self.slot_spacing_cycles

    @cached_property
    def remote_latency_cycles(self) -> float:
        """Uncontended remote access latency within this ring."""
        return self.circuit_cycles + self.protocol_overhead_cycles


@dataclass(frozen=True)
class LatencyConfig:
    """Latencies of the memory hierarchy, in CPU cycles.

    ``*_write_extra`` model the paper's observation (Figure 2) that
    writes are slightly more expensive than reads because they incur
    replacement cost in the sub-cache.  The allocation penalties model
    the measured +50 % local-cache access time when every access
    allocates a fresh 2 KB sub-cache block, and +60 % remote time when
    every access allocates a fresh 16 KB local-cache page.
    """

    subcache_hit_cycles: float = 2.0
    local_cache_hit_cycles: float = 18.0
    local_write_extra_cycles: float = 2.0
    remote_write_extra_cycles: float = 14.0
    #: Cycles to allocate a 2 KB block frame in the sub-cache
    #: (calibrated: +50 % on an 18-cycle local-cache access).
    block_alloc_cycles: float = 9.0
    #: Cycles to allocate a 16 KB page frame in the local cache
    #: (calibrated: +60 % on a remote access).
    page_alloc_cycles: float = 105.0
    #: Poststore stalls the issuer only until the line is written to
    #: the local cache; the ring transfer proceeds asynchronously.
    poststore_issue_cycles: float = 25.0
    #: Software overhead charged for a loop iteration of spinning
    #: (test + branch) when a spin re-checks a locally valid flag.
    spin_iteration_cycles: float = 6.0
    #: Cycles per "local operation" — the unit the paper's synthetic
    #: lock workloads are expressed in (a cached memory access plus a
    #: little loop overhead).
    local_op_cycles: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "subcache_hit_cycles",
            "local_cache_hit_cycles",
            "poststore_issue_cycles",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"LatencyConfig.{name} must be positive")


@dataclass(frozen=True)
class TimerConfig:
    """OS timer-interrupt model (used by the lock experiments).

    The paper attributes the surprising defeat of the hardware lock by
    the software queue lock partly to unsynchronized per-processor
    timer interrupts [Frank, personal communication].  Each cell takes
    an interrupt every ``period_s`` seconds at a random phase, stalling
    whatever thread is running for ``cost_s`` seconds.
    """

    enabled: bool = True
    period_s: float = 10e-3
    cost_s: float = 150e-6

    def __post_init__(self) -> None:
        if self.enabled and (self.period_s <= 0 or self.cost_s < 0):
            raise ConfigError("timer period must be positive and cost non-negative")
        if self.enabled and self.cost_s >= self.period_s:
            raise ConfigError("timer cost must be smaller than its period")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of a simulated KSR machine.

    Use the :meth:`ksr1` and :meth:`ksr2` factories for the published
    configurations; ``dataclasses.replace`` (or :meth:`with_cells`)
    derives variants.
    """

    name: str
    clock_hz: float
    n_cells: int
    cells_per_ring: int
    issue_width: int
    peak_mflops_per_cell: float
    subcache: CacheConfig
    local_cache: CacheConfig
    ring: RingConfig
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    timer: TimerConfig = field(default_factory=TimerConfig)
    seed: int = 20130101
    #: Read-snarfing (concurrent read-miss combining + free place-holder
    #: revalidation) is a headline KSR feature; disable for ablation
    #: studies of what the global-wakeup barriers owe to it.
    enable_snarfing: bool = True
    #: Macro-event batching (:mod:`repro.ring.batch`): coalesce
    #: contention-free hardware-retry runs into closed-form advances and
    #: memoize analytic kernel phase pricing.  Off by default; when on,
    #: every simulated outcome is byte-identical to the per-event path
    #: (pinned by the batch-equivalence tests) — only wall-clock changes.
    enable_batching: bool = False

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ConfigError("machine needs at least one cell")
        if self.cells_per_ring < 1 or self.cells_per_ring > 32:
            raise ConfigError("a KSR leaf ring holds between 1 and 32 cells")
        if self.n_cells > 34 * self.cells_per_ring:
            raise ConfigError(
                f"{self.n_cells} cells exceeds the 34-leaf-ring maximum "
                f"({34 * self.cells_per_ring})"
            )
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.issue_width < 1:
            raise ConfigError("issue width must be at least 1")

    # ------------------------------------------------------------------
    # Derived topology
    # ------------------------------------------------------------------

    @property
    def n_rings(self) -> int:
        """Number of leaf rings needed for ``n_cells``."""
        return -(-self.n_cells // self.cells_per_ring)

    @property
    def cycle_s(self) -> float:
        """Duration of one CPU cycle in seconds."""
        return 1.0 / self.clock_hz

    def ring_of(self, cell_id: int) -> int:
        """Leaf ring index hosting ``cell_id``."""
        self._check_cell(cell_id)
        return cell_id // self.cells_per_ring

    def same_ring(self, a: int, b: int) -> bool:
        """Whether two cells share a leaf ring (no ARD crossing)."""
        return self.ring_of(a) == self.ring_of(b)

    def _check_cell(self, cell_id: int) -> None:
        if not 0 <= cell_id < self.n_cells:
            raise ConfigError(f"cell id {cell_id} out of range [0, {self.n_cells})")

    # ------------------------------------------------------------------
    # Derived latencies
    # ------------------------------------------------------------------

    @property
    def remote_latency_cycles(self) -> float:
        """Uncontended same-ring remote access latency (CPU cycles)."""
        return self.ring.remote_latency_cycles

    def remote_latency_between(self, a: int, b: int) -> float:
        """Uncontended remote latency between two specific cells."""
        base = self.ring.remote_latency_cycles
        if self.same_ring(a, b):
            return base
        return base + self.ring.inter_ring_extra_cycles

    def seconds(self, cycles: float) -> float:
        """Convert CPU cycles to seconds on this machine."""
        return cycles / self.clock_hz

    def cycles(self, seconds: float) -> float:
        """Convert seconds to CPU cycles on this machine."""
        return seconds * self.clock_hz

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @staticmethod
    def ksr1(
        n_cells: int = 32,
        *,
        seed: int = 20130101,
        timer: TimerConfig | None = None,
        enable_batching: bool = False,
    ) -> "MachineConfig":
        """The published 20 MHz KSR-1 (default: the paper's 32-cell ring).

        The ring hop time is chosen so the uncontended remote latency
        matches the published ~175 cycles for a fully populated leaf
        ring: 34 stations x 4 cycles/hop + 39 cycles protocol overhead.
        """
        ring = RingConfig(
            n_stations=34,
            n_subrings=2,
            slots_per_subring=12,
            hop_cycles=4.0,
            protocol_overhead_cycles=39.0,
            inter_ring_extra_cycles=260.0,
        )
        return MachineConfig(
            name="KSR-1",
            clock_hz=20e6,
            n_cells=n_cells,
            cells_per_ring=32,
            issue_width=2,
            peak_mflops_per_cell=40.0,
            subcache=CacheConfig(
                total_bytes=256 * KIB,
                ways=2,
                line_bytes=SUBBLOCK_BYTES,
                alloc_bytes=BLOCK_BYTES,
            ),
            local_cache=CacheConfig(
                total_bytes=32 * MIB,
                ways=16,
                line_bytes=SUBPAGE_BYTES,
                alloc_bytes=PAGE_BYTES,
            ),
            ring=ring,
            latency=LatencyConfig(),
            timer=timer if timer is not None else TimerConfig(),
            seed=seed,
            enable_batching=enable_batching,
        )

    @staticmethod
    def ksr2(
        n_cells: int = 64,
        *,
        seed: int = 20130101,
        timer: TimerConfig | None = None,
        enable_batching: bool = False,
    ) -> "MachineConfig":
        """The 40 MHz KSR-2 (default: the paper's two-ring 64-cell box).

        Identical memory system and ring; only the CPU clock doubles.
        Latencies fixed in *seconds* (local cache, ring) therefore
        double when expressed in CPU cycles, while the pipeline-coupled
        sub-cache stays at 2 cycles.
        """
        base = MachineConfig.ksr1(
            n_cells=32, seed=seed, timer=timer, enable_batching=enable_batching
        )
        ring = replace(
            base.ring,
            hop_cycles=base.ring.hop_cycles * 2,
            protocol_overhead_cycles=base.ring.protocol_overhead_cycles * 2,
            inter_ring_extra_cycles=base.ring.inter_ring_extra_cycles * 2,
        )
        latency = replace(
            base.latency,
            local_cache_hit_cycles=base.latency.local_cache_hit_cycles * 2,
            local_write_extra_cycles=base.latency.local_write_extra_cycles * 2,
            remote_write_extra_cycles=base.latency.remote_write_extra_cycles * 2,
            block_alloc_cycles=base.latency.block_alloc_cycles * 2,
            page_alloc_cycles=base.latency.page_alloc_cycles * 2,
            poststore_issue_cycles=base.latency.poststore_issue_cycles * 2,
            # software spin loop runs on the CPU: unchanged in cycles
            spin_iteration_cycles=base.latency.spin_iteration_cycles,
        )
        return replace(
            base,
            name="KSR-2",
            clock_hz=40e6,
            n_cells=n_cells,
            ring=ring,
            latency=latency,
        )

    def with_cells(self, n_cells: int) -> "MachineConfig":
        """This configuration resized to ``n_cells`` processors."""
        return replace(self, n_cells=n_cells)
