"""Shared-memory programming API for simulated workloads.

Synchronization algorithms and microbenchmarks are written against this
surface: allocate words/arrays in the global SVA space (with subpage or
page alignment so independent variables never false-share unless the
algorithm *wants* them to, e.g. the MCS flag word), then spawn thread
generators that ``yield`` ops touching those addresses.

>>> from repro.machine import MachineConfig, KsrMachine, SharedMemory
>>> from repro.sim import Read, Write
>>> m = KsrMachine(MachineConfig.ksr1(n_cells=2))
>>> mem = SharedMemory(m)
>>> flag = mem.alloc_word()
>>> def writer():
...     yield Write(flag, 7)
>>> def reader():
...     v = yield Read(flag)
...     return v
>>> _ = m.spawn("w", writer(), 0)
>>> m.run()
>>> p = m.spawn("r", reader(), 1)
>>> m.run()
>>> p.result
7
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.errors import AllocationError, MemoryModelError
from repro.machine.config import PAGE_BYTES, SUBPAGE_BYTES, WORD_BYTES
from repro.machine.ksr import KsrMachine
from repro.memory.address import align_up
from repro.sim.process import Op, Process

__all__ = ["SharedMemory", "SharedArray", "run_threads"]


class SharedArray:
    """A contiguous run of 64-bit words in SVA space."""

    def __init__(self, name: str, base: int, n_words: int):
        self.name = name
        self.base = base
        self.n_words = n_words

    def addr(self, index: int) -> int:
        """Byte address of word ``index`` (bounds-checked)."""
        if not 0 <= index < self.n_words:
            raise MemoryModelError(
                f"index {index} out of range for array {self.name!r} "
                f"of {self.n_words} words"
            )
        return self.base + index * WORD_BYTES

    def __len__(self) -> int:
        return self.n_words

    @property
    def nbytes(self) -> int:
        """Footprint in bytes."""
        return self.n_words * WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArray({self.name!r}, base=0x{self.base:x}, words={self.n_words})"


class SharedMemory:
    """Bump allocator over the machine's SVA space.

    The arena is purely an address-range budget (data values live in
    the protocol's word store); its default size is far beyond anything
    the tier-1 experiments allocate, and exhausting it raises
    :class:`~repro.errors.AllocationError` rather than wrapping around.
    """

    DEFAULT_BASE = 0x1000_0000
    DEFAULT_ARENA_BYTES = 1 << 36  # 64 GiB of SVA

    def __init__(self, machine: KsrMachine, base: int = DEFAULT_BASE, arena_bytes: int = DEFAULT_ARENA_BYTES):
        self.machine = machine
        self.base = base
        self.limit = base + arena_bytes
        self._next = base

    def alloc(self, nbytes: int, *, align: int = SUBPAGE_BYTES) -> int:
        """Reserve ``nbytes`` aligned to ``align``; returns the address."""
        if nbytes <= 0:
            raise MemoryModelError(f"allocation size must be positive, got {nbytes}")
        addr = align_up(self._next, align)
        if addr + nbytes > self.limit:
            raise AllocationError(
                f"SVA arena exhausted: need {nbytes} bytes at 0x{addr:x}, "
                f"limit 0x{self.limit:x}"
            )
        self._next = addr + nbytes
        return addr

    def alloc_word(self, *, align: int = SUBPAGE_BYTES) -> int:
        """One 64-bit word on its own subpage by default — the paper's
        discipline of padding mutually exclusive variables onto
        separate cache lines to avoid false sharing."""
        return self.alloc(WORD_BYTES, align=align)

    def alloc_words(self, n_words: int, *, align: int = SUBPAGE_BYTES) -> int:
        """``n_words`` contiguous words; returns the base address."""
        return self.alloc(n_words * WORD_BYTES, align=align)

    def array(self, name: str, n_words: int, *, align: int = SUBPAGE_BYTES) -> SharedArray:
        """Allocate and wrap a word array."""
        return SharedArray(name, self.alloc_words(n_words, align=align), n_words)

    def page_array(self, name: str, n_words: int) -> SharedArray:
        """A word array aligned to a 16 KB page (used by the latency
        experiments to control page-allocation behaviour)."""
        return self.array(name, n_words, align=PAGE_BYTES)

    # Convenience passthroughs -----------------------------------------

    def peek(self, addr: int) -> Any:
        """Read a word's value outside the simulation (no cost)."""
        return self.machine.protocol.peek(addr)

    def poke(self, addr: int, value: Any) -> None:
        """Set a word's value outside the simulation (no cost, no
        coherence traffic — initialization only)."""
        self.machine.protocol.poke(addr, value)


def run_threads(
    machine: KsrMachine,
    bodies: Sequence[Callable[[int], Generator[Op, Any, Any]]] | Sequence[Generator[Op, Any, Any]],
    *,
    name: str = "thread",
) -> list[Process]:
    """Spawn one thread per cell (thread *i* on cell *i*) and run.

    ``bodies`` is either a sequence of generators, or a sequence of
    callables taking the thread index and returning a generator.
    Returns the finished processes.
    """
    processes = []
    for i, body in enumerate(bodies):
        gen = body(i) if callable(body) else body
        processes.append(machine.spawn(f"{name}-{i}", gen, cell_id=i))
    machine.run()
    return processes
