"""Scalability metrics used throughout the paper's evaluation."""

from repro.metrics.speedup import (
    speedup,
    efficiency,
    karp_flatt_serial_fraction,
    ScalingPoint,
    ScalingTable,
    is_superunitary_step,
)

__all__ = [
    "speedup",
    "efficiency",
    "karp_flatt_serial_fraction",
    "ScalingPoint",
    "ScalingTable",
    "is_superunitary_step",
]
