"""Speedup, efficiency and the Karp-Flatt measured serial fraction.

The paper reports, for each kernel (Tables 1 and 2):

* speedup      ``S(p) = T(1) / T(p)``
* efficiency   ``E(p) = S(p) / p``
* serial fraction — the *experimentally determined serial fraction* of
  Karp & Flatt, "Measuring parallel processor performance", CACM 33(5):

      f(p) = (1/S(p) - 1/p) / (1 - 1/p)

  A serial fraction that *decreases* with p signals superunitary
  (cache-aided) speedup, as the paper observes for CG between 4 and 16
  processors; one that *grows* signals an algorithmic or architectural
  bottleneck, as for IS beyond 16 processors.

Superunitary speedup follows Helmbold & McDowell's definition: a step
from ``p`` to ``q > p`` processors is superunitary when the speedup
grows by more than the processor ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError

__all__ = [
    "speedup",
    "efficiency",
    "karp_flatt_serial_fraction",
    "is_superunitary_step",
    "ScalingPoint",
    "ScalingTable",
]


def speedup(t1: float, tp: float) -> float:
    """``T(1) / T(p)``; both times must be positive."""
    if t1 <= 0 or tp <= 0:
        raise ConfigError("execution times must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """``S(p) / p``."""
    if p < 1:
        raise ConfigError("processor count must be >= 1")
    return speedup(t1, tp) / p


def karp_flatt_serial_fraction(t1: float, tp: float, p: int) -> float:
    """The experimentally determined serial fraction f(p).

    Undefined at ``p == 1`` (the paper prints a dash there); this
    function requires ``p >= 2``.
    """
    if p < 2:
        raise ConfigError("serial fraction needs p >= 2")
    s = speedup(t1, tp)
    return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)


def is_superunitary_step(sp_low: float, p_low: int, sp_high: float, p_high: int) -> bool:
    """Whether speedup grew faster than processor count between two
    measurements (Helmbold-McDowell superunitary behaviour)."""
    if p_high <= p_low:
        raise ConfigError("processor counts must increase")
    if sp_low <= 0:
        raise ConfigError("speedups must be positive")
    return sp_high / sp_low > p_high / p_low


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a Table-1-style scaling table."""

    processors: int
    time_s: float
    speedup: float
    efficiency: float
    serial_fraction: float | None  # None at p == 1 (the paper's dash)

    def row(self) -> list:
        """Values in the paper's column order."""
        return [
            self.processors,
            self.time_s,
            self.speedup,
            "-" if self.efficiency is None else self.efficiency,
            "-" if self.serial_fraction is None else self.serial_fraction,
        ]


class ScalingTable:
    """Accumulates (p, time) measurements into paper-style rows."""

    def __init__(self) -> None:
        self._points: list[tuple[int, float]] = []

    def add(self, processors: int, time_s: float) -> None:
        """Record a measurement; p values must be added increasing."""
        if processors < 1 or time_s <= 0:
            raise ConfigError("need p >= 1 and positive time")
        if self._points and processors <= self._points[-1][0]:
            raise ConfigError("add measurements in increasing processor order")
        self._points.append((processors, time_s))

    @property
    def baseline_time(self) -> float:
        """T(1); requires the first measurement to be at p == 1."""
        if not self._points or self._points[0][0] != 1:
            raise ConfigError("no single-processor baseline recorded")
        return self._points[0][1]

    def points(self) -> list[ScalingPoint]:
        """The derived table rows."""
        t1 = self.baseline_time
        rows = []
        for p, tp in self._points:
            rows.append(
                ScalingPoint(
                    processors=p,
                    time_s=tp,
                    speedup=speedup(t1, tp),
                    efficiency=efficiency(t1, tp, p) if p > 1 else 1.0,
                    serial_fraction=(
                        karp_flatt_serial_fraction(t1, tp, p) if p > 1 else None
                    ),
                )
            )
        return rows

    def superunitary_steps(self) -> list[tuple[int, int]]:
        """(p_low, p_high) pairs of consecutive measurements whose
        speedup grew superunitarily."""
        pts = self.points()
        out = []
        for a, b in zip(pts, pts[1:]):
            if is_superunitary_step(a.speedup, a.processors, b.speedup, b.processors):
                out.append((a.processors, b.processors))
        return out

    @staticmethod
    def from_pairs(pairs: Sequence[tuple[int, float]]) -> "ScalingTable":
        """Build from an iterable of (p, time) pairs."""
        table = ScalingTable()
        for p, t in pairs:
            table.add(p, t)
        return table
