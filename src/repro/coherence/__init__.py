"""Invalidation-based, sequentially consistent coherence protocol.

The unit of coherence is the 128-byte subpage.  Copies live in local
caches in one of four states (invalid place-holder / shared / exclusive
/ atomic); there is no home memory (COMA).  The protocol implements:

* read sharing with responder selection (same-ring copies preferred),
* write invalidation (one ring circuit invalidates every sharer),
* per-subpage serialization of ownership transfers — the effect that
  makes hot-spot algorithms (the counter barrier) collapse,
* read-snarfing: concurrent read misses on the same subpage are
  combined into one ring transaction whose response revalidates every
  place-holder it passes,
* the special instructions ``get_subpage``/``release_subpage`` (atomic
  subpage locking with non-FCFS, ring-order grant and hardware-style
  retries that consume ring bandwidth), ``prefetch`` (non-blocking
  fill) and ``poststore`` (producer-push update whose receivers end up
  in shared state).
"""

from repro.coherence.states import SubpageState, legal_transition
from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.snarf import ReadCombiner
from repro.coherence.ops import OutstandingFills
from repro.coherence.protocol import CoherenceProtocol, Watcher

# NOTE: repro.coherence.litmus is intentionally NOT re-exported here:
# it drives whole machines and therefore sits above this layer
# (importing it here would be circular).  Use
# ``from repro.coherence.litmus import run_sb`` etc. directly.

__all__ = [
    "SubpageState",
    "legal_transition",
    "Directory",
    "DirectoryEntry",
    "ReadCombiner",
    "OutstandingFills",
    "CoherenceProtocol",
    "Watcher",
]
