"""The coherence protocol coordinator.

This is where the KSR's memory behaviour is decided: who responds to a
miss, what gets invalidated, how concurrent traffic to one subpage
serializes, how ``get_subpage`` contention resolves, and how spinning
threads are woken by writes and poststores.

Division of labour with :class:`repro.machine.cell.Cell`: the cell
owns the *local* cost model (sub-cache and local-cache hit charges,
allocation penalties) and drives thread generators; the protocol owns
everything *global* (directory, ring transactions, blocking, wakeups).
All protocol entry points take a continuation ``cont(done_time)`` that
is either invoked synchronously (resolution computable now) or later
through the engine (the requester was blocked on an atomic subpage).

Timing conventions
------------------
* Ownership-changing transactions on one subpage serialize: each is
  gated on, and then advances, the subpage's ``busy-until`` horizon.
  This is the paper's "since these accesses are for the same location
  they get serialized on the ring" — the downfall of the counter
  barrier.
* Shared reads of one subpage combine (read-snarfing): one slot is
  occupied, late arrivals ride the same packet.
* ``get_subpage`` while another cell holds the subpage atomic retries
  over the ring at circuit intervals, consuming real slot bandwidth —
  the grant on release follows *ring order*, not FCFS, exactly as the
  hardware is documented to behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.coherence.directory import Directory
from repro.coherence.ops import OutstandingFills
from repro.coherence.snarf import ReadCombiner
from repro.errors import ProtocolError
from repro.machine.config import MachineConfig
from repro.memory.address import subpage_of, word_of
from repro.memory.local_cache import SubpageState
from repro.ring.hierarchy import RingHierarchy
from repro.ring.slotted_ring import TransactionOutcome
from repro.sim.engine import Engine, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.cell import Cell

__all__ = ["CoherenceProtocol", "Watcher"]

Cont = Callable[[float], None]


@dataclass
class Watcher:
    """A thread parked on ``WaitUntil(addr, predicate)``."""

    cell_id: int
    addr: int
    predicate: Callable[[Any], bool]
    cont: Cont
    registered_at: float


@dataclass
class _AtomicWaiter:
    """A ``get_subpage`` (or plain access) blocked on an atomic subpage."""

    cell_id: int
    retry: Callable[[float], None]
    is_gsp: bool
    enqueued_at: float
    #: The pending hardware retry: an engine :class:`Event`, or a
    #: :class:`repro.sim.batch.MacroChain` when the macro-event layer
    #: carries this waiter's retry loop.  Both expose ``cancel()``.
    retry_event: Optional[Any] = None


@dataclass
class _Refetch:
    """A group re-read in flight after spinners were invalidated."""

    completes_at: float
    dirty: bool = False


class CoherenceProtocol:
    """Global protocol state for one machine."""

    #: Interval between hardware get_subpage retries, in circuits.
    GSP_RETRY_CIRCUITS = 1.0
    #: Small fixed cost of re-running a blocked access after a release.
    UNBLOCK_PICKUP_CYCLES = 4.0

    def __init__(self, config: MachineConfig, engine: Engine, hierarchy: RingHierarchy):
        self.config = config
        self.engine = engine
        self.hierarchy = hierarchy
        self.cells: list["Cell"] = []
        self.values: dict[int, Any] = {}
        self.directory = Directory()
        self.combiner = ReadCombiner()
        self.fills = OutstandingFills()
        self._busy_until: dict[int, float] = {}
        self._watchers: dict[int, list[Watcher]] = {}
        self._atomic_waiters: dict[int, list[_AtomicWaiter]] = {}
        self._refetch: dict[int, _Refetch] = {}
        self.n_cold_creates = 0
        self.n_wakeups = 0
        #: Opt-in observability probe (see :mod:`repro.obs`): an object
        #: with ``on_invalidations(now, n_losers)``.  ``None`` — the
        #: default — costs one branch per invalidation round.
        self.probe: Optional[Any] = None
        #: Set by :meth:`repro.faults.FaultInjector.attach` when the
        #: plan can actually produce faults; gates the per-transaction
        #: fault bookkeeping so clean machines pay one branch per
        #: transaction and touch no fault counters.
        self.fault_accounting = False
        #: The macro-event layer (:class:`repro.ring.batch.BatchAdvancer`),
        #: wired by :class:`~repro.machine.ksr.KsrMachine` when
        #: ``MachineConfig.enable_batching`` is set; ``None`` keeps the
        #: per-event retry closures.
        self.batch_advancer: Optional[Any] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_cell(self, cell: "Cell") -> None:
        """Attach a cell (called by the machine during assembly)."""
        if cell.cell_id != len(self.cells):
            raise ProtocolError("cells must be registered in id order")
        self.cells.append(cell)

    def _charge_faults(self, perfmon: Any, timing: Any) -> None:
        """Book a transaction's fault outcome on the requester's monitor.

        Only called behind :attr:`fault_accounting`, so fault-free runs
        never execute it — keeping their perfmon byte-identical to runs
        predating the fault layer.
        """
        if timing.retries:
            perfmon.ring_retries += timing.retries
        if timing.outcome is TransactionOutcome.TIMED_OUT:
            perfmon.ring_timeouts += 1
        if timing.bypass_hops:
            perfmon.ring_bypass_hops += timing.bypass_hops

    def _cell(self, cell_id: int) -> "Cell":
        return self.cells[cell_id]

    def _same_ring_cells(self, cell_id: int) -> range:
        ring = self.config.ring_of(cell_id)
        lo = ring * self.config.cells_per_ring
        return range(lo, min(lo + self.config.cells_per_ring, self.config.n_cells))

    # ------------------------------------------------------------------
    # Data values (the simulator's authoritative word store)
    # ------------------------------------------------------------------

    def peek(self, addr: int) -> Any:
        """Current value of the 64-bit word at ``addr`` (0 if unwritten)."""
        return self.values.get(word_of(addr), 0)

    def poke(self, addr: int, value: Any) -> None:
        """Set the word at ``addr`` (timing handled by the caller)."""
        self.values[word_of(addr)] = value

    # ------------------------------------------------------------------
    # Subpage serialization gate
    # ------------------------------------------------------------------

    def _gate(self, subpage_id: int, now: float) -> float:
        """Earliest time an ownership op on the subpage may start."""
        return max(now, self._busy_until.get(subpage_id, 0.0))

    def _advance_gate(self, subpage_id: int, until: float) -> None:
        if until > self._busy_until.get(subpage_id, 0.0):
            self._busy_until[subpage_id] = until

    # ------------------------------------------------------------------
    # Shared (read) access
    # ------------------------------------------------------------------

    def acquire_shared(self, cell_id: int, subpage_id: int, now: float, cont: Cont) -> None:
        """Give ``cell_id`` a readable copy; ``cont(done_time)``.

        Callers invoke this only on a local-cache miss or an INVALID
        place-holder; the valid-copy fast path is the cell's business.
        """
        entry = self.directory.entry(subpage_id)
        if entry.atomic and entry.owner != cell_id:
            self._block_on_atomic(cell_id, subpage_id, now, cont, shared=True)
            return
        cell = self._cell(cell_id)
        # An in-flight prefetch satisfies the demand access when it lands.
        pending = self.fills.pending_completion(cell_id, subpage_id, now)
        if pending is not None:
            cont(pending)
            return
        if not entry.has_valid_copy and not entry.created:
            # Cold access: COMA first touch allocates locally, no ring.
            self._fill(cell_id, subpage_id, SubpageState.EXCLUSIVE, demand=True)
            self.n_cold_creates += 1
            cont(now)
            return
        # Join a read of the same subpage already circulating (snarf).
        joined = (
            self.combiner.try_join(subpage_id, now)
            if self.config.enable_snarfing
            else None
        )
        if joined is not None:
            self._finish_shared_fill(cell_id, subpage_id, demote_owner=True, demand=True)
            cont(joined)
            return
        # Data exists; a valid copy (or, if everything was evicted, the
        # recalled data) is fetched over the ring.
        responder = self.directory.responder_for(
            subpage_id, cell_id, self._same_ring_cells(cell_id)
        )
        start = self._gate(subpage_id, now)
        timing = self.hierarchy.transact(start, cell_id, responder, subpage_id)
        cell.perfmon.ring_transactions += 1
        cell.perfmon.ring_cycles += timing.completed_at - now
        cell.perfmon.ring_wait_cycles += timing.wait_cycles + (start - now)
        if timing.crossed_rings:
            cell.perfmon.inter_ring_transactions += 1
        if self.fault_accounting:
            self._charge_faults(cell.perfmon, timing)
        self.combiner.begin(subpage_id, start, timing.completed_at)
        self._finish_shared_fill(cell_id, subpage_id, demote_owner=True, demand=True)
        self._snarf_placeholders(subpage_id, timing.completed_at)
        cont(timing.completed_at)

    def _finish_shared_fill(
        self, cell_id: int, subpage_id: int, *, demote_owner: bool, demand: bool = False
    ) -> None:
        entry = self.directory.entry(subpage_id)
        if demote_owner and entry.owner is not None and entry.owner != cell_id:
            owner_cell = self._cell(entry.owner)
            owner_cell.local_cache.set_state(subpage_id, SubpageState.SHARED)
            self.directory.demote_owner(subpage_id)
        self._fill(cell_id, subpage_id, SubpageState.SHARED, demand=demand)

    def _snarf_placeholders(self, subpage_id: int, at: float) -> None:
        """Revalidate every INVALID place-holder as the response passes.

        No-op when an exclusive owner exists: a packet still circulating
        after a newer write got the subpage exclusive carries stale data
        and must not revive anybody.
        """
        if not self.config.enable_snarfing:
            return
        entry = self.directory.entry(subpage_id)
        if entry.owner is not None:
            return
        for holder in sorted(entry.placeholders):
            holder_cell = self._cell(holder)
            if holder_cell.local_cache.snarf(subpage_id):
                holder_cell.perfmon.snarfs += 1
        revived = set(entry.placeholders)
        entry.sharers |= revived
        entry.placeholders.clear()
        entry.check()

    # ------------------------------------------------------------------
    # Exclusive (write / get_subpage) access
    # ------------------------------------------------------------------

    def acquire_exclusive(
        self,
        cell_id: int,
        subpage_id: int,
        now: float,
        cont: Cont,
        *,
        atomic: bool = False,
    ) -> None:
        """Make ``cell_id`` the exclusive (optionally atomic) owner."""
        entry = self.directory.entry(subpage_id)
        if entry.atomic and entry.owner != cell_id:
            self._block_on_atomic(
                cell_id, subpage_id, now, cont, shared=False, want_atomic=atomic
            )
            return
        cell = self._cell(cell_id)
        if entry.owner == cell_id:
            if atomic and not entry.atomic:
                self.directory.set_atomic(subpage_id, cell_id, True)
                cell.local_cache.set_state(subpage_id, SubpageState.ATOMIC)
            cont(now)
            return
        if not entry.has_valid_copy and not entry.placeholders and not entry.created:
            # Cold first touch straight to exclusive ownership.
            self._fill(
                cell_id,
                subpage_id,
                SubpageState.ATOMIC if atomic else SubpageState.EXCLUSIVE,
                atomic=atomic,
                demand=True,
            )
            self.n_cold_creates += 1
            cont(now)
            return
        start = self._gate(subpage_id, now)
        timing = self.hierarchy.transact(
            start, cell_id, self._responder_or_none(subpage_id, cell_id), subpage_id
        )
        self._advance_gate(subpage_id, timing.completed_at)
        cell.perfmon.ring_transactions += 1
        cell.perfmon.ring_cycles += timing.completed_at - now
        cell.perfmon.ring_wait_cycles += timing.wait_cycles + (start - now)
        if timing.crossed_rings:
            cell.perfmon.inter_ring_transactions += 1
        if self.fault_accounting:
            self._charge_faults(cell.perfmon, timing)
        self._invalidate_others(subpage_id, cell_id)
        self._fill(
            cell_id,
            subpage_id,
            SubpageState.ATOMIC if atomic else SubpageState.EXCLUSIVE,
            atomic=atomic,
            demand=True,
        )
        cont(timing.completed_at)

    def _responder_or_none(self, subpage_id: int, cell_id: int) -> Optional[int]:
        return self.directory.responder_for(
            subpage_id, cell_id, self._same_ring_cells(cell_id)
        )

    def _invalidate_others(self, subpage_id: int, keep_cell: int) -> None:
        losers = self.directory.invalidate_others(subpage_id, keep_cell)
        for loser in losers:
            loser_cell = self._cell(loser)
            loser_cell.local_cache.invalidate(subpage_id)
            loser_cell.subcache.drop_subpage(subpage_id)
            loser_cell.perfmon.invalidations_received += 1
        if losers:
            self._cell(keep_cell).perfmon.invalidations_sent += len(losers)
            if self.probe is not None:
                self.probe.on_invalidations(self.engine.now, len(losers))

    def _fill(
        self,
        cell_id: int,
        subpage_id: int,
        state: SubpageState,
        *,
        atomic: bool = False,
        demand: bool = False,
    ) -> None:
        """Install a copy at ``cell_id`` and mirror it in the directory.

        ``demand`` marks fills triggered by the cell's own access, so
        the cell can charge the 16 KB page-allocation penalty to that
        access (snarfs and prefetch landings are free rides).
        """
        cell = self._cell(cell_id)
        existing = cell.local_cache.state_of(subpage_id)
        if existing is not None and existing.valid and state is SubpageState.SHARED:
            # already valid (e.g. combiner join raced a snarf): keep it
            pass
        else:
            fill = cell.local_cache.fill(subpage_id, state)
            if fill.page_allocated:
                cell.perfmon.local_cache_page_allocs += 1
                if demand:
                    cell.pending_page_alloc = True
            for evicted in fill.evicted_subpages:
                if evicted == subpage_id:
                    continue
                ev_entry = self.directory.entry(evicted)
                if ev_entry.atomic and ev_entry.owner == cell_id:
                    raise ProtocolError(
                        f"random replacement evicted atomic subpage {evicted}"
                    )
                self.directory.drop_copy(evicted, cell_id)
                cell.subcache.drop_subpage(evicted)
        if state is SubpageState.SHARED:
            self.directory.record_fill_shared(subpage_id, cell_id)
        else:
            self.directory.record_fill_exclusive(subpage_id, cell_id, atomic=atomic)

    # ------------------------------------------------------------------
    # get_subpage / release_subpage
    # ------------------------------------------------------------------

    def get_subpage(self, cell_id: int, addr: int, now: float, cont: Cont) -> None:
        """Acquire the atomic lock on ``addr``'s subpage."""
        subpage_id = subpage_of(addr)
        cell = self._cell(cell_id)
        cell.perfmon.get_subpage_attempts += 1
        self.acquire_exclusive(cell_id, subpage_id, now, cont, atomic=True)

    def release_subpage(self, cell_id: int, addr: int, now: float) -> None:
        """Release the atomic lock; hand off to ring-ordered waiters."""
        subpage_id = subpage_of(addr)
        entry = self.directory.entry(subpage_id)
        if entry.owner != cell_id or not entry.atomic:
            raise ProtocolError(
                f"cell {cell_id} releasing subpage {subpage_id} it does not hold atomic"
            )
        self.directory.set_atomic(subpage_id, cell_id, False)
        self._cell(cell_id).local_cache.set_state(subpage_id, SubpageState.EXCLUSIVE)
        self._drain_atomic_waiters(subpage_id, cell_id, now)

    def _block_on_atomic(
        self,
        cell_id: int,
        subpage_id: int,
        now: float,
        cont: Cont,
        *,
        shared: bool,
        want_atomic: bool = False,
    ) -> None:
        """Park an access behind the current atomic holder, with
        hardware-style periodic ring retries burning slot bandwidth."""
        cell = self._cell(cell_id)

        def retry(at: float) -> None:
            if shared:
                self.acquire_shared(cell_id, subpage_id, at, cont)
            else:
                self.acquire_exclusive(cell_id, subpage_id, at, cont, atomic=want_atomic)

        waiter = _AtomicWaiter(cell_id, retry, is_gsp=want_atomic, enqueued_at=now)
        self._atomic_waiters.setdefault(subpage_id, []).append(waiter)
        interval = self.config.ring.circuit_cycles * self.GSP_RETRY_CIRCUITS
        # Macro-event path (repro.ring.batch): the self-clocked retry
        # loop becomes a batchable chain instead of an event-per-retry
        # closure.  Fault accounting forces per-event retries — the
        # injector seams charge per-retry counters a closed-form advance
        # does not replicate.
        advancer = self.batch_advancer
        if (
            advancer is not None
            and not self.fault_accounting
            and advancer.gsp_chain_allowed()
        ):
            chain = advancer.start_gsp_chain(
                cell.perfmon, cell_id, subpage_id, interval
            )
            if chain is not None:
                waiter.retry_event = chain
                return
        # Hot path under lock contention: most events of a contended run
        # are these retries, so bind everything the closure touches once.
        perfmon = cell.perfmon
        engine = self.engine
        schedule = engine.schedule
        transact = self.hierarchy.transact

        def hardware_retry() -> None:
            # The request circulates, is refused, and will try again.
            # A cell has exactly one request outstanding, so the next
            # retry is self-clocked by this packet's own completion —
            # under saturation retries space out to the ring's actual
            # service rate instead of piling bookings into the future.
            perfmon.get_subpage_retries += 1
            at = engine.now
            timing = transact(at, cell_id, None, subpage_id)
            perfmon.ring_transactions += 1
            perfmon.ring_cycles += timing.completed_at - at
            if self.fault_accounting:
                self._charge_faults(perfmon, timing)
            next_delay = max(interval, timing.completed_at - at)
            waiter.retry_event = schedule(next_delay, hardware_retry)

        waiter.retry_event = schedule(interval, hardware_retry)

    def _drain_atomic_waiters(self, subpage_id: int, releaser: int, now: float) -> None:
        waiters = self._atomic_waiters.get(subpage_id)
        if not waiters:
            return
        # Ring order after the releasing cell — explicitly not FCFS.
        def ring_distance(w: _AtomicWaiter) -> tuple[int, float]:
            return ((w.cell_id - releaser) % self.config.n_cells, w.enqueued_at)

        waiters.sort(key=ring_distance)
        first = waiters.pop(0)
        rest = list(waiters)
        waiters.clear()
        for w in (first, *rest):
            if w.retry_event is not None:
                w.retry_event.cancel()
        # The hardware waiter *polls*: it observes the release only when
        # its next retry request circulates past the releaser — on
        # average about half a retry interval after the release.  (This
        # is the asymmetry against software queue locks, whose holders
        # push the hand-off to the spinning waiter via write + snarf.)
        pickup = self.UNBLOCK_PICKUP_CYCLES + 0.5 * self.config.ring.circuit_cycles
        self.engine.schedule(pickup, first.retry, now + pickup)
        stagger = self.UNBLOCK_PICKUP_CYCLES * 2
        for i, w in enumerate(rest):
            at = now + pickup + stagger * (i + 1)
            self.engine.schedule(at - now, w.retry, at)

    # ------------------------------------------------------------------
    # Writes and spinner notification
    # ------------------------------------------------------------------

    def notify_write(self, subpage_id: int, writer: int, done: float) -> None:
        """Called by the cell when a coherent write to a watched subpage
        completes; invalidated spinners trigger one combined re-read."""
        watchers = self._watchers.get(subpage_id)
        if not watchers:
            return
        inflight = self._refetch.get(subpage_id)
        if inflight is not None and inflight.completes_at > done:
            inflight.dirty = True
            return
        self._start_group_refetch(subpage_id, writer, done)

    def _start_group_refetch(self, subpage_id: int, writer: int, at: float) -> None:
        watchers = self._watchers.get(subpage_id)
        if not watchers:
            return
        # One spinner's re-read; everyone else snarfs the response.
        reader = watchers[0].cell_id
        start = self._gate(subpage_id, at)
        timing = self.hierarchy.transact(start, reader, writer, subpage_id)
        reader_cell = self._cell(reader)
        reader_cell.perfmon.ring_transactions += 1
        reader_cell.perfmon.ring_cycles += timing.total_cycles
        if self.fault_accounting:
            self._charge_faults(reader_cell.perfmon, timing)
        self._refetch[subpage_id] = _Refetch(completes_at=timing.completed_at)
        self.engine.schedule_at(
            timing.completed_at, self._complete_group_refetch, subpage_id, writer
        )

    def _complete_group_refetch(self, subpage_id: int, writer: int) -> None:
        now = self.engine.now
        entry = self.directory.entry(subpage_id)
        if entry.atomic:
            # Cannot revalidate while someone holds the subpage atomic;
            # retry after the gate clears.
            self._refetch.pop(subpage_id, None)
            self.engine.schedule(
                self.config.ring.circuit_cycles,
                lambda: self.notify_write(subpage_id, writer, self.engine.now),
            )
            return
        if entry.has_valid_copy:
            if entry.owner is not None and entry.owner != writer:
                writer = entry.owner
            if entry.owner is not None:
                self._cell(entry.owner).local_cache.set_state(
                    subpage_id, SubpageState.SHARED
                )
                self.directory.demote_owner(subpage_id)
        self._snarf_placeholders(subpage_id, now)
        refetch = self._refetch.pop(subpage_id, None)
        self._evaluate_watchers(subpage_id, now, base_cell=writer)
        if refetch is not None and refetch.dirty and subpage_id in self._watchers:
            self._start_group_refetch(subpage_id, writer, now)

    def notify_poststore(self, subpage_id: int, writer: int, arrival: float) -> None:
        """Poststore packet completed: place-holders were refreshed;
        wake satisfied spinners without any re-read."""
        self._evaluate_watchers(subpage_id, arrival, base_cell=writer)

    def _evaluate_watchers(self, subpage_id: int, at: float, *, base_cell: int) -> None:
        watchers = self._watchers.get(subpage_id)
        if not watchers:
            return
        still_waiting: list[Watcher] = []
        spin = self.config.latency.spin_iteration_cycles
        hop = self.config.ring.hop_cycles
        n_woken = 0
        for w in watchers:
            value = self.peek(w.addr)
            if w.predicate(value):
                skew = ((w.cell_id - base_cell) % self.config.cells_per_ring) * hop * 0.25
                if not self.config.enable_snarfing:
                    # without read combining every spinner's re-read is
                    # its own serialized ring transaction
                    skew += n_woken * self.config.ring.remote_latency_cycles
                self.n_wakeups += 1
                n_woken += 1
                self._cell(w.cell_id).perfmon.spin_wakeups += 1
                w.cont(at + skew + spin)
            else:
                still_waiting.append(w)
        if still_waiting:
            self._watchers[subpage_id] = still_waiting
        else:
            self._watchers.pop(subpage_id, None)

    # ------------------------------------------------------------------
    # WaitUntil
    # ------------------------------------------------------------------

    def wait_until(
        self,
        cell_id: int,
        addr: int,
        predicate: Callable[[Any], bool],
        now: float,
        cont: Cont,
    ) -> None:
        """Park until ``predicate(value_at(addr))`` holds (see
        :class:`repro.sim.process.WaitUntil` for the semantics)."""
        subpage_id = subpage_of(addr)
        spin = self.config.latency.spin_iteration_cycles
        cell = self._cell(cell_id)
        value = self.peek(addr)
        if cell.local_cache.is_valid(subpage_id):
            if predicate(value):
                cont(now + spin)
                return
            self._register_watcher(cell_id, addr, predicate, cont, now)
            return
        # No valid local copy: the first spin iteration is a read miss.
        def after_fill(done: float) -> None:
            current = self.peek(addr)
            if predicate(current):
                cont(done + spin)
            else:
                self._register_watcher(cell_id, addr, predicate, cont, done)

        self.acquire_shared(cell_id, subpage_id, now, after_fill)

    def _register_watcher(
        self,
        cell_id: int,
        addr: int,
        predicate: Callable[[Any], bool],
        cont: Cont,
        now: float,
    ) -> None:
        watcher = Watcher(cell_id, addr, predicate, cont, now)
        self._watchers.setdefault(subpage_of(addr), []).append(watcher)

    # ------------------------------------------------------------------
    # Prefetch and poststore
    # ------------------------------------------------------------------

    def prefetch(self, cell_id: int, addr: int, now: float) -> None:
        """Start an asynchronous shared fill of ``addr``'s subpage."""
        subpage_id = subpage_of(addr)
        cell = self._cell(cell_id)
        cell.perfmon.prefetches += 1
        if cell.local_cache.is_valid(subpage_id):
            return
        entry = self.directory.entry(subpage_id)
        if entry.atomic and entry.owner != cell_id:
            return  # hardware drops prefetches that lose the race
        if not entry.has_valid_copy:
            if not entry.created:
                return  # nothing to fetch yet
            self._fill(cell_id, subpage_id, SubpageState.SHARED)
            return
        joined = self.combiner.try_join(subpage_id, now)
        if joined is not None:
            self.fills.issue(cell_id, subpage_id, joined)
            self.engine.schedule_at(joined, self._land_prefetch, cell_id, subpage_id)
            return
        responder = self._responder_or_none(subpage_id, cell_id)
        start = self._gate(subpage_id, now)
        timing = self.hierarchy.transact(start, cell_id, responder, subpage_id)
        cell.perfmon.ring_transactions += 1
        cell.perfmon.ring_cycles += timing.total_cycles
        if self.fault_accounting:
            self._charge_faults(cell.perfmon, timing)
        self.combiner.begin(subpage_id, start, timing.completed_at)
        self.fills.issue(cell_id, subpage_id, timing.completed_at)
        self.engine.schedule_at(
            timing.completed_at, self._land_prefetch, cell_id, subpage_id
        )

    def _land_prefetch(self, cell_id: int, subpage_id: int) -> None:
        self.fills.complete(cell_id, subpage_id)
        entry = self.directory.entry(subpage_id)
        if entry.atomic and entry.owner != cell_id:
            return  # raced with a get_subpage; fill is dropped
        cell = self._cell(cell_id)
        if cell.local_cache.is_valid(subpage_id):
            return
        self._finish_shared_fill(cell_id, subpage_id, demote_owner=True)

    def poststore(self, cell_id: int, addr: int, now: float, cont: Cont) -> None:
        """Broadcast the subpage; issuer continues after the local-cache
        writeback, receivers get SHARED copies, the issuer is demoted to
        SHARED too (the semantics that hurt SP)."""
        subpage_id = subpage_of(addr)
        cell = self._cell(cell_id)
        cell.perfmon.poststores += 1
        entry = self.directory.entry(subpage_id)
        issue_done = now + self.config.latency.poststore_issue_cycles

        def broadcast(start_at: float) -> None:
            start = self._gate(subpage_id, start_at)
            timing = self.hierarchy.transact(start, cell_id, None, subpage_id)
            self._advance_gate(subpage_id, timing.completed_at)
            cell.perfmon.ring_transactions += 1
            cell.perfmon.ring_cycles += timing.total_cycles
            if self.fault_accounting:
                self._charge_faults(cell.perfmon, timing)
            self.engine.schedule_at(
                timing.completed_at, self._complete_poststore, cell_id, subpage_id
            )

        if entry.owner == cell_id and not entry.atomic:
            broadcast(issue_done)
            cont(issue_done)
        elif entry.owner == cell_id and entry.atomic:
            # poststore of an atomic subpage: broadcast after release
            # semantics are undefined on the real machine; we broadcast
            # immediately but keep the atomic lock.
            broadcast(issue_done)
            cont(issue_done)
        else:
            # Not the owner: obtain ownership first (a write must have
            # preceded a sensible poststore anyway).
            def owned(done: float) -> None:
                broadcast(done)
                cont(done + self.config.latency.poststore_issue_cycles)

            self.acquire_exclusive(cell_id, subpage_id, now, owned)

    def _complete_poststore(self, cell_id: int, subpage_id: int) -> None:
        now = self.engine.now
        entry = self.directory.entry(subpage_id)
        if entry.owner is not None and entry.owner != cell_id:
            # A newer write took the subpage exclusive while this
            # broadcast circulated: the packet's data is stale.  The
            # newer write's own notification will wake any spinners.
            return
        if entry.owner == cell_id and not entry.atomic:
            self._cell(cell_id).local_cache.set_state(subpage_id, SubpageState.SHARED)
            self.directory.demote_owner(subpage_id)
        self._snarf_placeholders(subpage_id, now)
        self.notify_poststore(subpage_id, cell_id, now)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def blocked_description(self) -> list[str]:
        """Human-readable list of everything still parked (deadlock
        reporting)."""
        out: list[str] = []
        for sp, ws in self._watchers.items():
            for w in ws:
                out.append(
                    f"cell {w.cell_id} spinning on word 0x{w.addr:x} "
                    f"(subpage {sp}) since t={w.registered_at:.0f}"
                )
        for sp, waiters in self._atomic_waiters.items():
            for w in waiters:
                out.append(
                    f"cell {w.cell_id} blocked on atomic subpage {sp} "
                    f"since t={w.enqueued_at:.0f}"
                )
        return out
