"""Subpage coherence states and their legal transitions.

:class:`SubpageState` itself lives with the local cache (the state is
physically a tag in the cache line); this module adds the protocol-side
transition relation so invariant violations fail fast in tests.
"""

from __future__ import annotations

from repro.memory.local_cache import SubpageState

__all__ = ["SubpageState", "legal_transition", "LEGAL_TRANSITIONS"]

#: (from, to) pairs a single cell's copy may legally undergo.
LEGAL_TRANSITIONS: frozenset[tuple[SubpageState, SubpageState]] = frozenset(
    {
        # read miss fill / snarf
        (SubpageState.INVALID, SubpageState.SHARED),
        # write miss fill / upgrade on invalidated copy
        (SubpageState.INVALID, SubpageState.EXCLUSIVE),
        # upgrade for write
        (SubpageState.SHARED, SubpageState.EXCLUSIVE),
        # another cell read our dirty copy
        (SubpageState.EXCLUSIVE, SubpageState.SHARED),
        # another cell wrote: we keep a place-holder
        (SubpageState.SHARED, SubpageState.INVALID),
        (SubpageState.EXCLUSIVE, SubpageState.INVALID),
        # get_subpage / release_subpage
        (SubpageState.EXCLUSIVE, SubpageState.ATOMIC),
        (SubpageState.ATOMIC, SubpageState.EXCLUSIVE),
        # poststore demotes the issuer to shared
        (SubpageState.ATOMIC, SubpageState.SHARED),
    }
)


def legal_transition(old: SubpageState | None, new: SubpageState) -> bool:
    """Whether one copy may go from ``old`` to ``new``.

    ``old is None`` means the copy is being created (a fill), which may
    produce any valid state.
    """
    if old is None:
        return new is not SubpageState.INVALID or False
    if old is new:
        return True
    return (old, new) in LEGAL_TRANSITIONS
