"""Support machinery for the KSR special instructions.

``prefetch`` brings a subpage into the local cache without blocking the
issuing thread; a demand read arriving before the fill completes must
wait only for the remainder.  :class:`OutstandingFills` tracks those
in-flight fills per cell.
"""

from __future__ import annotations

__all__ = ["OutstandingFills"]


class OutstandingFills:
    """In-flight asynchronous subpage fills, per (cell, subpage)."""

    def __init__(self) -> None:
        self._fills: dict[tuple[int, int], float] = {}
        self.n_issued = 0
        self.n_demand_hits = 0

    def issue(self, cell_id: int, subpage_id: int, completes_at: float) -> None:
        """Record a fill that will land at ``completes_at``."""
        key = (cell_id, subpage_id)
        existing = self._fills.get(key)
        if existing is None or completes_at < existing:
            self._fills[key] = completes_at
        self.n_issued += 1

    def pending_completion(self, cell_id: int, subpage_id: int, now: float) -> float | None:
        """If a fill is still in flight at ``now``, return its landing
        time (a demand access waits for it); else ``None``."""
        key = (cell_id, subpage_id)
        completes = self._fills.get(key)
        if completes is None:
            return None
        if completes <= now:
            del self._fills[key]
            return None
        self.n_demand_hits += 1
        return completes

    def complete(self, cell_id: int, subpage_id: int) -> None:
        """Drop the record (called when the fill lands)."""
        self._fills.pop((cell_id, subpage_id), None)

    def outstanding_for(self, cell_id: int) -> list[tuple[int, float]]:
        """All in-flight fills of one cell (used by ``Fence``)."""
        return [
            (sp, t) for (cid, sp), t in self._fills.items() if cid == cell_id
        ]
