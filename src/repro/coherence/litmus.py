"""Sequential-consistency litmus tests for the coherence protocol.

"The architecture provides a sequentially consistent shared memory
model."  This module runs the classic litmus tests against the
simulated protocol and checks that only SC-permitted outcomes occur:

* **SB** (store buffering / Dekker): both threads store then load the
  other's flag; SC forbids both loads returning 0.
* **MP** (message passing): data write before flag write; an observer
  that sees the flag must see the data.
* **LB** (load buffering): loads followed by stores; SC forbids both
  loads observing the other thread's (later) store.
* **IRIW** (independent reads of independent writes): two observers
  must agree on the order of two independent writes.

Each test takes a list of per-thread *skews* (compute delays before the
sequence starts) so callers — in particular the hypothesis fuzz tests —
can explore many interleavings; on a correct protocol no skew can
produce a forbidden outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.sim.process import Compute, Read, Write

__all__ = ["LitmusOutcome", "run_sb", "run_mp", "run_lb", "run_iriw", "ALL_LITMUS"]


@dataclass(frozen=True)
class LitmusOutcome:
    """Result of one litmus execution."""

    name: str
    observed: tuple
    forbidden: bool
    description: str


def _machine(n_cells: int, seed: int) -> tuple[KsrMachine, SharedMemory]:
    config = MachineConfig.ksr1(
        n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
    )
    machine = KsrMachine(config)
    return machine, SharedMemory(machine)


def _check_skews(skews: Sequence[float], n: int) -> list[float]:
    if len(skews) != n:
        raise ConfigError(f"need exactly {n} skews")
    if any(s < 0 for s in skews):
        raise ConfigError("skews must be non-negative")
    return list(skews)


def run_sb(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Store buffering: forbidden outcome is r0 == r1 == 0."""
    skews = _check_skews(skews, 2)
    machine, mem = _machine(2, seed)
    x, y = mem.alloc_word(), mem.alloc_word()

    def t0():
        yield Compute(skews[0])
        yield Write(x, 1)
        r = yield Read(y)
        return r

    def t1():
        yield Compute(skews[1])
        yield Write(y, 1)
        r = yield Read(x)
        return r

    p0 = machine.spawn("sb0", t0(), 0)
    p1 = machine.spawn("sb1", t1(), 1)
    machine.run()
    observed = (p0.result, p1.result)
    return LitmusOutcome(
        name="SB",
        observed=observed,
        forbidden=observed == (0, 0),
        description="store buffering: (0, 0) is forbidden under SC",
    )


def run_mp(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Message passing: if the flag is seen, the data must be seen."""
    skews = _check_skews(skews, 2)
    machine, mem = _machine(2, seed)
    data, flag = mem.alloc_word(), mem.alloc_word()

    def producer():
        yield Compute(skews[0])
        yield Write(data, 42)
        yield Write(flag, 1)

    def observer():
        yield Compute(skews[1])
        f = yield Read(flag)
        d = yield Read(data)
        return (f, d)

    machine.spawn("mp-w", producer(), 0)
    p = machine.spawn("mp-r", observer(), 1)
    machine.run()
    f, d = p.result
    return LitmusOutcome(
        name="MP",
        observed=(f, d),
        forbidden=(f == 1 and d != 42),
        description="message passing: flag seen but data stale is forbidden",
    )


def run_lb(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Load buffering: forbidden outcome is r0 == r1 == 1."""
    skews = _check_skews(skews, 2)
    machine, mem = _machine(2, seed)
    x, y = mem.alloc_word(), mem.alloc_word()

    def t0():
        yield Compute(skews[0])
        r = yield Read(x)
        yield Write(y, 1)
        return r

    def t1():
        yield Compute(skews[1])
        r = yield Read(y)
        yield Write(x, 1)
        return r

    p0 = machine.spawn("lb0", t0(), 0)
    p1 = machine.spawn("lb1", t1(), 1)
    machine.run()
    observed = (p0.result, p1.result)
    return LitmusOutcome(
        name="LB",
        observed=observed,
        forbidden=observed == (1, 1),
        description="load buffering: (1, 1) is forbidden under SC",
    )


def run_iriw(skews: Sequence[float] = (0, 0, 0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Independent reads of independent writes: the two observers must
    not see the two writes in opposite orders."""
    skews = _check_skews(skews, 4)
    machine, mem = _machine(4, seed)
    x, y = mem.alloc_word(), mem.alloc_word()

    def writer(addr, skew):
        def body():
            yield Compute(skew)
            yield Write(addr, 1)

        return body()

    def observer(first, second, skew):
        def body():
            yield Compute(skew)
            a = yield Read(first)
            b = yield Read(second)
            return (a, b)

        return body()

    machine.spawn("iriw-wx", writer(x, skews[0]), 0)
    machine.spawn("iriw-wy", writer(y, skews[1]), 1)
    p2 = machine.spawn("iriw-rxy", observer(x, y, skews[2]), 2)
    p3 = machine.spawn("iriw-ryx", observer(y, x, skews[3]), 3)
    machine.run()
    rxy, ryx = p2.result, p3.result
    # forbidden: observer 2 sees x=1 then y=0 (x before y) while
    # observer 3 sees y=1 then x=0 (y before x)
    forbidden = rxy == (1, 0) and ryx == (1, 0)
    return LitmusOutcome(
        name="IRIW",
        observed=(rxy, ryx),
        forbidden=forbidden,
        description="IRIW: observers disagreeing on write order is forbidden",
    )


ALL_LITMUS = {
    "SB": run_sb,
    "MP": run_mp,
    "LB": run_lb,
    "IRIW": run_iriw,
}
