"""Sequential-consistency litmus tests for the coherence protocol.

"The architecture provides a sequentially consistent shared memory
model."  This module runs the classic litmus tests against the
simulated protocol and checks that only SC-permitted outcomes occur:

* **SB** (store buffering / Dekker): both threads store then load the
  other's flag; SC forbids both loads returning 0.
* **MP** (message passing): data write before flag write; an observer
  that sees the flag must see the data.
* **LB** (load buffering): loads followed by stores; SC forbids both
  loads observing the other thread's (later) store.
* **IRIW** (independent reads of independent writes): two observers
  must agree on the order of two independent writes.

A litmus test is *data*, not code: a :class:`LitmusTest` names the
per-thread op sequences over a handful of shared variables and the set
of forbidden observations, and :func:`run_litmus` interprets it on a
fresh machine.  Generated tests (the scenario corpus of
:mod:`repro.analysis.scenarios`) reuse the same interpreter through
:func:`run_schedule`, which executes one *global* step sequence — each
step runs to completion before the next starts — and reports the full
protocol-visible outcome (observations, directory and cache states,
memory) for differential comparison against the abstract model.

Each classic test takes a list of per-thread *skews* (compute delays
before the sequence starts) so callers — in particular the hypothesis
fuzz tests — can explore many interleavings; on a correct protocol no
skew can produce a forbidden outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.memory.address import subpage_of
from repro.sim.process import Compute, GetSubpage, Poststore, Read, ReleaseSubpage, Write

__all__ = [
    "LitmusOutcome",
    "LitmusTest",
    "ScheduleOutcome",
    "run_litmus",
    "run_schedule",
    "run_sb",
    "run_mp",
    "run_lb",
    "run_iriw",
    "SB",
    "MP",
    "LB",
    "IRIW",
    "ALL_LITMUS",
    "SCHEDULE_OPS",
]

#: One thread step: ``("compute", cycles)``, ``("read", var)``,
#: ``("write", var, value)``, ``("gsp", var)``, ``("rsp", var)`` or
#: ``("poststore", var)``.  Variables are small integers indexing the
#: test's allocation table; each gets its own subpage-aligned word.
ThreadStep = tuple

#: Ops a global schedule step may use (the protocol entry points the
#: abstract model knows about; ``compute`` is thread-local padding).
SCHEDULE_OPS = ("read", "write", "gsp", "rsp", "poststore")


@dataclass(frozen=True)
class LitmusOutcome:
    """Result of one litmus execution."""

    name: str
    observed: tuple
    forbidden: bool
    description: str


@dataclass(frozen=True)
class LitmusTest:
    """A litmus test as pure data.

    ``threads[i]`` runs on cell ``i``.  ``observed`` is assembled from
    the threads that read: each contributes its read results (a bare
    value for a single read, a tuple for several), and the per-thread
    layer is unwrapped when exactly one thread reads — so SB observes
    ``(r0, r1)`` while IRIW observes ``((a, b), (c, d))``.  The test
    fails iff the observation is in ``forbidden``.
    """

    name: str
    description: str
    n_vars: int
    threads: tuple[tuple[ThreadStep, ...], ...]
    forbidden: frozenset

    @property
    def n_cells(self) -> int:
        return len(self.threads)

    def reading_threads(self) -> list[int]:
        """Indices of threads that perform at least one read."""
        return [
            i
            for i, steps in enumerate(self.threads)
            if any(step[0] == "read" for step in steps)
        ]


SB = LitmusTest(
    name="SB",
    description="store buffering: (0, 0) is forbidden under SC",
    n_vars=2,
    threads=(
        (("write", 0, 1), ("read", 1)),
        (("write", 1, 1), ("read", 0)),
    ),
    forbidden=frozenset({(0, 0)}),
)

MP = LitmusTest(
    name="MP",
    description="message passing: flag seen but data stale is forbidden",
    n_vars=2,
    threads=(
        # var 0 is the data, var 1 the flag
        (("write", 0, 42), ("write", 1, 1)),
        (("read", 1), ("read", 0)),
    ),
    forbidden=frozenset({(1, 0)}),
)

LB = LitmusTest(
    name="LB",
    description="load buffering: (1, 1) is forbidden under SC",
    n_vars=2,
    threads=(
        (("read", 0), ("write", 1, 1)),
        (("read", 1), ("write", 0, 1)),
    ),
    forbidden=frozenset({(1, 1)}),
)

IRIW = LitmusTest(
    name="IRIW",
    description="IRIW: observers disagreeing on write order is forbidden",
    n_vars=2,
    threads=(
        (("write", 0, 1),),
        (("write", 1, 1),),
        (("read", 0), ("read", 1)),
        (("read", 1), ("read", 0)),
    ),
    # observer 2 sees x=1 then y=0 (x before y) while observer 3 sees
    # y=1 then x=0 (y before x)
    forbidden=frozenset({((1, 0), (1, 0))}),
)


def _machine(n_cells: int, seed: int) -> tuple[KsrMachine, SharedMemory]:
    config = MachineConfig.ksr1(
        n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
    )
    machine = KsrMachine(config)
    return machine, SharedMemory(machine)


def _check_skews(skews: Sequence[float], n: int) -> list[float]:
    if len(skews) != n:
        raise ConfigError(f"need exactly {n} skews")
    if any(s < 0 for s in skews):
        raise ConfigError("skews must be non-negative")
    return list(skews)


def _step_op(step: ThreadStep, addrs: Sequence[int]):
    """The simulator op for one thread step."""
    kind = step[0]
    if kind == "compute":
        return Compute(step[1])
    if kind == "read":
        return Read(addrs[step[1]])
    if kind == "write":
        return Write(addrs[step[1]], step[2])
    if kind == "gsp":
        return GetSubpage(addrs[step[1]])
    if kind == "rsp":
        return ReleaseSubpage(addrs[step[1]])
    if kind == "poststore":
        return Poststore(addrs[step[1]])
    raise ConfigError(f"unknown litmus step kind {kind!r}")


def _thread_body(steps: Sequence[ThreadStep], addrs: Sequence[int], skew: float):
    def body():
        reads = []
        if skew:
            yield Compute(skew)
        for step in steps:
            result = yield _step_op(step, addrs)
            if step[0] == "read":
                reads.append(result)
        if not reads:
            return None
        return reads[0] if len(reads) == 1 else tuple(reads)

    return body()


def run_litmus(
    test: LitmusTest,
    skews: Optional[Sequence[float]] = None,
    *,
    seed: int = 1,
) -> LitmusOutcome:
    """Interpret one data-form litmus test on a fresh machine."""
    n = test.n_cells
    skews = _check_skews(skews if skews is not None else (0.0,) * n, n)
    machine, mem = _machine(n, seed)
    addrs = [mem.alloc_word() for _ in range(test.n_vars)]
    processes = [
        machine.spawn(f"{test.name.lower()}-{i}", _thread_body(steps, addrs, skews[i]), i)
        for i, steps in enumerate(test.threads)
    ]
    machine.run()
    readers = test.reading_threads()
    results = [processes[i].result for i in readers]
    observed = results[0] if len(readers) == 1 else tuple(results)
    return LitmusOutcome(
        name=test.name,
        observed=observed,
        forbidden=observed in test.forbidden,
        description=test.description,
    )


def run_sb(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Store buffering: forbidden outcome is r0 == r1 == 0."""
    return run_litmus(SB, skews, seed=seed)


def run_mp(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Message passing: if the flag is seen, the data must be seen."""
    return run_litmus(MP, skews, seed=seed)


def run_lb(skews: Sequence[float] = (0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Load buffering: forbidden outcome is r0 == r1 == 1."""
    return run_litmus(LB, skews, seed=seed)


def run_iriw(skews: Sequence[float] = (0, 0, 0, 0), *, seed: int = 1) -> LitmusOutcome:
    """Independent reads of independent writes: the two observers must
    not see the two writes in opposite orders."""
    return run_litmus(IRIW, skews, seed=seed)


ALL_LITMUS = {
    "SB": run_sb,
    "MP": run_mp,
    "LB": run_lb,
    "IRIW": run_iriw,
}


# ----------------------------------------------------------------------
# Global-schedule execution (scenario lowering seam)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleOutcome:
    """Everything protocol-visible after executing one global schedule.

    ``observations`` pairs each read step's index in the schedule with
    the value it returned.  State vectors are indexed ``[var][cell]``
    with ``SubpageState`` names (``None`` when the cell holds no copy);
    the directory and local-cache views are reported separately so a
    disagreement between them is itself detectable.  ``completed`` is
    ``False`` when a step deadlocked or livelocked — for generated
    schedules that is always a divergence, with the raising step and
    message in ``diagnostics``.
    """

    completed: bool
    observations: tuple[tuple[int, Any], ...]
    directory_states: tuple[tuple[Optional[str], ...], ...]
    cache_states: tuple[tuple[Optional[str], ...], ...]
    created: tuple[bool, ...]
    memory: tuple[Any, ...]
    diagnostics: str = ""


def _single_step_body(op_kind: str, addr: int, value: Any, sink: list):
    def body():
        if op_kind == "write":
            yield Write(addr, value)
        elif op_kind == "read":
            result = yield Read(addr)
            sink.append(result)
        elif op_kind == "gsp":
            yield GetSubpage(addr)
        elif op_kind == "rsp":
            yield ReleaseSubpage(addr)
        elif op_kind == "poststore":
            yield Poststore(addr)
        else:
            raise ConfigError(f"unknown schedule op {op_kind!r}")

    return body()


def run_schedule(
    steps: Sequence[tuple],
    *,
    n_cells: int,
    n_vars: int,
    seed: int = 1,
    step_max_events: int = 50_000,
) -> ScheduleOutcome:
    """Execute a global step sequence, one step at a time.

    Each step is ``(op, cell, var)`` — writes ``(op, cell, var, value)``
    — with ``op`` in :data:`SCHEDULE_OPS`.  The machine runs to
    quiescence between steps, so the schedule *is* the interleaving:
    this is the concrete realization of one abstract-model action
    sequence, and the only execution mode the differential oracle in
    :mod:`repro.analysis.scenarios` compares against.

    A step that cannot finish within ``step_max_events`` events (a
    blocked atomic acquire retrying forever) or that deadlocks yields
    ``completed=False`` with the step index in ``diagnostics`` — never
    an exception, so divergence handling stays in the oracle.
    """
    machine, mem = _machine(n_cells, seed)
    addrs = [mem.alloc_word() for _ in range(n_vars)]
    observations: list[tuple[int, Any]] = []
    completed = True
    diagnostics = ""
    for index, step in enumerate(steps):
        op_kind, cell = step[0], step[1]
        addr = addrs[step[2]]
        value = step[3] if op_kind == "write" else None
        sink: list = []
        try:
            machine.spawn(f"step{index}-{op_kind}", _single_step_body(op_kind, addr, value, sink), cell)
            machine.run(max_events=step_max_events)
        except (DeadlockError, SimulationError) as exc:
            completed = False
            diagnostics = f"step {index} {step!r}: {exc}"
            break
        if op_kind == "read":
            observations.append((index, sink[0]))
    directory = machine.protocol.directory
    subpages = [subpage_of(a) for a in addrs]
    dir_states = tuple(
        tuple(
            (lambda s: s.name if s is not None else None)(directory.state_in(sp, c))
            for c in range(n_cells)
        )
        for sp in subpages
    )
    cache_states = tuple(
        tuple(
            (lambda s: s.name if s is not None else None)(
                machine.cells[c].local_cache.state_of(sp)
            )
            for c in range(n_cells)
        )
        for sp in subpages
    )
    created = tuple(directory.entry(sp).created for sp in subpages)
    memory = tuple(machine.protocol.peek(a) for a in addrs)
    return ScheduleOutcome(
        completed=completed,
        observations=tuple(observations),
        directory_states=dir_states,
        cache_states=cache_states,
        created=created,
        memory=memory,
        diagnostics=diagnostics,
    )
