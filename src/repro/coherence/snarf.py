"""Read-snarfing: combining concurrent read misses.

"The architecture also supports read-snarfing which allows all invalid
copies in the local-caches to become valid on a re-read for that
location by any one node."

Two consequences are modelled:

1. When several cells miss on the same subpage at overlapping times,
   only the first occupies a ring slot; the others ride the same
   response packet (they observe the data as it circulates past them).
2. When a response packet circulates, *every* cell holding an INVALID
   place-holder for that subpage is revalidated for free — this is what
   makes the global-wake-up-flag barrier variants (tree(M),
   tournament(M), MCS(M)) so effective.

:class:`ReadCombiner` implements (1): it tracks, per subpage, the read
transaction currently in flight so late arrivals can join it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InFlightRead", "ReadCombiner"]


@dataclass(frozen=True)
class InFlightRead:
    """A read transaction currently circulating."""

    subpage_id: int
    injected_at: float
    completed_at: float

    def joinable_at(self, now: float) -> bool:
        """Whether a read miss at ``now`` can ride this packet.

        A miss can join while the packet has not yet completed its
        circuit (the joiner's place-holder will be refreshed as the
        response passes it).
        """
        return now <= self.completed_at


class ReadCombiner:
    """Tracks one in-flight shared-read per subpage."""

    #: Extra cycles a joiner waits past the primary completion,
    #: representing the packet reaching its station later in the
    #: circuit.  Small compared to a circuit; calibrated to a few hops.
    JOIN_SKEW_CYCLES = 8.0

    def __init__(self) -> None:
        self._inflight: dict[int, InFlightRead] = {}
        self.n_joined = 0

    def try_join(self, subpage_id: int, now: float) -> float | None:
        """If a read of ``subpage_id`` is circulating at ``now``, return
        the time the joiner observes the data; else ``None``."""
        flight = self._inflight.get(subpage_id)
        if flight is None or not flight.joinable_at(now):
            return None
        self.n_joined += 1
        return flight.completed_at + self.JOIN_SKEW_CYCLES

    def begin(self, subpage_id: int, injected_at: float, completed_at: float) -> None:
        """Record a new primary read transaction."""
        self._inflight[subpage_id] = InFlightRead(subpage_id, injected_at, completed_at)

    def expire(self, subpage_id: int, now: float) -> None:
        """Drop the record once the packet has completed (housekeeping;
        :meth:`try_join` also checks the window itself)."""
        flight = self._inflight.get(subpage_id)
        if flight is not None and not flight.joinable_at(now):
            del self._inflight[subpage_id]
