"""Global bookkeeping of subpage copies.

The real KSR has no directory — requests circulate and whichever cell
holds a valid copy responds.  A simulator still needs to *know* who
holds what; this module is that knowledge, with the understanding that
it models the aggregate effect of ring snooping, not a physical
directory structure.

Invariants enforced here (violations raise
:class:`~repro.errors.ProtocolError` — they indicate simulator bugs):

* at most one cell holds EXCLUSIVE or ATOMIC,
* an exclusive owner is the *only* holder of a valid copy,
* the atomic holder is also the exclusive owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ProtocolError
from repro.memory.local_cache import SubpageState

__all__ = ["DirectoryEntry", "Directory"]


@dataclass
class DirectoryEntry:
    """Who holds copies of one subpage, and in what role."""

    #: Cells holding a *valid* (shared or exclusive/atomic) copy.
    sharers: set[int] = field(default_factory=set)
    #: Cells holding an INVALID place-holder (candidates for snarfing).
    placeholders: set[int] = field(default_factory=set)
    #: Cell holding the copy in EXCLUSIVE or ATOMIC state, if any.
    owner: Optional[int] = None
    #: Whether the owner's copy is ATOMIC (get_subpage held).
    atomic: bool = False
    #: Whether any cell has ever touched this subpage.
    created: bool = False

    def check(self) -> None:
        """Validate the entry's invariants."""
        if self.owner is not None:
            if self.sharers != {self.owner}:
                raise ProtocolError(
                    f"owner {self.owner} must be sole sharer, have {self.sharers}"
                )
        elif self.atomic:
            raise ProtocolError("atomic flag without an owner")
        if self.sharers & self.placeholders:
            raise ProtocolError(
                f"cells {self.sharers & self.placeholders} both valid and place-holder"
            )

    @property
    def has_valid_copy(self) -> bool:
        """Whether any cell can supply the data."""
        return bool(self.sharers)


class Directory:
    """Map subpage id → :class:`DirectoryEntry` (created on demand)."""

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, subpage_id: int) -> DirectoryEntry:
        """The entry for ``subpage_id`` (creating an empty one)."""
        entry = self._entries.get(subpage_id)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[subpage_id] = entry
        return entry

    def known(self, subpage_id: int) -> bool:
        """Whether the subpage has an entry at all."""
        return subpage_id in self._entries

    # ------------------------------------------------------------------
    # Transitions (each keeps the entry consistent and re-checks)
    # ------------------------------------------------------------------

    def record_fill_shared(self, subpage_id: int, cell_id: int) -> None:
        """Cell obtained a SHARED copy (read miss fill or snarf)."""
        entry = self.entry(subpage_id)
        if entry.owner is not None and entry.owner != cell_id:
            # the previous exclusive owner is downgraded by the protocol
            raise ProtocolError(
                f"shared fill of subpage {subpage_id} while cell {entry.owner} owns it"
            )
        entry.owner = None
        entry.atomic = False
        entry.sharers.add(cell_id)
        entry.placeholders.discard(cell_id)
        entry.created = True
        entry.check()

    def record_fill_exclusive(self, subpage_id: int, cell_id: int, *, atomic: bool = False) -> None:
        """Cell obtained the EXCLUSIVE (or ATOMIC) copy; all other valid
        copies must already have been demoted to place-holders."""
        entry = self.entry(subpage_id)
        others = entry.sharers - {cell_id}
        if others:
            raise ProtocolError(
                f"exclusive fill of subpage {subpage_id} with live sharers {others}"
            )
        entry.owner = cell_id
        entry.atomic = atomic
        entry.sharers = {cell_id}
        entry.placeholders.discard(cell_id)
        entry.created = True
        entry.check()

    def demote_owner(self, subpage_id: int) -> None:
        """EXCLUSIVE/ATOMIC owner drops to SHARED (a remote read hit it)."""
        entry = self.entry(subpage_id)
        if entry.owner is None:
            raise ProtocolError(f"demote on unowned subpage {subpage_id}")
        entry.owner = None
        entry.atomic = False
        entry.check()

    def invalidate_others(self, subpage_id: int, keep_cell: int) -> set[int]:
        """All valid copies except ``keep_cell``'s become place-holders.

        Returns the cells that lost a valid copy (the protocol must
        purge their sub-caches and bump their perf counters).
        """
        entry = self.entry(subpage_id)
        losers = entry.sharers - {keep_cell}
        entry.sharers -= losers
        entry.placeholders |= losers
        if entry.owner in losers:
            entry.owner = None
            entry.atomic = False
        entry.check()
        return losers

    def set_atomic(self, subpage_id: int, cell_id: int, value: bool) -> None:
        """Flip the atomic flag of the owner's copy."""
        entry = self.entry(subpage_id)
        if entry.owner != cell_id:
            raise ProtocolError(
                f"cell {cell_id} flipping atomic on subpage {subpage_id} "
                f"owned by {entry.owner}"
            )
        entry.atomic = value
        entry.check()

    def drop_copy(self, subpage_id: int, cell_id: int) -> None:
        """A cache eviction removed the cell's copy (any state)."""
        entry = self.entry(subpage_id)
        entry.sharers.discard(cell_id)
        entry.placeholders.discard(cell_id)
        if entry.owner == cell_id:
            entry.owner = None
            entry.atomic = False
        entry.check()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def responder_for(
        self, subpage_id: int, requester: int, same_ring: Iterable[int]
    ) -> Optional[int]:
        """Pick the cell that will answer a miss by ``requester``.

        Prefers a valid copy on the requester's own ring (the request
        is satisfied before reaching the ARD); falls back to any valid
        copy; ``None`` when the data is uncached (cold access).
        """
        entry = self.entry(subpage_id)
        candidates = entry.sharers - {requester}
        if not candidates:
            return None
        local = candidates & set(same_ring)
        pool = local if local else candidates
        return min(pool)  # deterministic choice

    def summary(self) -> dict[str, int]:
        """Aggregate sharing statistics over every tracked subpage.

        Used by the observability capture (:mod:`repro.obs`) to report
        the machine's end-of-run sharing profile: how many subpages are
        tracked, how many are held shared / exclusively owned / atomic,
        and how many INVALID place-holders (snarf candidates) exist.
        """
        owned = atomic = shared = placeholders = 0
        for entry in self._entries.values():
            if entry.owner is not None:
                owned += 1
                if entry.atomic:
                    atomic += 1
            elif len(entry.sharers) > 1:
                shared += 1
            placeholders += len(entry.placeholders)
        return {
            "subpages": len(self._entries),
            "owned_exclusive": owned,
            "held_atomic": atomic,
            "shared_multi": shared,
            "placeholders": placeholders,
        }

    def state_in(self, subpage_id: int, cell_id: int) -> Optional[SubpageState]:
        """Directory's view of the cell's copy (for cross-checking the
        local caches in tests)."""
        entry = self.entry(subpage_id)
        if cell_id == entry.owner:
            return SubpageState.ATOMIC if entry.atomic else SubpageState.EXCLUSIVE
        if cell_id in entry.sharers:
            return SubpageState.SHARED
        if cell_id in entry.placeholders:
            return SubpageState.INVALID
        return None
