"""Discrete-event simulation kernel.

A deliberately small core: an :class:`Engine` with a cycle-valued clock
and an event queue, a generator-coroutine :class:`Process` abstraction,
and the vocabulary of :class:`Op` objects that simulated threads yield
(reads, writes, the KSR special instructions, spin-waits).

The interpretation of ops — how many cycles a read costs, what a
poststore does to other caches — lives in :mod:`repro.machine.cell`;
this package knows nothing about the KSR.
"""

from repro.sim.engine import Engine, Event
from repro.sim.process import (
    Process,
    Op,
    Compute,
    LocalOps,
    Read,
    Write,
    GetSubpage,
    ReleaseSubpage,
    Prefetch,
    Poststore,
    WaitUntil,
    Fence,
)
from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Op",
    "Compute",
    "LocalOps",
    "Read",
    "Write",
    "GetSubpage",
    "ReleaseSubpage",
    "Prefetch",
    "Poststore",
    "WaitUntil",
    "Fence",
    "Trace",
    "TraceRecord",
]
