"""Optional op-level tracing.

A :class:`Trace` can be attached to a machine to record every executed
op with its start time and charged latency.  Used by tests to assert on
protocol behaviour (e.g. "the second read of an invalidated flag was a
snarf, not a ring transaction"), by examples to illustrate it, and by
the observability pipeline (:mod:`repro.obs`) as the op-level record
stream behind Chrome-trace export.

Long runs produce millions of records; an unbounded trace would grow
without limit.  ``Trace(capacity=N)`` therefore acts as a *ring buffer*:
the most recent ``N`` records are retained, older ones are evicted, and
:attr:`Trace.dropped` counts the evictions so any export can state
exactly how much history was shed (`repro.obs` surfaces it in the
Chrome-trace metadata).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed op."""

    time: float
    cell_id: int
    process: str
    kind: str
    addr: int | None
    cycles: float
    detail: str = ""

    def __str__(self) -> str:
        where = f" @0x{self.addr:x}" if self.addr is not None else ""
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"t={self.time:12.1f} cell={self.cell_id:3d} {self.process:<16s} "
            f"{self.kind:<12s}{where} ({self.cycles:.1f} cy){extra}"
        )


class Trace:
    """Bounded (or unbounded) container of :class:`TraceRecord`.

    With ``capacity=None`` (the default) every record is kept.  With a
    capacity the trace is a ring buffer: appending past capacity evicts
    the *oldest* record and increments :attr:`dropped`, so the trace
    always holds the most recent window of execution.

    Filtering helpers keep test assertions readable.
    """

    def __init__(self, capacity: int | None = None):
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.capacity = capacity
        #: Records evicted by the ring buffer since construction.
        self.dropped = 0

    def record(
        self,
        time: float,
        cell_id: int,
        process: str,
        kind: str,
        addr: int | None,
        cycles: float,
        detail: str = "",
    ) -> None:
        """Append a record (evicting the oldest one past ``capacity``)."""
        if self.capacity is not None and len(self._records) == self.capacity:
            self.dropped += 1  # the append below evicts the oldest record
        self._records.append(
            TraceRecord(time, cell_id, process, kind, addr, cycles, detail)
        )

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one op kind (``'read'``, ``'poststore'``, ...)."""
        return [r for r in self._records if r.kind == kind]

    def by_cell(self, cell_id: int) -> list[TraceRecord]:
        """All records from one cell."""
        return [r for r in self._records if r.cell_id == cell_id]

    def by_addr(self, addr: int) -> list[TraceRecord]:
        """All records touching one address."""
        return [r for r in self._records if r.addr == addr]

    def dump(self, limit: int = 50) -> str:
        """The first ``limit`` retained records, one per line."""
        kept = list(self._records)
        lines = [str(r) for r in kept[:limit]]
        if len(kept) > limit:
            lines.append(f"... {len(kept) - limit} more")
        return "\n".join(lines)
