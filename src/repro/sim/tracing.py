"""Optional op-level tracing.

A :class:`Trace` can be attached to a machine to record every executed
op with its start time and charged latency.  Used by tests to assert on
protocol behaviour (e.g. "the second read of an invalidated flag was a
snarf, not a ring transaction") and by examples to illustrate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed op."""

    time: float
    cell_id: int
    process: str
    kind: str
    addr: int | None
    cycles: float
    detail: str = ""

    def __str__(self) -> str:
        where = f" @0x{self.addr:x}" if self.addr is not None else ""
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"t={self.time:12.1f} cell={self.cell_id:3d} {self.process:<16s} "
            f"{self.kind:<12s}{where} ({self.cycles:.1f} cy){extra}"
        )


class Trace:
    """Append-only container of :class:`TraceRecord`.

    Filtering helpers keep test assertions readable.
    """

    def __init__(self, capacity: int | None = None):
        self.records: list[TraceRecord] = []
        self.capacity = capacity
        self.dropped = 0

    def record(
        self,
        time: float,
        cell_id: int,
        process: str,
        kind: str,
        addr: int | None,
        cycles: float,
        detail: str = "",
    ) -> None:
        """Append a record (drops silently past ``capacity``)."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, cell_id, process, kind, addr, cycles, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one op kind (``'read'``, ``'poststore'``, ...)."""
        return [r for r in self.records if r.kind == kind]

    def by_cell(self, cell_id: int) -> list[TraceRecord]:
        """All records from one cell."""
        return [r for r in self.records if r.cell_id == cell_id]

    def by_addr(self, addr: int) -> list[TraceRecord]:
        """All records touching one address."""
        return [r for r in self.records if r.addr == addr]

    def dump(self, limit: int = 50) -> str:
        """The first ``limit`` records, one per line."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return "\n".join(lines)
