"""The event queue at the heart of the simulator.

Time is a float, measured in CPU cycles of the simulated machine
(fractional cycles arise from ring hop times).  Events scheduled for
the same instant fire in scheduling order, which keeps runs
deterministic without any reliance on heap tie-breaking.

The queue stores ``(time, tie, seq, event)`` tuples so that ``heapq``
orders entries by comparing native tuples of numbers — the interpreter
never calls back into :meth:`Event.__lt__` on the hot path.  ``seq`` is
unique per event, so the comparison always resolves before reaching the
``event`` element.

Two opt-in hooks support the determinism auditing in
:mod:`repro.analysis.races`: :attr:`Engine.audit_hook` observes every
event just before it fires, and :meth:`Engine.shuffle_same_time_ties`
replaces the same-instant FIFO order with a seeded random order so a
harness can detect outcomes that depend on tie-breaking.  A third hook,
:attr:`Engine.probe`, is the observability seam (:mod:`repro.obs`): it
receives each event's fire time *after* the clock advances, so a
machine-wide sampler can bucket event throughput by simulated time.
No hook affects a run unless explicitly installed; :meth:`Engine.run`
samples them when it starts, so install them before running.

Wall-clock throughput (events/sec) is metered through
:mod:`repro.util.wallclock` and exposed via :attr:`Engine.stats`; the
host clock is never visible to simulated code.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.util.wallclock import perf_counter

__all__ = ["Engine", "EngineStats", "Event"]

#: Shortest meter interval (host seconds) that yields a meaningful
#: events/sec figure.  A stats snapshot taken after a single event sees
#: a wall interval of a few timer ticks; dividing by it produces a
#: nonsense rate in the billions, so anything below this reports 0.0.
_MIN_METER_SECONDS = 1e-6

# Determinism sinks for `ksr-analyze flow` (KSR110): event scheduling
# must be a pure function of configuration and the master seed.
__ksr_flow_sinks__ = ("Engine.schedule", "Engine.schedule_at")


class Event:
    """A scheduled callback; returned by :meth:`Engine.schedule`.

    Cancellation is lazy: :meth:`cancel` marks the event and the engine
    skips it when it surfaces.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "tie")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        tie: float | None = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Same-instant ordering key; equals ``seq`` (FIFO) unless the
        #: engine is shuffling ties for a determinism audit.
        self.tie = float(seq) if tie is None else tie

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.tie, self.seq) < (other.time, other.tie, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.1f}, {name}{'(cancelled)' if self.cancelled else ''})"


@dataclass(frozen=True)
class EngineStats:
    """Throughput counters for one engine (see :attr:`Engine.stats`)."""

    #: Events executed so far.
    events_fired: int
    #: Events ever scheduled (fired, pending or cancelled).  Paired
    #: with ``events_fired`` this pins a run's full event history, which
    #: is how the fault tests prove a zero-fault plan changes nothing.
    events_scheduled: int
    #: Host seconds spent inside :meth:`Engine.run` / :meth:`Engine.step`.
    wall_seconds: float
    #: ``events_fired / wall_seconds`` (0.0 before the first run *and*
    #: whenever the meter interval is too short to be meaningful — a
    #: first-event snapshot must not divide by a ~0 interval).
    events_per_sec: float
    #: Current simulation time in cycles.
    sim_time: float
    #: Queued (possibly cancelled) events.
    pending: int
    #: Subset of ``events_fired`` advanced in closed form by a macro-event
    #: batcher (:mod:`repro.sim.batch`) instead of heap dispatch.  Always
    #: 0 without batching; the total above includes these, so event
    #: budgets and livelock guards see identical counts either way.
    batched_events: int = 0


class Engine:
    """A minimal deterministic discrete-event engine.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, fired.append, "a")
    >>> _ = eng.schedule(5, fired.append, "b")
    >>> eng.run()
    >>> fired, eng.now
    (['b', 'a'], 10.0)
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._n_fired = 0
        self._n_batched = 0
        self._wall_s = 0.0
        self._tie_rng: Any = None
        #: Absolute ``_n_fired`` ceiling while :meth:`_run_guarded` runs
        #: under an event budget (``None`` = unlimited).  A macro-event
        #: batcher reads it so closed-form advances respect the budget
        #: exactly as per-event dispatch would.
        self._fire_limit: Optional[int] = None
        #: The active ``until`` horizon while :meth:`_run_guarded` runs
        #: (``None`` = unbounded); read by the batcher for the same reason.
        self._active_until: Optional[float] = None
        #: Opt-in observer called with each event just before it fires
        #: (see :mod:`repro.analysis.races`).  ``None`` in normal runs.
        self.audit_hook: Optional[Callable[[Event], None]] = None
        #: Opt-in observability probe called with each event's fire time
        #: (see :mod:`repro.obs`).  ``None`` — the default — costs one
        #: branch per :meth:`run` call, nothing per event.
        self.probe: Optional[Callable[[float], None]] = None

    def shuffle_same_time_ties(self, rng: Any) -> None:
        """Order same-instant events randomly (seeded) instead of FIFO.

        ``rng`` is anything with a ``random()`` method (e.g.
        ``numpy.random.Generator``).  Install it *before* scheduling the
        workload; events already queued keep their FIFO keys.  This
        deliberately breaks the documented same-instant ordering so the
        determinism auditor can expose tie-break-dependent outcomes —
        never use it in a measurement run.
        """
        self._tie_rng = rng

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for tests/diagnostics)."""
        return self._n_fired

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled on this engine."""
        return self._seq

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def stats(self) -> EngineStats:
        """Throughput snapshot: events fired, wall time, events/sec."""
        rate = (
            self._n_fired / self._wall_s if self._wall_s >= _MIN_METER_SECONDS else 0.0
        )
        return EngineStats(
            events_fired=self._n_fired,
            events_scheduled=self._seq,
            wall_seconds=self._wall_s,
            events_per_sec=rate,
            sim_time=self._now,
            pending=len(self._queue),
            batched_events=self._n_batched,
        )

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        tie = float(self._tie_rng.random()) if self._tie_rng is not None else float(seq)
        event = Event(self._now + delay, seq, callback, args, tie)
        heapq.heappush(self._queue, (event.time, tie, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    # Macro-event batching seams (:mod:`repro.sim.batch`)
    # ------------------------------------------------------------------

    def _consume_seq(self) -> int:
        """Take the next sequence number without queueing an event.

        A macro-event batcher advancing a chain in closed form consumes
        one ``seq`` per virtual schedule, so ``events_scheduled`` and all
        later FIFO tie-break keys are bit-identical to per-event dispatch.
        Only valid while same-instant ties are FIFO (the batcher falls
        back when :meth:`shuffle_same_time_ties` is active).
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _repush(
        self, time: float, seq: int, callback: Callable[..., None], args: tuple
    ) -> Event:
        """Materialize a virtually-scheduled event under its original key.

        ``seq`` must have come from :meth:`_consume_seq`; the entry gets
        the exact ``(time, float(seq), seq)`` heap key the per-event path
        would have given it, so subsequent dispatch order is unchanged.
        """
        event = Event(time, seq, callback, args)
        heapq.heappush(self._queue, (time, event.tie, seq, event))
        return event

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when idle."""
        before = self._n_fired
        self._run_guarded(None, 1)
        return self._n_fired != before

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` further events fire.

        ``until`` is an absolute simulation time; events scheduled
        beyond it remain queued and ``now`` advances to ``until``.
        """
        if (
            self.audit_hook is not None
            or self.probe is not None
            or until is not None
            or max_events is not None
        ):
            self._run_guarded(until, max_events)
            return
        # Fast path: no audit hook, no horizon, no budget.  Pops the
        # whole queue with everything hot in locals; the only attribute
        # writes per event are the clock and the fired counter (both
        # observable from callbacks, so they must stay current).
        queue = self._queue
        pop = heapq.heappop
        start = perf_counter()
        try:
            while queue:
                time, _tie, _seq, event = pop(queue)
                if event.cancelled:
                    continue
                if time < self._now:
                    raise SimulationError(
                        f"event queue corrupt: event at {time} < now {self._now}"
                    )
                self._now = time
                self._n_fired += 1
                event.callback(*event.args)
        finally:
            self._wall_s += perf_counter() - start

    def _run_guarded(self, until: float | None, max_events: int | None) -> None:
        """The general loop: audit hook, ``until`` horizon, event budget.

        This is the single place that skips cancelled heap entries for
        the guarded paths; :meth:`step` delegates here too, so there is
        exactly one other pop site (the fast loop in :meth:`run`).
        """
        queue = self._queue
        pop = heapq.heappop
        audit = self.audit_hook
        probe = self.probe
        limit = None if max_events is None else self._n_fired + max_events
        prev_limit, prev_until = self._fire_limit, self._active_until
        self._fire_limit = limit
        self._active_until = until
        start = perf_counter()
        try:
            while queue:
                if limit is not None and self._n_fired >= limit:
                    return  # budget exhausted: do not advance to `until`
                time, _tie, _seq, event = queue[0]
                if event.cancelled:
                    pop(queue)
                    continue
                if until is not None and time > until:
                    break
                pop(queue)
                if time < self._now:
                    raise SimulationError(
                        f"event queue corrupt: event at {time} < now {self._now}"
                    )
                self._now = time
                self._n_fired += 1
                if audit is not None:
                    audit(event)
                if probe is not None:
                    probe(time)
                event.callback(*event.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._fire_limit = prev_limit
            self._active_until = prev_until
            self._wall_s += perf_counter() - start
