"""The event queue at the heart of the simulator.

Time is a float, measured in CPU cycles of the simulated machine
(fractional cycles arise from ring hop times).  Events scheduled for
the same instant fire in scheduling order, which keeps runs
deterministic without any reliance on heap tie-breaking.

Two opt-in hooks support the determinism auditing in
:mod:`repro.analysis.races`: :attr:`Engine.audit_hook` observes every
event just before it fires, and :meth:`Engine.shuffle_same_time_ties`
replaces the same-instant FIFO order with a seeded random order so a
harness can detect outcomes that depend on tie-breaking.  Neither hook
affects a run unless explicitly installed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Engine", "Event"]


class Event:
    """A scheduled callback; returned by :meth:`Engine.schedule`.

    Cancellation is lazy: :meth:`cancel` marks the event and the engine
    skips it when it surfaces.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "tie")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        tie: float | None = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Same-instant ordering key; equals ``seq`` (FIFO) unless the
        #: engine is shuffling ties for a determinism audit.
        self.tie = float(seq) if tie is None else tie

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.tie, self.seq) < (other.time, other.tie, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.1f}, {name}{'(cancelled)' if self.cancelled else ''})"


class Engine:
    """A minimal deterministic discrete-event engine.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, fired.append, "a")
    >>> _ = eng.schedule(5, fired.append, "b")
    >>> eng.run()
    >>> fired, eng.now
    (['b', 'a'], 10.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._n_fired = 0
        self._tie_rng: Any = None
        #: Opt-in observer called with each event just before it fires
        #: (see :mod:`repro.analysis.races`).  ``None`` in normal runs.
        self.audit_hook: Optional[Callable[[Event], None]] = None

    def shuffle_same_time_ties(self, rng: Any) -> None:
        """Order same-instant events randomly (seeded) instead of FIFO.

        ``rng`` is anything with a ``random()`` method (e.g.
        ``numpy.random.Generator``).  Install it *before* scheduling the
        workload; events already queued keep their FIFO keys.  This
        deliberately breaks the documented same-instant ordering so the
        determinism auditor can expose tie-break-dependent outcomes —
        never use it in a measurement run.
        """
        self._tie_rng = rng

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for tests/diagnostics)."""
        return self._n_fired

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        tie = float(self._tie_rng.random()) if self._tie_rng is not None else None
        event = Event(self._now + delay, self._seq, callback, args, tie)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event queue corrupt: event at {event.time} < now {self._now}"
                )
            self._now = event.time
            self._n_fired += 1
            if self.audit_hook is not None:
                self.audit_hook(event)
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` further events fire.

        ``until`` is an absolute simulation time; events scheduled
        beyond it remain queued and ``now`` advances to ``until``.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                break
            fired += 1
        if until is not None:
            self._now = max(self._now, until)
