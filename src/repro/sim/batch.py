"""Macro-event batching: closed-form advancement of self-clocked chains.

A *chain* is an event sequence with a special shape: each firing does a
bounded piece of work and schedules exactly one successor, and the work
touches state no other pending event reads before the chain's next
firing.  The KSR hardware ``get_subpage`` retry loop is the canonical
case — under lock contention >90 % of all engine events are such
retries (:mod:`repro.ring.batch`).

For chains, per-event heap dispatch is pure overhead: pop, allocate,
push, dispatch — for one arithmetic step.  :class:`MacroAdvancer`
removes it.  Each chain keeps **one** real engine event (its *anchor*).
When an anchor fires, the advancer opens a *window*: as long as the
earliest pending chain step sorts strictly before the earliest real
event in the engine queue, that step cannot interact with anything else
and is executed *virtually* — same arithmetic, same RNG draws, same
counter updates, same probe calls — without ever touching the engine
heap.  Chain anchors that surface at the queue head during a window are
absorbed into it.  The window closes at the first real event boundary,
the run horizon, or the event budget; every chain still virtual is then
re-materialized under its original ``(time, seq)`` key.

The contract is **byte-identity**: a run with batching enabled fires
the same events at the same times in the same order, consumes the same
RNG values, and leaves every counter equal to the per-event run —
``Engine.stats`` merely reports how many fires were closed-form under
``batched_events``.  Guarantees and fallbacks:

* ``seq`` parity — each virtual schedule consumes one engine sequence
  number (:meth:`Engine._consume_seq`), so FIFO tie-break keys of all
  later events are unchanged.
* order parity — a virtual step runs only while its ``(time, tie,
  seq)`` key sorts before every queued event, which is exactly when the
  per-event loop would have popped it next.
* observability parity — :attr:`Engine.probe` is called per virtual
  fire; chain work invokes the same ring probes the per-event path
  does.
* audit fallback — with :attr:`Engine.audit_hook` installed or
  same-time tie shuffling active, anchors fire per-event (the auditors
  need real :class:`Event` objects and non-FIFO ties break the key
  proof); chain *work* is unchanged, so timing is still identical.
* budget/horizon parity — virtual fires count against
  ``Engine.run(max_events=...)`` budgets and stop at ``until`` exactly
  where per-event dispatch would.

Subclasses supply the chain payload (:class:`MacroChain` subclass with
extra slots) and the per-step work (:meth:`MacroAdvancer._step`).
Domain-specific batchability conditions — fault seams, probes with
write access — are the subclass's responsibility at chain-start time;
see :meth:`repro.ring.batch.BatchAdvancer.start_gsp_chain`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from repro.sim.engine import Engine, Event

__all__ = ["MacroChain", "MacroAdvancer", "BATCH_VERSION"]

#: Semantic version of the macro-event layer, folded into the sweep
#: result-cache key (:mod:`repro.experiments.sweep`).  Bump on any
#: change that could alter what a batched run computes — the cache must
#: never serve values produced by different batching semantics.
BATCH_VERSION = 1


class MacroChain:
    """One self-clocked event chain managed by a :class:`MacroAdvancer`.

    Duck-compatible with :class:`~repro.sim.engine.Event` where it
    matters: holders of a chain (e.g. a protocol waiter record) call
    :meth:`cancel` exactly as they would on the event it replaces.
    """

    __slots__ = ("time", "seq", "event", "cancelled")

    def __init__(self) -> None:
        #: Absolute time of the chain's next (pending) step.
        self.time = 0.0
        #: Engine sequence number reserved for that step.
        self.seq = -1
        #: The real anchor event when materialized, else ``None``.
        self.event: Optional[Event] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the chain (idempotent); mirrors :meth:`Event.cancel`."""
        self.cancelled = True
        event = self.event
        if event is not None:
            event.cancel()
            self.event = None


class MacroAdvancer:
    """Window machinery shared by all chain kinds.

    Holds no simulation state of its own beyond the in-window
    bookkeeping; between events every live chain owns a real anchor in
    the engine queue, so the queue remains the single source of truth
    for pending work (``Engine.pending``, deadlock checks).
    """

    def __init__(self, engine: Engine):
        self._engine = engine
        #: In-window min-heap of pending virtual steps: (time, seq, chain).
        self._vheap: list[tuple[float, int, MacroChain]] = []
        #: Chains currently without a real anchor (window-local).
        self._virtual: list[MacroChain] = []
        #: The one callback object all anchors carry; identity-compared
        #: against queue heads to recognize absorbable anchors.
        self._anchor_cb = self._anchor_fired

    # -- subclass surface ----------------------------------------------

    def _step(self, chain: MacroChain, at: float) -> float:
        """Execute one chain step at time ``at``; return the delay to
        the next step.  Must replicate the per-event callback's work
        bit-for-bit (same float operations in the same order, same RNG
        draws, same counters and probes)."""
        raise NotImplementedError

    # -- chain lifecycle -----------------------------------------------

    def _start(self, chain: MacroChain, delay: float) -> MacroChain:
        """Schedule the chain's first step as a real anchor event.

        Goes through :meth:`Engine.schedule`, so it consumes the same
        sequence number the per-event path's first schedule would.
        """
        event = self._engine.schedule(delay, self._anchor_cb, chain)
        chain.event = event
        chain.time = event.time
        chain.seq = event.seq
        return chain

    def _batchable(self) -> bool:
        """Whether virtual windows may open right now."""
        engine = self._engine
        return engine.audit_hook is None and engine._tie_rng is None

    # -- the window ----------------------------------------------------

    def _anchor_fired(self, chain: MacroChain) -> None:
        """Anchor callback: run this chain's due step, then advance
        every eligible chain in closed form until a real event, the
        horizon, or the budget intervenes."""
        engine = self._engine
        chain.event = None
        at = engine._now
        if not self._batchable():
            # Audit mode: per-event anchors only.  The step itself is
            # identical, so simulated timing does not depend on this.
            delay = self._step(chain, at)
            event = engine.schedule(delay, self._anchor_cb, chain)
            chain.event = event
            chain.time = event.time
            chain.seq = event.seq
            return
        vheap = self._vheap
        virtual = self._virtual
        delay = self._step(chain, at)
        chain.seq = engine._consume_seq()
        chain.time = at + delay
        heappush(vheap, (chain.time, chain.seq, chain))
        virtual.append(chain)
        queue = engine._queue
        anchor_cb = self._anchor_cb
        # Absorb fellow anchors surfacing at the queue head: their steps
        # join the window under the very key they were queued with.  No
        # event fires and nothing is scheduled while the window runs, so
        # once a non-anchor head is found it bounds the whole window.
        while queue:
            entry = queue[0]
            head_event = entry[3]
            if head_event.cancelled:
                heappop(queue)
                continue
            if head_event.callback is anchor_cb:
                heappop(queue)
                other = head_event.args[0]
                other.event = None
                heappush(vheap, (other.time, other.seq, other))
                virtual.append(other)
                continue
            break
        if queue:
            head = queue[0]
            head_time = head[0]
            head_tie = head[1]
        else:
            head_time = None
            head_tie = 0.0
        until = engine._active_until
        limit = engine._fire_limit
        probe = engine.probe
        consume = engine._consume_seq
        step = self._step
        while True:
            while vheap:
                t_v, seq_v, ch = vheap[0]
                if ch.cancelled or seq_v != ch.seq:
                    heappop(vheap)  # stale entry (defensive; see module doc)
                    continue
                break
            else:
                break
            if head_time is not None and not (
                t_v < head_time or (t_v == head_time and float(seq_v) < head_tie)
            ):
                break
            if until is not None and t_v > until:
                break
            if limit is not None and engine._n_fired >= limit:
                break
            heappop(vheap)
            engine._now = t_v
            engine._n_fired += 1
            engine._n_batched += 1
            if probe is not None:
                probe(t_v)
            delay = step(ch, t_v)
            ch.seq = consume()
            ch.time = t_v + delay
            heappush(vheap, (ch.time, ch.seq, ch))
        # Window closed: every still-virtual chain returns to the engine
        # queue under its reserved (time, seq) key.
        repush = engine._repush
        for ch in virtual:
            if not ch.cancelled and ch.event is None:
                ch.event = repush(ch.time, ch.seq, anchor_cb, (ch,))
        virtual.clear()
        vheap.clear()
