"""Coroutine process model and the op vocabulary.

A simulated thread is a Python generator.  Each ``yield`` hands the
executor an :class:`Op`; the executor charges the appropriate latency
(possibly blocking on the ring or a lock) and resumes the generator
with the op's result (the value read, the cycles elapsed, ...).

Example thread body::

    def worker(mem, flag_addr):
        yield Compute(100)                 # 100 cycles of local work
        v = yield Read(counter_addr)       # coherent read
        yield Write(counter_addr, v + 1)   # coherent write
        yield WaitUntil(flag_addr, lambda x: x == 1)   # efficient spin

``WaitUntil`` deserves a note: a real spin loop re-reads a locally
cached flag millions of times.  Simulating each iteration would be
pointless work, so the executor parks the process as a *coherence
watcher* on the flag's subpage and re-evaluates the predicate whenever
a write, poststore or snarf changes the value.  Timing-wise the waiter
still pays the re-fetch it would have paid on its first spin iteration
after the invalidation, so nothing is lost but event count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError

__all__ = [
    "Op",
    "Compute",
    "LocalOps",
    "Read",
    "Write",
    "GetSubpage",
    "ReleaseSubpage",
    "Prefetch",
    "Poststore",
    "WaitUntil",
    "Fence",
    "Process",
]


class Op:
    """Base class of everything a simulated thread may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Execute ``cycles`` of purely local computation."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(f"Compute cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class LocalOps(Op):
    """Execute ``count`` "local operations" — the unit the paper uses
    for its synthetic lock workloads ("a delay of 10000 local
    operations").  The executor converts one local operation to
    ``issue_width``-adjusted cycles."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError(f"LocalOps count must be >= 0, got {self.count}")


@dataclass(frozen=True)
class Read(Op):
    """Coherent read of the 64-bit word at ``addr``; result: the value."""

    addr: int


@dataclass(frozen=True)
class Write(Op):
    """Coherent write of ``value`` to the word at ``addr``."""

    addr: int
    value: Any


@dataclass(frozen=True)
class GetSubpage(Op):
    """Acquire the *atomic* state on the subpage containing ``addr``.

    Blocks (with ring-transaction retries, as the hardware does) while
    another cell holds the subpage atomic.  The hardware guarantees
    forward progress but *not* FCFS — contending requesters are granted
    in ring order after the releasing cell.
    """

    addr: int


@dataclass(frozen=True)
class ReleaseSubpage(Op):
    """Release the atomic state acquired by :class:`GetSubpage`."""

    addr: int


@dataclass(frozen=True)
class Prefetch(Op):
    """Bring the subpage containing ``addr`` into the local cache
    without blocking the issuing thread (charged a small issue cost;
    the fill completes in the background)."""

    addr: int


@dataclass(frozen=True)
class Poststore(Op):
    """Broadcast the current value of ``addr``'s subpage on the ring.

    All invalid place-holders for the subpage receive the new value as
    the packet passes.  The issuer stalls only until the line is
    written out to the local cache, then continues computing — this is
    the overlap the paper exploits in CG and the tree barriers, and the
    semantics that *hurt* SP (receivers get the line in shared state
    and must still invalidate it back when they write)."""

    addr: int


@dataclass(frozen=True)
class WaitUntil(Op):
    """Spin on the word at ``addr`` until ``predicate(value)`` is true.

    Result: the satisfying value.  See the module docstring for how the
    executor models this without simulating every spin iteration.
    """

    addr: int
    predicate: Callable[[Any], bool]


@dataclass(frozen=True)
class Fence(Op):
    """Complete all outstanding asynchronous operations (prefetches,
    poststore ring transfers) issued by this thread."""


@dataclass
class Process:
    """A running simulated thread: a generator plus bookkeeping.

    The executor (a :class:`repro.machine.cell.Cell`) drives the
    generator; :class:`Process` only records identity, state and
    timing.  ``waiting_on`` is a human-readable description of the
    blocking op, used by deadlock diagnostics.
    """

    name: str
    body: Generator[Op, Any, Any]
    cell_id: int
    started_at: float = 0.0
    finished_at: Optional[float] = None
    waiting_on: Optional[str] = None
    result: Any = None
    on_exit: Optional[Callable[["Process"], None]] = None
    #: Cumulative cycles this process spent stalled on GetSubpage
    #: retries / WaitUntil spins (perf-monitor style accounting).
    stall_cycles: float = field(default=0.0)

    @property
    def finished(self) -> bool:
        """Whether the generator has run to completion."""
        return self.finished_at is not None

    def finish(self, now: float, result: Any) -> None:
        """Mark completion at time ``now`` with the generator's return value."""
        if self.finished:
            raise SimulationError(f"process {self.name} finished twice")
        self.finished_at = now
        self.result = result
        self.waiting_on = None
        if self.on_exit is not None:
            self.on_exit(self)

    @property
    def elapsed(self) -> float:
        """Cycles from start to finish (only valid when finished)."""
        if self.finished_at is None:
            raise SimulationError(f"process {self.name} has not finished")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "finished"
            if self.finished
            else f"waiting on {self.waiting_on}" if self.waiting_on else "runnable"
        )
        return f"Process({self.name!r} on cell {self.cell_id}, {state})"
