"""Whole-program static analysis for the simulator (``ksr-analyze flow``).

The per-file AST lint (:mod:`repro.analysis.lint`, KSR100–103) catches
direct spellings of simulator hazards; this package supersedes it with
call-graph-aware dataflow over all of ``src/repro``.  Three pillars:

* **Determinism dataflow** (KSR110, KSR111) — track nondeterminism
  sources (set iteration order, unsorted directory listings, wall
  clock, unregistered RNGs, ``id()``) through assignments and calls
  until they reach a determinism sink (engine scheduling, cache keys,
  observability capture), and close the KSR101 aliasing evasion with
  real alias tracking.
* **Cache-key purity** (KSR112) — statically verify that every kwarg
  type handed to :func:`repro.experiments.sweep.point_key` defines a
  stable ``repr`` or a ``cache_token``, turning the runtime
  ``TypeError`` into an analysis-time finding.
* **Protocol conformance** (KSR113) — extract the guarded transition
  relation of :mod:`repro.coherence.protocol` by symbolic evaluation
  of its branch conditions, extract the abstract relation from
  :mod:`repro.analysis.modelcheck` with the same machinery, and fail
  on any transition one side has and the other lacks or forbids.

Findings are uniform :class:`~repro.analysis.flow.findings.Finding`
records rendered as text, JSON or SARIF, with a baseline-file
suppression mechanism keyed by AST-span hashes (line-drift proof).
"""

from repro.analysis.flow.baseline import Baseline
from repro.analysis.flow.conformance import (
    Transition,
    conformance_findings,
    extract_code_relation,
    extract_model_relation,
)
from repro.analysis.flow.determinism import determinism_findings
from repro.analysis.flow.findings import (
    Finding,
    findings_to_json,
    findings_to_sarif,
    findings_to_text,
    span_hash,
)
from repro.analysis.flow.purity import purity_findings
from repro.analysis.flow.runner import FlowReport, run_flow

__all__ = [
    "Baseline",
    "Finding",
    "FlowReport",
    "Transition",
    "conformance_findings",
    "determinism_findings",
    "extract_code_relation",
    "extract_model_relation",
    "findings_to_json",
    "findings_to_sarif",
    "findings_to_text",
    "purity_findings",
    "run_flow",
    "span_hash",
]
