"""Baseline suppression for accepted findings.

A baseline file records findings the team has reviewed and accepted
(or scheduled for later).  ``ksr-analyze ... --baseline FILE`` drops
matching findings from the report; ``--write-baseline`` records the
current finding set.  Entries are keyed by ``(rule, path, span_hash)``
— the span hash digests the flagged source text, not its line number,
so unrelated edits above a finding do not churn the baseline (see
:func:`repro.analysis.flow.findings.span_hash`).

Lifecycle:

* **add** — ``--write-baseline`` serializes every current finding.
* **suppress** — a finding whose key matches an entry is dropped; the
  entry is marked used.
* **expire** — entries matching no current finding are *stale*: the
  flagged code was fixed or deleted.  Stale entries are reported (and
  fail ``--strict``) so the file shrinks instead of fossilizing;
  ``--write-baseline`` prunes them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.flow.findings import Finding
from repro.errors import ReproError

__all__ = ["Baseline", "BaselineError", "DEFAULT_BASELINE"]

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE = ".ksr-analyze-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(ReproError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class Baseline:
    """An in-memory baseline: accepted finding keys plus bookkeeping."""

    #: (rule, path, span_hash) -> optional reviewer note.
    entries: dict[tuple[str, str, str], str] = field(default_factory=dict)
    #: Keys that suppressed at least one finding this run.
    used: set[tuple[str, str, str]] = field(default_factory=set)

    # -- persistence ---------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        p = Path(path)
        if not p.exists():
            return cls()
        try:
            doc = json.loads(p.read_text(encoding="utf-8"))
            entries = {
                (e["rule"], e["path"], e["span"]): e.get("note", "")
                for e in doc["entries"]
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise BaselineError(f"unreadable baseline {p}: {exc}") from exc
        return cls(entries=entries)

    @staticmethod
    def write(path: str | Path, findings: Iterable[Finding]) -> int:
        """Serialize ``findings`` as the new baseline; returns the count.

        Entries are sorted by (path, rule, span) so the file diffs
        cleanly; writing prunes anything stale by construction.
        """
        entries = sorted(
            {
                (f.rule, f.path, f.span): f.message
                for f in findings
            }.items()
        )
        doc = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"rule": rule, "path": fpath, "span": span, "note": note}
                for (rule, fpath, span), note in sorted(
                    entries, key=lambda kv: (kv[0][1], kv[0][0], kv[0][2])
                )
            ],
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        return len(doc["entries"])

    # -- application ---------------------------------------------------

    def apply(self, findings: Iterable[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (kept, n_suppressed), marking used keys."""
        kept: list[Finding] = []
        suppressed = 0
        for f in findings:
            key = f.key()
            if key in self.entries:
                self.used.add(key)
                suppressed += 1
            else:
                kept.append(f)
        return kept, suppressed

    def stale(self) -> list[dict[str, str]]:
        """Entries that suppressed nothing (candidates for expiry)."""
        return [
            {"rule": rule, "path": path, "span": span, "note": note}
            for (rule, path, span), note in sorted(self.entries.items())
            if (rule, path, span) not in self.used
        ]
