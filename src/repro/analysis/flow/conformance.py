"""KSR113 — protocol/model transition-relation conformance.

Two extractions of the same object, compared valuation by valuation:

* **Code relation** — a symbolic mini-interpreter walks the AST of
  ``coherence/protocol.py``'s entry points (``acquire_shared``,
  ``acquire_exclusive`` twice — once per ``atomic`` binding —
  ``release_subpage``, ``poststore``), evaluating branch conditions
  over a small propositional abstraction of the directory entry
  (:mod:`repro.analysis.flow.facts`) and recording the *directory
  calls* each feasible path performs.  Helper methods (``_fill``,
  ``_finish_shared_fill``, ``_invalidate_others``,
  ``_snarf_placeholders``) and scheduled continuations
  (``_complete_poststore``) are inlined; conditions outside the
  abstraction (combiner joins, in-flight prefetches, config flags)
  fork both ways unconstrained.
* **Model relation** — the abstract :class:`CoherenceModel` of
  :mod:`repro.analysis.modelcheck` is *executed*: BFS over its
  reachable states with a recording :class:`Directory` subclass
  captures, for every (action, abstract pre-state) pair, exactly which
  directory transitions the model performs and the actor's resulting
  state.

A transition is keyed by ``(op, valuation)`` where the valuation
assigns the seven guard atoms (``atomic``, ``owner_is_actor``,
``owner_exists``, ``has_valid``, ``created``, ``placeholders``,
``actor_valid``).  Conformance requires, for every valuation the model
reaches: the model's (outcome, directory actions) is realized by some
feasible code path, and no feasible non-identity code path deviates
from it.  Divergences become KSR113 findings whose counterexample
names the op, the guard valuation, and both sides' transitions.

Known extractor limits (documented in DESIGN §12): placeholder
snarfing mutates directory entries in place on both sides and is not
part of the compared action vocabulary; eviction (``evict``) concerns
*other* subpages inside ``_fill``'s replacement loop and is checked by
the model alone; valuations the abstract model never reaches (e.g.
shared copies coexisting with un-snarfed place-holders) are reported
as coverage, not failures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Optional

from repro.analysis.flow.facts import AND, NOT, OR, Env, Formula, FALSE, TRUE, lit
from repro.analysis.flow.findings import Finding
from repro.coherence.directory import Directory
from repro.errors import ReproError

__all__ = [
    "ATOMS",
    "OPS",
    "ExtractionError",
    "Transition",
    "CodeRelation",
    "extract_code_relation",
    "extract_model_relation",
    "conformance_findings",
]


class ExtractionError(ReproError):
    """The extractor could not build a coherent transition relation."""


#: Guard atoms, in valuation order.
ATOMS = (
    "atomic",
    "owner_is_actor",
    "owner_exists",
    "has_valid",
    "created",
    "placeholders",
    "actor_valid",
)

#: Ops compared between code and model (the model's ``evict`` is out of
#: scope — see the module docstring).
OPS = ("read", "write", "gsp", "rsp", "poststore")

#: (op, protocol method, concrete parameter bindings).
_OP_BINDINGS = {
    "read": ("acquire_shared", {}),
    "write": ("acquire_exclusive", {"atomic": False}),
    "gsp": ("acquire_exclusive", {"atomic": True}),
    "rsp": ("release_subpage", {}),
    "poststore": ("poststore", {}),
}

#: Directory methods whose calls are the compared action vocabulary.
_DIRECTORY_EFFECTS = frozenset(
    {
        "record_fill_shared",
        "record_fill_exclusive",
        "demote_owner",
        "invalidate_others",
        "set_atomic",
        "drop_copy",
    }
)

#: Protocol helpers inlined by the symbolic interpreter.
_INLINE_METHODS = frozenset(
    {
        "_fill",
        "_finish_shared_fill",
        "_invalidate_others",
        "_snarf_placeholders",
        "_complete_poststore",
    }
)

_MAX_INLINE_DEPTH = 10

Valuation = tuple[bool, ...]
Effect = tuple[Any, ...]
OutcomeEffects = tuple[str, tuple[Effect, ...]]


@dataclass(frozen=True)
class Transition:
    """One guarded transition, as reported in counterexamples."""

    op: str
    guard: tuple[tuple[str, bool], ...]
    outcome: str
    effects: tuple[Effect, ...]

    def describe(self) -> str:
        """Human-readable one-liner naming guard, outcome and actions."""
        guard = " ∧ ".join(("" if v else "¬") + a for a, v in self.guard)
        acts = ", ".join(
            e[0] + (f"({e[1]})" if len(e) > 1 else "") for e in self.effects
        )
        return f"{self.op}[{guard}] -> {self.outcome} via [{acts or 'no directory action'}]"


def _implies(a: str, b: str) -> Formula:
    return OR(lit(a, False), lit(b, True))


def _domain_formula() -> Formula:
    return AND(
        _implies("atomic", "owner_exists"),
        _implies("owner_is_actor", "owner_exists"),
        _implies("owner_exists", "has_valid"),
        _implies("has_valid", "created"),
        _implies("placeholders", "created"),
        _implies("owner_is_actor", "actor_valid"),
        _implies("actor_valid", "has_valid"),
        # an exclusive owner is the sole valid holder
        OR(lit("actor_valid", False), lit("owner_exists", False), lit("owner_is_actor", True)),
    )


def _precondition(op: str) -> Formula:
    """Mirror of ``CoherenceModel.enabled``: where the op is meaningful
    (identity re-requests and atomically blocked requests excluded)."""
    if op == "read":
        return AND(NOT(lit("actor_valid")), NOT(lit("atomic")))
    if op == "write":
        return AND(NOT(lit("owner_is_actor")), NOT(lit("atomic")))
    if op == "gsp":
        return NOT(lit("atomic"))
    if op == "rsp":
        return AND(lit("atomic"), lit("owner_is_actor"))
    if op == "poststore":
        return AND(lit("owner_is_actor"), NOT(lit("atomic")))
    raise ExtractionError(f"unknown op {op!r}")


def _eval_formula(f: Formula, v: dict[str, bool]) -> bool:
    if f.kind == "true":
        return True
    if f.kind == "false":
        return False
    if f.kind == "lit":
        return v[f.atom] == f.value
    if f.kind == "and":
        return all(_eval_formula(p, v) for p in f.parts)
    return any(_eval_formula(p, v) for p in f.parts)


def op_valuations(op: str) -> list[Valuation]:
    """Complete guard valuations in the op's domain."""
    domain = _domain_formula()
    precond = _precondition(op)
    out: list[Valuation] = []
    for bits in product((False, True), repeat=len(ATOMS)):
        v = dict(zip(ATOMS, bits))
        if _eval_formula(domain, v) and _eval_formula(precond, v):
            out.append(bits)
    return out


# ----------------------------------------------------------------------
# Code-side extraction: a symbolic mini-interpreter over protocol.py
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Frame:
    """Per-inlining scope: which names mean what inside one method."""

    actor: str
    entry_vars: frozenset[str] = frozenset()
    concrete: tuple[tuple[str, Any], ...] = ()
    depth: int = 0

    def lookup(self, name: str) -> Any:
        for key, value in self.concrete:
            if key == name:
                return value
        return _UNBOUND

    def bind(self, name: str, value: Any) -> "_Frame":
        return replace(self, concrete=((name, value), *self.concrete))

    def with_entry(self, name: str) -> "_Frame":
        return replace(self, entry_vars=self.entry_vars | {name})


_UNBOUND = object()


@dataclass
class _Path:
    """One symbolic execution path through an op's call tree."""

    env: Env
    pre: Env
    frame: _Frame
    dirty: frozenset[str] = frozenset()
    effects: tuple[Effect, ...] = ()
    outcome: Optional[str] = None
    #: "blocked" | "error" | "composite" | None
    marker: Optional[str] = None
    finished: bool = False
    #: Local function definitions visible on this path (shared dict —
    #: function defs are unconditional in the analyzed code).
    local_funcs: dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.marker is not None

    def fork(self) -> "_Path":
        return replace(self, local_funcs=dict(self.local_funcs))


#: env transfer per directory effect: (atoms forgotten, assumption builder)
def _transfer(path: _Path, effect_name: str, arg: Any) -> _Path:
    forget: tuple[str, ...]
    assume: Optional[Formula] = None
    if effect_name == "demote_owner":
        forget = ("owner_exists", "owner_is_actor", "atomic")
        assume = AND(NOT(lit("owner_exists")), NOT(lit("owner_is_actor")), NOT(lit("atomic")))
    elif effect_name == "record_fill_shared":
        forget = ATOMS
        assume = AND(
            NOT(lit("owner_exists")),
            NOT(lit("owner_is_actor")),
            NOT(lit("atomic")),
            lit("has_valid"),
            lit("created"),
            lit("actor_valid"),
        )
    elif effect_name == "record_fill_exclusive":
        forget = ATOMS
        assume = AND(
            lit("owner_exists"),
            lit("owner_is_actor"),
            lit("actor_valid"),
            lit("has_valid"),
            lit("created"),
            lit("atomic", bool(arg)),
        )
    elif effect_name == "set_atomic":
        forget = ("atomic",)
        assume = lit("atomic", bool(arg))
    elif effect_name == "invalidate_others":
        forget = ("owner_exists", "owner_is_actor", "atomic", "has_valid", "actor_valid", "placeholders")
    elif effect_name == "drop_copy":
        forget = ("owner_exists", "owner_is_actor", "atomic", "has_valid", "actor_valid", "placeholders")
    else:  # pragma: no cover - guarded by caller
        raise ExtractionError(f"no transfer for {effect_name}")
    env = path.env.forget(forget)
    if assume is not None:
        assumed = env.assume(assume)
        env = assumed if assumed is not None else env
    return replace(path, env=env, dirty=path.dirty | set(forget))


def _record_effect(path: _Path, name: str, arg: Any) -> _Path:
    effect: Effect = (name, arg) if name in ("record_fill_exclusive", "set_atomic") else (name,)
    outcome = path.outcome
    if name == "record_fill_shared":
        outcome = "SHARED"
    elif name == "record_fill_exclusive":
        outcome = "ATOMIC" if arg else "EXCLUSIVE"
    elif name == "set_atomic":
        outcome = "ATOMIC" if arg else "EXCLUSIVE"
    elif name == "demote_owner":
        # demoting *the actor's own* copy (poststore) yields SHARED; a
        # responding owner's demotion does not touch the actor state.
        determined = path.env.determined(["owner_is_actor"])
        if determined.get("owner_is_actor") is True:
            outcome = "SHARED"
    path = replace(path, effects=path.effects + (effect,), outcome=outcome)
    return _transfer(path, name, arg)


class _ProtocolExtractor:
    """Symbolically executes one protocol entry point per op."""

    def __init__(self, source: str, path: str):
        self.source = source
        self.path = path
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise ExtractionError(f"unparsable protocol source: {exc}") from exc
        self.cls: Optional[ast.ClassDef] = None
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "CoherenceProtocol":
                self.cls = node
        if self.cls is None:
            raise ExtractionError(f"{path}: class CoherenceProtocol not found")
        self.methods: dict[str, ast.FunctionDef] = {
            item.name: item for item in self.cls.body if isinstance(item, ast.FunctionDef)
        }

    # -- concrete evaluation ------------------------------------------

    def _concrete(self, node: ast.expr, frame: _Frame) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return frame.lookup(node.id)
        if isinstance(node, ast.Attribute):
            # SubpageState.SHARED and friends become enum-name tokens.
            if isinstance(node.value, ast.Name) and node.value.id == "SubpageState":
                return ("enum", node.attr)
            return _UNBOUND
        if isinstance(node, ast.IfExp):
            test = self._concrete(node.test, frame)
            if test is _UNBOUND:
                return _UNBOUND
            return self._concrete(node.body if test else node.orelse, frame)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            inner = self._concrete(node.operand, frame)
            if inner is _UNBOUND:
                return _UNBOUND
            return not inner
        return _UNBOUND

    # -- formula translation ------------------------------------------

    def _entry_attr(self, node: ast.expr, frame: _Frame) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in frame.entry_vars
        ):
            return node.attr
        return None

    _ATTR_ATOMS = {
        "atomic": "atomic",
        "has_valid_copy": "has_valid",
        "created": "created",
        "placeholders": "placeholders",
    }

    def _formula(self, node: ast.expr, frame: _Frame) -> Optional[Formula]:
        """Translate a branch condition; ``None`` when outside the
        abstraction (the caller forks both ways, unconstrained)."""
        if isinstance(node, ast.BoolOp):
            parts = [self._formula(v, frame) for v in node.values]
            if isinstance(node.op, ast.And):
                if any(p is not None and p.kind == "false" for p in parts):
                    return FALSE
                if any(p is None for p in parts):
                    return None
                return AND(*[p for p in parts if p is not None])
            if any(p is not None and p.kind == "true" for p in parts):
                return TRUE
            if any(p is None for p in parts):
                return None
            return OR(*[p for p in parts if p is not None])
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            inner = self._formula(node.operand, frame)
            return None if inner is None else NOT(inner)
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            return self._compare_formula(node, frame)
        attr = self._entry_attr(node, frame)
        if attr in self._ATTR_ATOMS:
            return lit(self._ATTR_ATOMS[attr])
        value = self._concrete(node, frame)
        if value is True:
            return TRUE
        if value is False:
            return FALSE
        return None

    def _compare_formula(self, node: ast.Compare, frame: _Frame) -> Optional[Formula]:
        left, op, right = node.left, node.ops[0], node.comparators[0]
        # entry.owner ==/!=/is/is-not (actor | None)
        for a, b in ((left, right), (right, left)):
            if self._entry_attr(a, frame) == "owner":
                if isinstance(b, ast.Constant) and b.value is None:
                    if isinstance(op, (ast.Is, ast.Eq)):
                        return NOT(lit("owner_exists"))
                    if isinstance(op, (ast.IsNot, ast.NotEq)):
                        return lit("owner_exists")
                if isinstance(b, ast.Name) and b.id == frame.actor:
                    if isinstance(op, (ast.Eq, ast.Is)):
                        return lit("owner_is_actor")
                    if isinstance(op, (ast.NotEq, ast.IsNot)):
                        return NOT(lit("owner_is_actor"))
                return None
        # concrete identity tests, e.g. `state is SubpageState.SHARED`
        lv, rv = self._concrete(left, frame), self._concrete(right, frame)
        if lv is not _UNBOUND and rv is not _UNBOUND:
            if isinstance(op, (ast.Is, ast.Eq)):
                return TRUE if lv == rv else FALSE
            if isinstance(op, (ast.IsNot, ast.NotEq)):
                return TRUE if lv != rv else FALSE
        return None

    # -- statement execution ------------------------------------------

    def run_op(self, op: str) -> list[_Path]:
        method_name, bindings = _OP_BINDINGS[op]
        method = self.methods.get(method_name)
        if method is None:
            raise ExtractionError(f"{self.path}: method {method_name} not found")
        actor = self._actor_param(method)
        frame = _Frame(actor=actor)
        for name, value in bindings.items():
            frame = frame.bind(name, value)
        base = Env().assume(AND(_domain_formula(), _precondition(op)))
        if base is None:  # pragma: no cover - domain is satisfiable
            raise ExtractionError(f"unsatisfiable domain for op {op}")
        path = _Path(env=base, pre=base, frame=frame)
        return self._exec_block(method.body, [path])

    @staticmethod
    def _actor_param(method: ast.FunctionDef) -> str:
        names = [a.arg for a in method.args.args if a.arg != "self"]
        if not names or names[0] != "cell_id":
            raise ExtractionError(
                f"{method.name}: expected leading 'cell_id' parameter, have {names[:1]}"
            )
        return "cell_id"

    def _exec_block(self, stmts: list[ast.stmt], paths: list[_Path]) -> list[_Path]:
        done: list[_Path] = []
        live = list(paths)
        for stmt in stmts:
            if not live:
                break
            next_live: list[_Path] = []
            for path in live:
                for out in self._exec_stmt(stmt, path):
                    if out.terminal or out.finished:
                        done.append(out)
                    else:
                        next_live.append(out)
            live = next_live
        return done + live

    def _exec_stmt(self, stmt: ast.stmt, path: _Path) -> list[_Path]:
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, path)
        if isinstance(stmt, ast.Return):
            return [replace(path, finished=True)]
        if isinstance(stmt, ast.Raise):
            return [replace(path, marker="error", finished=True)]
        if isinstance(stmt, ast.FunctionDef):
            path.local_funcs[stmt.name] = stmt
            return [path]
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, path)
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            return self._exec_call(stmt.value, path)
        # For/While bodies concern other subpages (eviction loops) or
        # local caches (snarf revalidation): no directory effects on the
        # subpage under analysis — skipped by design.
        return [path]

    def _exec_if(self, stmt: ast.If, path: _Path) -> list[_Path]:
        f = self._formula(stmt.test, path.frame)
        out: list[_Path] = []
        if f is None:
            out.extend(self._exec_block(stmt.body, [path.fork()]))
            out.extend(self._exec_block(stmt.orelse, [path.fork()]))
            return out
        for formula, block in ((f, stmt.body), (NOT(f), stmt.orelse)):
            env = path.env.assume(formula)
            if env is None:
                continue
            branch = replace(path.fork(), env=env)
            atoms = _formula_atoms(formula)
            if not (atoms & branch.dirty):
                pre = branch.pre.assume(formula)
                if pre is None:
                    continue
                branch = replace(branch, pre=pre)
            out.extend(self._exec_block(block, [branch]))
        return out

    def _exec_assign(self, stmt: ast.Assign, path: _Path) -> list[_Path]:
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        name = target.id if isinstance(target, ast.Name) else None
        value = stmt.value
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if name is not None and chain[-1:] == ["entry"] and "directory" in chain:
                return [replace(path, frame=path.frame.with_entry(name))]
            if chain and chain[-1] in _DIRECTORY_EFFECTS and "directory" in chain:
                return [self._directory_effect(value, path)]
            # other calls (transact, state_of, try_join, ...) are opaque
            return [path]
        if name is not None:
            concrete = self._concrete(value, path.frame)
            if concrete is not _UNBOUND:
                return [replace(path, frame=path.frame.bind(name, concrete))]
        return [path]

    def _exec_call(self, call: ast.Call, path: _Path) -> list[_Path]:
        chain = _attr_chain(call.func)
        if not chain:
            return [path]
        last = chain[-1]
        if last in _DIRECTORY_EFFECTS and "directory" in chain[:-1]:
            return [self._directory_effect(call, path)]
        if chain[0] == "self":
            if last == "_block_on_atomic":
                return [replace(path, marker="blocked", finished=True)]
            if last in ("acquire_shared", "acquire_exclusive", "get_subpage"):
                return [replace(path, marker="composite", finished=True)]
            if last in _INLINE_METHODS:
                return self._inline(last, call.args, call.keywords, path)
            if last in ("schedule", "schedule_at") and len(call.args) >= 2:
                cb = call.args[1]
                cb_chain = _attr_chain(cb)
                if (
                    len(cb_chain) == 2
                    and cb_chain[0] == "self"
                    and cb_chain[1] in _INLINE_METHODS
                ):
                    return self._inline(cb_chain[1], call.args[2:], [], path)
                return [path]
        if isinstance(call.func, ast.Name) and call.func.id in path.local_funcs:
            local = path.local_funcs[call.func.id]
            return self._exec_block(local.body, [path.fork()])
        return [path]

    def _directory_effect(self, call: ast.Call, path: _Path) -> _Path:
        name = _attr_chain(call.func)[-1]
        arg: Any = None
        if name == "set_atomic":
            if len(call.args) >= 3:
                arg = self._concrete(call.args[2], path.frame)
            if arg is _UNBOUND:
                raise ExtractionError(f"{self.path}: set_atomic flag not statically known")
        elif name == "record_fill_exclusive":
            arg = False
            for kw in call.keywords:
                if kw.arg == "atomic":
                    arg = self._concrete(kw.value, path.frame)
            if arg is _UNBOUND:
                raise ExtractionError(
                    f"{self.path}: record_fill_exclusive atomic= not statically known"
                )
        return _record_effect(path, name, arg)

    def _inline(
        self,
        name: str,
        args: list[ast.expr],
        keywords: list[ast.keyword],
        path: _Path,
    ) -> list[_Path]:
        if path.frame.depth >= _MAX_INLINE_DEPTH:
            raise ExtractionError(f"inline depth exceeded at {name}")
        method = self.methods.get(name)
        if method is None:
            return [path]
        params = [a.arg for a in method.args.args if a.arg != "self"]
        defaults = method.args.defaults
        callee = _Frame(actor="\0none", depth=path.frame.depth + 1)
        # positional defaults for trailing params
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            value = self._concrete(default, path.frame)
            if value is not _UNBOUND:
                callee = callee.bind(param, value)
        for kwarg in method.args.kwonlyargs:
            callee_defaults = dict(
                zip(
                    [a.arg for a in method.args.kwonlyargs],
                    method.args.kw_defaults,
                )
            )
            default = callee_defaults.get(kwarg.arg)
            if default is not None:
                value = self._concrete(default, path.frame)
                if value is not _UNBOUND:
                    callee = callee.bind(kwarg.arg, value)
        all_params = params + [a.arg for a in method.args.kwonlyargs]
        for param, arg in zip(params, args):
            callee = self._bind_arg(callee, param, arg, path.frame)
        for kw in keywords:
            if kw.arg in all_params:
                callee = self._bind_arg(callee, kw.arg, kw.value, path.frame)
        saved = path.frame
        inner = replace(path, frame=callee)
        results = self._exec_block(method.body, [inner])
        out: list[_Path] = []
        for r in results:
            if r.terminal:
                out.append(r)
            else:
                out.append(replace(r, finished=False, frame=saved))
        return out

    def _bind_arg(self, callee: _Frame, param: str, arg: ast.expr, caller: _Frame) -> _Frame:
        if isinstance(arg, ast.Name) and arg.id == caller.actor:
            return replace(callee, actor=param)
        value = self._concrete(arg, caller)
        if value is not _UNBOUND:
            return callee.bind(param, value)
        return callee

    def op_location(self, op: str) -> tuple[int, int, str]:
        method_name, _ = _OP_BINDINGS[op]
        node = self.methods[method_name]
        snippet = ast.get_source_segment(self.source, node) or method_name
        # hash only the signature line: the whole body would churn the
        # baseline on every edit, defeating span-hash stability
        first_line = snippet.splitlines()[0] if snippet else method_name
        return node.lineno, node.col_offset, first_line


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _formula_atoms(f: Formula) -> set[str]:
    if f.kind == "lit":
        return {f.atom}
    out: set[str] = set()
    for p in f.parts:
        out |= _formula_atoms(p)
    return out


def _clauses_satisfied(env: Env, v: dict[str, bool]) -> bool:
    return all(any(v[a] == val for a, val in clause) for clause in env.clauses)


@dataclass
class CodeRelation:
    """The protocol's extracted relation, indexed for the diff."""

    #: (op, valuation) -> set of (outcome, effects) across feasible paths.
    transitions: dict[tuple[str, Valuation], frozenset[OutcomeEffects]]
    #: op -> (line, col, signature snippet) for findings.
    op_locations: dict[str, tuple[int, int, str]]
    #: op -> number of symbolic paths explored.
    n_paths: dict[str, int]
    path: str

    def lookup(self, op: str, valuation: Valuation) -> frozenset[OutcomeEffects]:
        """Feasible (outcome, effects) pairs at one guard valuation."""
        return self.transitions.get((op, valuation), frozenset())


def _default_protocol_source() -> tuple[str, str]:
    from repro.analysis.lint import repro_root

    path = repro_root() / "coherence" / "protocol.py"
    return path.read_text(encoding="utf-8"), "coherence/protocol.py"


def extract_code_relation(
    source: Optional[str] = None, path: str = "coherence/protocol.py"
) -> CodeRelation:
    """Extract the guarded transition relation from protocol source."""
    if source is None:
        source, path = _default_protocol_source()
    extractor = _ProtocolExtractor(source, path)
    transitions: dict[tuple[str, Valuation], set[OutcomeEffects]] = {}
    n_paths: dict[str, int] = {}
    locations: dict[str, tuple[int, int, str]] = {}
    for op in OPS:
        paths = extractor.run_op(op)
        n_paths[op] = len(paths)
        locations[op] = extractor.op_location(op)
        for valuation in op_valuations(op):
            v = dict(zip(ATOMS, valuation))
            bucket = transitions.setdefault((op, valuation), set())
            for p in paths:
                if p.marker == "composite":
                    continue
                if not _clauses_satisfied(p.pre, v):
                    continue
                if p.marker is not None:
                    bucket.add((p.marker, ()))
                elif p.effects:
                    bucket.add((p.outcome or "none", p.effects))
                else:
                    bucket.add(("none", ()))
    return CodeRelation(
        transitions={k: frozenset(s) for k, s in transitions.items()},
        op_locations=locations,
        n_paths=n_paths,
        path=path,
    )


# ----------------------------------------------------------------------
# Model-side extraction: execute the abstract model, record its actions
# ----------------------------------------------------------------------


class _RecordingDirectory(Directory):
    """A Directory that journals the transition calls made on it."""

    def __init__(self) -> None:
        super().__init__()
        self.calls: list[Effect] = []

    def record_fill_shared(self, subpage_id: int, cell_id: int) -> None:
        self.calls.append(("record_fill_shared",))
        super().record_fill_shared(subpage_id, cell_id)

    def record_fill_exclusive(
        self, subpage_id: int, cell_id: int, *, atomic: bool = False
    ) -> None:
        self.calls.append(("record_fill_exclusive", atomic))
        super().record_fill_exclusive(subpage_id, cell_id, atomic=atomic)

    def demote_owner(self, subpage_id: int) -> None:
        self.calls.append(("demote_owner",))
        super().demote_owner(subpage_id)

    def invalidate_others(self, subpage_id: int, keep_cell: int) -> set[int]:
        self.calls.append(("invalidate_others",))
        return super().invalidate_others(subpage_id, keep_cell)

    def set_atomic(self, subpage_id: int, cell_id: int, value: bool) -> None:
        self.calls.append(("set_atomic", value))
        super().set_atomic(subpage_id, cell_id, value)

    def drop_copy(self, subpage_id: int, cell_id: int) -> None:
        self.calls.append(("drop_copy",))
        super().drop_copy(subpage_id, cell_id)


def extract_model_relation(n_cells: int = 3) -> dict[tuple[str, Valuation], OutcomeEffects]:
    """Enumerate the abstract model's transitions over guard valuations.

    BFS over :class:`~repro.analysis.modelcheck.CoherenceModel`'s
    reachable states with a recording directory; every (action,
    abstract pre-state) pair contributes its (outcome, directory
    actions) under the pre-state's valuation.  Distinct concrete states
    sharing a valuation must agree — disagreement means the valuation
    atoms no longer determine the model's behaviour and the abstraction
    must grow (raised as :class:`ExtractionError`).
    """
    from repro.analysis.modelcheck import CoherenceModel

    class _RecordingModel(CoherenceModel):
        recorded: _RecordingDirectory

        def _directory_for(self, created, cells):  # type: ignore[override]
            base = super()._directory_for(created, cells)
            d = _RecordingDirectory()
            d._entries = base._entries
            self.recorded = d
            return d

    model = _RecordingModel(n_cells)
    relation: dict[tuple[str, Valuation], OutcomeEffects] = {}
    init = model.initial()
    seen = {init}
    queue = [init]
    while queue:
        state = queue.pop()
        for action in model.enabled(state):
            kind, cell = action
            valuation = _abstract_valuation(state, cell)
            new = model.apply(state, action)
            if kind in OPS:
                outcome = _actor_outcome(new, cell)
                effects = tuple(model.recorded.calls)
                key = (kind, valuation)
                existing = relation.get(key)
                if existing is not None and existing != (outcome, effects):
                    raise ExtractionError(
                        f"abstract model not a function of the guard atoms: "
                        f"{kind} at {dict(zip(ATOMS, valuation))} yields both "
                        f"{existing} and {(outcome, effects)}"
                    )
                relation[key] = (outcome, effects)
            if new not in seen:
                seen.add(new)
                queue.append(new)
    return relation


def _abstract_valuation(state: Any, actor: int) -> Valuation:
    from repro.coherence.states import SubpageState

    created, copies = state
    states = [c[0] for c in copies]
    owner = next(
        (i for i, st in enumerate(states) if st in (SubpageState.EXCLUSIVE, SubpageState.ATOMIC)),
        None,
    )
    v = {
        "atomic": owner is not None and states[owner] is SubpageState.ATOMIC,
        "owner_is_actor": owner == actor,
        "owner_exists": owner is not None,
        "has_valid": any(st is not None and st.valid for st in states),
        "created": created,
        "placeholders": any(st is SubpageState.INVALID for st in states),
        "actor_valid": states[actor] is not None and states[actor].valid,
    }
    return tuple(v[a] for a in ATOMS)


def _actor_outcome(state: Any, actor: int) -> str:
    _, copies = state
    st = copies[actor][0]
    return st.name if st is not None else "absent"


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------


def conformance_findings(
    protocol_source: Optional[str] = None,
    protocol_path: str = "coherence/protocol.py",
    n_cells: int = 3,
) -> tuple[list[Finding], dict[str, Any]]:
    """Diff the code relation against the model relation.

    Returns ``(findings, stats)``; each finding's ``detail`` carries
    the offending transition (op, guard valuation, both sides).
    """
    code = extract_code_relation(protocol_source, protocol_path)
    model = extract_model_relation(n_cells)
    findings: list[Finding] = []
    n_checked = 0
    n_agree = 0
    uncovered: list[str] = []
    for op in OPS:
        line, col, signature = code.op_locations[op]
        for valuation in op_valuations(op):
            n_checked += 1
            guard = tuple(zip(ATOMS, valuation))
            m = model.get((op, valuation))
            outcomes = code.lookup(op, valuation)
            real = {o for o in outcomes if o[0] not in ("none", "blocked")}
            if m is None:
                if real:
                    uncovered.append(Transition(op, guard, *next(iter(real))).describe())
                continue
            model_t = Transition(op, guard, m[0], m[1])
            if m not in real:
                got = (
                    "; ".join(sorted(Transition(op, guard, o, e).describe() for o, e in real))
                    or "no feasible transition (blocked or identity only)"
                )
                findings.append(
                    Finding(
                        rule="KSR113",
                        path=code.path,
                        line=line,
                        col=col,
                        message=(
                            f"protocol lacks a transition the abstract model requires: "
                            f"model {model_t.describe()}; code has {got}"
                        ),
                        snippet=f"{signature} :: {op} :: missing",
                        detail={
                            "op": op,
                            "guard": dict(guard),
                            "model": model_t.describe(),
                            "code": sorted(
                                Transition(op, guard, o, e).describe() for o, e in real
                            ),
                            "kind": "missing_in_code",
                        },
                    )
                )
            for o, e in sorted(real):
                if (o, e) != m:
                    code_t = Transition(op, guard, o, e)
                    findings.append(
                        Finding(
                            rule="KSR113",
                            path=code.path,
                            line=line,
                            col=col,
                            message=(
                                f"protocol transition the abstract model forbids: "
                                f"code {code_t.describe()}; model requires {model_t.describe()}"
                            ),
                            snippet=f"{signature} :: {op} :: {code_t.describe()}",
                            detail={
                                "op": op,
                                "guard": dict(guard),
                                "model": model_t.describe(),
                                "code": [code_t.describe()],
                                "kind": "forbidden_in_model",
                            },
                        )
                    )
            if m in real and all((o, e) == m for o, e in real):
                n_agree += 1
    stats = {
        "valuations_checked": n_checked,
        "valuations_agreeing": n_agree,
        "model_transitions": len(model),
        "code_paths": dict(code.n_paths),
        "uncovered_code_transitions": uncovered,
    }
    return findings, stats
