"""KSR112 — cache-key purity.

:func:`repro.experiments.sweep.point_key` canonicalizes every kwarg
into the sweep-cache key; a type without a stable field-wise ``repr``
or an explicit ``cache_token`` raises ``TypeError`` at runtime (and,
worse, *almost*-stable reprs silently split or merge cache entries).
This pass finds every call that feeds kwargs into the cache key —
``SweepRunner.run(func, **kwargs)``, ``SweepRunner.map(func, calls)``
and direct ``point_key(...)`` calls — statically resolves the *type*
of each kwarg value, and flags types that fail
:meth:`repro.analysis.flow.program.Program.class_is_stable_key`.

Resolution is deliberately shallow and honest: constants, direct
constructor calls, locally assigned names, annotated parameters
(``plan: FaultPlan``, ``obs: ObsSpec | None``) and return annotations
of locally defined helpers.  Values it cannot resolve are *counted*
(``unresolved`` in the stats), never guessed at — the pass stays
silent rather than crying wolf.

For ``.map(func, calls)`` the calls list is chased through the local
idioms the experiments actually use: a list literal or comprehension
of ``dict(...)`` / ``{...}`` elements, ``calls.append(dict(...))``
augmentation loops, and ``call["key"] = value`` adornment loops.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Iterable, Optional

from repro.analysis.flow.findings import Finding
from repro.analysis.flow.program import FunctionInfo, Program, load_program

__all__ = ["purity_findings"]

#: Builtin / stdlib types with value-stable reprs.
_STABLE_BUILTINS = frozenset(
    {"int", "float", "bool", "str", "bytes", "complex", "tuple", "list", "dict", "None"}
)

#: Typing wrappers to see through when classifying annotations.
_TRANSPARENT = frozenset({"Optional", "Union", "Sequence", "Iterable", "List", "Tuple"})

_MAX_NAME_DEPTH = 4


def _annotation_names(text: str) -> list[str]:
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text)


def _classify_annotation(program: Program, text: str) -> tuple[str, Optional[str]]:
    """('stable'|'unstable'|'unknown', offending class name or None)."""
    names = [n for n in _annotation_names(text) if n not in _TRANSPARENT]
    verdict = "stable"
    for name in names:
        if name in _STABLE_BUILTINS:
            continue
        known = program.class_is_stable_key(name)
        if known is True:
            continue
        if known is False:
            return "unstable", name
        verdict = "unknown"
    return verdict, None


class _Scope:
    """Local single-assignment bindings of one function body."""

    def __init__(self, body: list[ast.stmt]):
        self.assignments: dict[str, ast.expr] = {}
        self.appends: dict[str, list[ast.expr]] = {}
        self.adornments: dict[str, list[tuple[str, ast.expr]]] = {}
        self.loop_iters: dict[str, ast.expr] = {}
        self._collect(body)

    def _collect(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        self.assignments[target.id] = node.value
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        # call["key"] = value — chased via the loop var
                        self.adornments.setdefault(target.value.id, []).append(
                            (target.slice.value, node.value)
                        )
                elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                    self.loop_iters[node.target.id] = node.iter
                elif (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "append"
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.args
                ):
                    self.appends.setdefault(node.value.func.value.id, []).append(
                        node.value.args[0]
                    )


class _PurityPass:
    def __init__(self, program: Program):
        self.program = program
        self.findings: list[Finding] = []
        self.n_sites = 0
        self.n_kwargs = 0
        self.n_unresolved = 0

    # -- value classification -----------------------------------------

    def _classify_value(
        self,
        value: ast.expr,
        info: FunctionInfo,
        scope: _Scope,
        depth: int = 0,
    ) -> tuple[str, Optional[str]]:
        """('stable'|'unstable'|'unknown', offending class or None)."""
        if isinstance(value, ast.Constant):
            return "stable", None
        if isinstance(value, (ast.List, ast.Tuple)):
            worst = "stable"
            for elt in value.elts:
                v, cls = self._classify_value(elt, info, scope, depth + 1)
                if v == "unstable":
                    return v, cls
                if v == "unknown":
                    worst = "unknown"
            return worst, None
        if isinstance(value, ast.BinOp):
            return "stable", None  # arithmetic on kwargs yields numbers
        if isinstance(value, ast.IfExp):
            v1, c1 = self._classify_value(value.body, info, scope, depth + 1)
            v2, c2 = self._classify_value(value.orelse, info, scope, depth + 1)
            if "unstable" in (v1, v2):
                return "unstable", c1 or c2
            if "unknown" in (v1, v2):
                return "unknown", None
            return "stable", None
        if isinstance(value, ast.Call):
            return self._classify_call(value, info, scope)
        if isinstance(value, ast.Name):
            return self._classify_name(value.id, info, scope, depth)
        return "unknown", None

    def _classify_call(
        self, call: ast.Call, info: FunctionInfo, scope: _Scope
    ) -> tuple[str, Optional[str]]:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return "unknown", None
        if name in _STABLE_BUILTINS:
            return "stable", None
        known = self.program.class_is_stable_key(name)
        if known is not None:
            return ("stable" if known else "unstable"), (None if known else name)
        resolved = self.program.resolve_call(info.relpath, call)
        if resolved is not None and resolved.returns:
            return _classify_annotation(self.program, resolved.returns)
        return "unknown", None

    def _classify_name(
        self, name: str, info: FunctionInfo, scope: _Scope, depth: int
    ) -> tuple[str, Optional[str]]:
        if depth > _MAX_NAME_DEPTH:
            return "unknown", None
        ann = info.annotations.get(name)
        if ann is not None:
            return _classify_annotation(self.program, ann)
        assigned = scope.assignments.get(name)
        if assigned is not None:
            return self._classify_value(assigned, info, scope, depth + 1)
        loop_iter = scope.loop_iters.get(name)
        if loop_iter is not None:
            return self._classify_value(loop_iter, info, scope, depth + 1)
        return "unknown", None

    # -- call-site discovery ------------------------------------------

    def run(self) -> None:
        for info in self.program.functions_by_qualname.values():
            scope = _Scope(info.node.body)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    self._visit_call(node, info, scope)

    def _visit_call(self, call: ast.Call, info: FunctionInfo, scope: _Scope) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "point_key":
            self.n_sites += 1
            self._check_kwargs(call.keywords, call, info, scope)
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver_is_runner = self._runner_receiver(func.value, scope)
        if func.attr == "run" and receiver_is_runner:
            self.n_sites += 1
            self._check_kwargs(call.keywords, call, info, scope)
        elif func.attr == "map" and receiver_is_runner and len(call.args) >= 2:
            self.n_sites += 1
            self._check_calls_list(call.args[1], call, info, scope)

    def _runner_receiver(self, node: ast.expr, scope: _Scope) -> bool:
        """`runner.`, `args.runner.`, `self.runner.` or a local name
        constructed as ``SweepRunner(...)``."""
        if isinstance(node, ast.Attribute):
            return node.attr == "runner"
        if not isinstance(node, ast.Name):
            return False
        if node.id == "runner":
            return True
        assigned = scope.assignments.get(node.id)
        if isinstance(assigned, ast.Call):
            f = assigned.func
            cname = f.id if isinstance(f, ast.Name) else getattr(f, "attr", None)
            return cname == "SweepRunner"
        return False

    # -- kwarg checking ------------------------------------------------

    def _check_kwargs(
        self,
        keywords: list[ast.keyword],
        site: ast.Call,
        info: FunctionInfo,
        scope: _Scope,
    ) -> None:
        for kw in keywords:
            if kw.arg is None or kw.arg == "on_result":
                continue
            self._check_one(kw.arg, kw.value, site, info, scope)

    def _check_calls_list(
        self,
        calls_expr: ast.expr,
        site: ast.Call,
        info: FunctionInfo,
        scope: _Scope,
    ) -> None:
        for dict_expr, loop_var in self._resolve_calls(calls_expr, scope):
            for key, value in self._dict_items(dict_expr):
                self._check_one(key, value, site, info, scope)
            if loop_var is not None:
                for key, value in scope.adornments.get(loop_var, []):
                    self._check_one(key, value, site, info, scope)

    def _resolve_calls(
        self, expr: ast.expr, scope: _Scope
    ) -> Iterable[tuple[ast.expr, Optional[str]]]:
        """Yield (per-point dict expression, adornment loop var)."""
        if isinstance(expr, ast.Name):
            name = expr.id
            # `for call in calls: call["obs"] = obs` adorns via this var
            loop_var = next(
                (
                    var
                    for var, it in scope.loop_iters.items()
                    if isinstance(it, ast.Name) and it.id == name
                ),
                None,
            )
            assigned = scope.assignments.get(name)
            if assigned is not None:
                for dict_expr, _ in self._resolve_calls(assigned, scope):
                    yield dict_expr, loop_var
            for appended in scope.appends.get(name, []):
                yield appended, loop_var
            return
        if isinstance(expr, ast.List):
            for elt in expr.elts:
                if isinstance(elt, ast.Name):
                    assigned = scope.assignments.get(elt.id)
                    if assigned is not None:
                        yield assigned, elt.id
                else:
                    yield elt, None
            return
        if isinstance(expr, ast.ListComp):
            yield expr.elt, None
            return
        if isinstance(expr, ast.Call):
            # list(generator) / iter(...) wrappers
            f = expr.func
            if isinstance(f, ast.Name) and f.id in ("list", "iter", "tuple") and expr.args:
                inner = expr.args[0]
                if isinstance(inner, ast.GeneratorExp):
                    yield inner.elt, None
                else:
                    yield from self._resolve_calls(inner, scope)

    def _dict_items(self, expr: ast.expr) -> list[tuple[str, ast.expr]]:
        if isinstance(expr, ast.Call):
            f = expr.func
            if isinstance(f, ast.Name) and f.id == "dict":
                return [(kw.arg, kw.value) for kw in expr.keywords if kw.arg is not None]
        if isinstance(expr, ast.Dict):
            return [
                (k.value, v)
                for k, v in zip(expr.keys, expr.values)
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            ]
        if isinstance(expr, ast.Name):
            return []  # handled by the caller through scope.assignments
        return []

    def _check_one(
        self,
        kwarg: str,
        value: ast.expr,
        site: ast.Call,
        info: FunctionInfo,
        scope: _Scope,
    ) -> None:
        self.n_kwargs += 1
        verdict, offender = self._classify_value(value, info, scope)
        if verdict == "unknown":
            self.n_unresolved += 1
            return
        if verdict == "stable":
            return
        module = self.program.modules.get(info.relpath)
        snippet = ""
        if module is not None:
            snippet = ast.get_source_segment(module.source, site) or ""
            snippet = snippet.splitlines()[0] if snippet else ""
        self.findings.append(
            Finding(
                rule="KSR112",
                path=info.relpath,
                line=site.lineno,
                col=site.col_offset,
                message=(
                    f"cache-key kwarg {kwarg!r} has type {offender} which defines "
                    f"neither a stable __repr__ nor a cache_token — point_key() "
                    f"will raise TypeError (or worse, key on the object address)"
                ),
                snippet=f"{snippet} :: {kwarg}",
                detail={"kwarg": kwarg, "type": offender},
            )
        )


def purity_findings(
    program: Optional[Program] = None,
) -> tuple[list[Finding], dict[str, Any]]:
    """Run KSR112 over the program; returns (findings, stats)."""
    if program is None:
        program = load_program()
    pass_ = _PurityPass(program)
    pass_.run()
    stats = {
        "call_sites": pass_.n_sites,
        "kwargs_checked": pass_.n_kwargs,
        "kwargs_unresolved": pass_.n_unresolved,
    }
    return pass_.findings, stats
