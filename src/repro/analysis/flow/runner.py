"""Orchestration for ``ksr-analyze flow``.

Loads the program once, runs the three pillars (determinism, purity,
conformance), and folds the results into one :class:`FlowReport` the
CLI can render in any format and filter through a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.analysis.flow.conformance import ExtractionError, conformance_findings
from repro.analysis.flow.determinism import determinism_findings
from repro.analysis.flow.findings import Finding
from repro.analysis.flow.program import Program, load_program
from repro.analysis.flow.purity import purity_findings

__all__ = ["FlowReport", "run_flow"]


@dataclass
class FlowReport:
    """Everything one flow run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: pass name -> {"ok": bool, "stats": {...}} (ok = pass *ran*;
    #: findings decide success separately).
    passes: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and all(p["ok"] for p in self.passes.values())


def run_flow(
    root: Optional[Path] = None,
    sources: Optional[dict[str, str]] = None,
    *,
    conformance: bool = True,
) -> FlowReport:
    """Run all flow passes over the package (or explicit sources).

    ``sources`` short-circuits program loading for tests; conformance
    still reads the protocol from the supplied sources when present,
    and is skipped when they do not include ``coherence/protocol.py``.
    """
    program: Program = load_program(root=root, sources=sources)
    report = FlowReport()

    det, det_stats = determinism_findings(program)
    report.findings.extend(det)
    report.passes["determinism"] = {"ok": True, "stats": det_stats}

    pur, pur_stats = purity_findings(program)
    report.findings.extend(pur)
    report.passes["purity"] = {"ok": True, "stats": pur_stats}

    if conformance:
        protocol_source: Optional[str] = None
        run_conformance = True
        if sources is not None:
            protocol_source = sources.get("coherence/protocol.py")
            run_conformance = protocol_source is not None
        if run_conformance:
            try:
                conf, conf_stats = conformance_findings(protocol_source)
                report.findings.extend(conf)
                report.passes["conformance"] = {"ok": True, "stats": conf_stats}
            except ExtractionError as exc:
                report.passes["conformance"] = {"ok": False, "error": str(exc)}
    return report
