"""KSR110/KSR111 — determinism dataflow and alias-aware mutation.

KSR110 tracks *nondeterminism sources* through assignments, container
construction, loops and (interprocedurally) function calls until one
reaches a *determinism sink* — a call whose arguments must be pure
functions of the experiment configuration and master seed:

* sources — wall-clock reads (``time.time`` & friends), unseeded RNGs
  (``random.*``, bare ``np.random.default_rng()``, ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*``), address-dependent values (``id()``,
  salted builtin ``hash()``), and *iteration-order* sources (set
  displays, ``set()``/``frozenset()`` construction, unsorted
  ``os.listdir``/``glob``/``Path.iterdir`` listings);
* sinks — ``Engine.schedule``/``schedule_at``, ``point_key``, plus
  whatever each subsystem declares via ``__ksr_flow_sinks__``
  (see :mod:`repro.analysis.flow.program`);
* sanitizers — ``sorted``/``min``/``max``/``sum`` erase order taint
  (the value no longer depends on iteration order); ``len``/``any``/
  ``all``/``bool`` erase everything.

Taint is a set of *causes*; parameter causes make function summaries:
a function whose return carries a parameter's taint propagates its
callers' taint, and a function that passes a parameter into a sink
turns tainted call sites into findings.  Summaries are iterated to a
(small, bounded) fixpoint before the reporting pass.

KSR111 closes the lint's documented aliasing gap for good: local
variables assigned (directly or transitively) from a ``*.local_cache``
chain are tracked as aliases, and mutator calls or ``_states``
writes through an alias outside the protocol whitelist are flagged.
The fixed per-file lint (KSR101) catches the single-assignment case;
this pass follows arbitrarily many hops.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.analysis.flow.findings import Finding
from repro.analysis.flow.program import Program, load_program
from repro.analysis.lint import MUTATION_ALLOWED, MUTATOR_METHODS

__all__ = ["determinism_findings", "DEFAULT_SINKS"]

#: Built-in sink call names (last attribute of the callee); merged with
#: every ``__ksr_flow_sinks__`` declaration in the analyzed program.
DEFAULT_SINKS = frozenset({"schedule", "schedule_at", "point_key"})

#: callee chain suffixes that *produce* nondeterminism: (kind, reason).
_VALUE_SOURCES = {
    ("time", "time"): "wall-clock time.time()",
    ("time", "monotonic"): "wall-clock time.monotonic()",
    ("time", "perf_counter"): "wall-clock time.perf_counter()",
    ("time", "time_ns"): "wall-clock time.time_ns()",
    ("datetime", "now"): "wall-clock datetime.now()",
    ("datetime", "utcnow"): "wall-clock datetime.utcnow()",
    ("datetime", "today"): "wall-clock datetime.today()",
    ("date", "today"): "wall-clock date.today()",
    ("os", "urandom"): "os.urandom()",
    ("uuid", "uuid1"): "uuid.uuid1()",
    ("uuid", "uuid4"): "uuid.uuid4()",
}

_ORDER_SOURCE_ATTRS = {
    "listdir": "unsorted os.listdir()",
    "scandir": "unsorted os.scandir()",
    "iterdir": "unsorted Path.iterdir()",
    "glob": "unsorted glob()",
    "iglob": "unsorted iglob()",
    "rglob": "unsorted rglob()",
}

#: Calls that erase iteration-order dependence from their argument.
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum"})
#: Calls whose result no longer depends on the argument's value at all
#: (cardinality / truthiness only).
_FULL_SANITIZERS = frozenset({"len", "any", "all", "bool"})

_MAX_SUMMARY_ROUNDS = 4


@dataclass(frozen=True)
class _Cause:
    """One reason a value is suspect: a source or a parameter."""

    kind: str  # "value" | "order" | "param"
    reason: str
    line: int


Taint = frozenset  # of _Cause


@dataclass
class _Summary:
    """Interprocedural behaviour of one function."""

    ret: Taint = frozenset()
    #: Parameters whose taint flows to the return value.
    param_ret: frozenset = frozenset()
    #: Parameter name -> sink call name it reaches inside the body.
    param_sink: dict[str, str] = field(default_factory=dict)

    def signature(self) -> tuple:
        return (self.ret, self.param_ret, tuple(sorted(self.param_sink.items())))


def _attr_chain(node: ast.expr) -> list[str]:
    """Dotted callee names, skipping over calls and subscripts."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, (ast.Call, ast.Subscript)):
            node = node.func if isinstance(node, ast.Call) else node.value
        else:
            break
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _source_cause(call: ast.Call) -> Optional[_Cause]:
    chain = _attr_chain(call.func)
    if not chain:
        return None
    line = call.lineno
    if len(chain) >= 2 and (chain[-2], chain[-1]) in _VALUE_SOURCES:
        return _Cause("value", _VALUE_SOURCES[(chain[-2], chain[-1])], line)
    if chain[-1] in _ORDER_SOURCE_ATTRS:
        return _Cause("order", _ORDER_SOURCE_ATTRS[chain[-1]], line)
    if chain == ["id"]:
        return _Cause("value", "id() — address-dependent", line)
    if chain == ["hash"]:
        return _Cause("value", "builtin hash() — salted per process", line)
    if chain[-1] in ("set", "frozenset") and len(chain) == 1:
        return _Cause("order", f"{chain[-1]}() iteration order", line)
    if chain[0] == "random" and len(chain) == 2:
        return _Cause("value", f"stdlib random.{chain[1]}()", line)
    if chain[0] == "secrets":
        return _Cause("value", f"secrets.{chain[-1]}()", line)
    if chain[-1] == "default_rng" and not call.args and not call.keywords:
        return _Cause("value", "unseeded default_rng()", line)
    return None


class _FunctionFlow:
    """One pass of taint propagation over a single function body."""

    def __init__(
        self,
        analyzer: "_Analyzer",
        relpath: str,
        params: Iterable[str],
        *,
        report: bool,
    ):
        self.analyzer = analyzer
        self.relpath = relpath
        self.scope: dict[str, Taint] = {
            p: frozenset({_Cause("param", p, 0)}) for p in params
        }
        self.report = report
        self.ret: Taint = frozenset()
        self.param_sink: dict[str, str] = {}

    # -- expression taint ---------------------------------------------

    def taint_of(self, node: Optional[ast.expr]) -> Taint:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return self.scope.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Set):
            inner = _union(self.taint_of(e) for e in node.elts)
            return inner | {_Cause("order", "set display iteration order", node.lineno)}
        if isinstance(node, ast.SetComp):
            return self._comp_taint(node, order_source=True)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comp_taint(node, order_source=False)
        if isinstance(node, ast.DictComp):
            return self._comp_taint(node, order_source=False)
        if isinstance(node, ast.Attribute):
            return self.taint_of(node.value)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value) | self.taint_of(
                node.slice if isinstance(node.slice, ast.expr) else None
            )
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left) | self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            return _union(self.taint_of(v) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) | self.taint_of(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple)):
            return _union(self.taint_of(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return _union(self.taint_of(v) for v in node.values if v is not None)
        if isinstance(node, ast.JoinedStr):
            return _union(
                self.taint_of(v.value)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            )
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Compare):
            # comparisons and membership tests yield order-free booleans
            return frozenset()
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return frozenset()

    def _comp_taint(self, node: Any, *, order_source: bool) -> Taint:
        saved = dict(self.scope)
        taint: Taint = frozenset()
        for gen in node.generators:
            iter_taint = self.taint_of(gen.iter)
            for name in _target_names(gen.target):
                self.scope[name] = iter_taint
            taint |= iter_taint
        if isinstance(node, ast.DictComp):
            taint |= self.taint_of(node.key) | self.taint_of(node.value)
        else:
            taint |= self.taint_of(node.elt)
        self.scope = saved
        if order_source:
            taint = taint | {_Cause("order", "set comprehension iteration order", node.lineno)}
        return taint

    def _call_taint(self, node: ast.Call) -> Taint:
        arg_taints = [self.taint_of(a) for a in node.args]
        kw_taints = {kw.arg: self.taint_of(kw.value) for kw in node.keywords}
        combined = _union([*arg_taints, *kw_taints.values()])
        if isinstance(node.func, ast.Attribute):
            # method call: the receiver's taint flows into the result
            # (e.g. ``default_rng().random()``)
            combined |= self.taint_of(node.func.value)
        source = _source_cause(node)
        if source is not None:
            return combined | {source}
        chain = _attr_chain(node.func)
        name = chain[-1] if chain else ""
        if name in _FULL_SANITIZERS:
            return frozenset()
        if name in _ORDER_SANITIZERS:
            return frozenset(c for c in combined if c.kind != "order")
        info = self.analyzer.resolve(self.relpath, node)
        if info is not None:
            summary = self.analyzer.summaries.get(info.qualname)
            if summary is not None:
                bound = self._bind_args(info, node, arg_taints, kw_taints)
                out = summary.ret
                for param, taint in bound.items():
                    if param in summary.param_ret:
                        out |= taint
                return out
        return combined

    def _bind_args(
        self,
        info: Any,
        node: ast.Call,
        arg_taints: list[Taint],
        kw_taints: dict[Optional[str], Taint],
    ) -> dict[str, Taint]:
        params = [a.arg for a in info.node.args.args]
        if params and params[0] == "self":
            params = params[1:]
        bound: dict[str, Taint] = {}
        for param, taint in zip(params, arg_taints):
            bound[param] = taint
        for kw, taint in kw_taints.items():
            if kw is not None and kw in params + [a.arg for a in info.node.args.kwonlyargs]:
                bound[kw] = taint
            elif kw is None:
                # **spread: attribute the taint to every remaining param
                for param in params:
                    bound.setdefault(param, frozenset())
                    bound[param] |= taint
        return bound

    # -- statements ----------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        # Two passes pick up loop-carried taint without a full fixpoint;
        # findings are recorded on the final pass only.
        report = self.report
        self.report = False
        self._block(body)
        self.report = report
        self._block(body)

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(stmt.target, self.taint_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.taint_of(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.scope[stmt.target.id] = (
                    self.scope.get(stmt.target.id, frozenset()) | taint
                )
        elif isinstance(stmt, ast.Return):
            self.ret |= self.taint_of(stmt.value)
        elif isinstance(stmt, ast.For):
            iter_taint = self.taint_of(stmt.iter)
            for name in _target_names(stmt.target):
                self.scope[name] = iter_taint
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        self.scope[name] = self.taint_of(item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        self._check_sinks(stmt)

    def _assign_target(self, target: ast.expr, taint: Taint) -> None:
        for name in _target_names(target):
            if taint:
                self.scope[name] = taint
            else:
                self.scope.pop(name, None)

    # -- sinks ---------------------------------------------------------

    def _check_sinks(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.For, ast.While, ast.If, ast.With, ast.Try)):
            exprs: list[ast.expr] = []
            if isinstance(stmt, ast.For):
                exprs = [stmt.iter]
            elif isinstance(stmt, (ast.While, ast.If)):
                exprs = [stmt.test]
            elif isinstance(stmt, ast.With):
                exprs = [item.context_expr for item in stmt.items]
            nodes: list[ast.AST] = []
            for e in exprs:
                nodes.extend(ast.walk(e))
        else:
            nodes = list(ast.walk(stmt))
        for node in nodes:
            if isinstance(node, ast.Call):
                self._check_sink_call(node)

    def _check_sink_call(self, call: ast.Call) -> None:
        chain = _attr_chain(call.func)
        name = chain[-1] if chain else ""
        if name in self.analyzer.sink_names:
            for label, taint in self._call_arg_taints(call):
                self._sink_hit(call, name, label, taint)
            return
        info = self.analyzer.resolve(self.relpath, call)
        if info is None:
            return
        summary = self.analyzer.summaries.get(info.qualname)
        if summary is None or not summary.param_sink:
            return
        arg_taints = [self.taint_of(a) for a in call.args]
        kw_taints = {kw.arg: self.taint_of(kw.value) for kw in call.keywords}
        bound = self._bind_args(info, call, arg_taints, kw_taints)
        for param, taint in bound.items():
            sink = summary.param_sink.get(param)
            if sink is not None and taint:
                self._sink_hit(call, f"{info.name}→{sink}", param, taint)

    def _call_arg_taints(self, call: ast.Call) -> list[tuple[str, Taint]]:
        out = [(f"arg {i}", self.taint_of(a)) for i, a in enumerate(call.args)]
        out.extend(
            (kw.arg if kw.arg is not None else "**kwargs", self.taint_of(kw.value))
            for kw in call.keywords
        )
        return [(label, t) for label, t in out if t]

    def _sink_hit(self, call: ast.Call, sink: str, label: str, taint: Taint) -> None:
        real = [c for c in taint if c.kind != "param"]
        params = [c for c in taint if c.kind == "param"]
        for cause in params:
            self.param_sink.setdefault(cause.reason, sink)
        if not real or not self.report:
            return
        cause = sorted(real, key=lambda c: (c.line, c.reason))[0]
        module = self.analyzer.program.modules.get(self.relpath)
        snippet = ""
        if module is not None:
            snippet = ast.get_source_segment(module.source, call) or ""
        self.analyzer.findings.append(
            Finding(
                rule="KSR110",
                path=self.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"nondeterministic value ({cause.reason}, line {cause.line}) "
                    f"reaches determinism sink {sink}() via {label}"
                ),
                snippet=snippet,
                detail={
                    "sink": sink,
                    "argument": label,
                    "causes": sorted(
                        f"{c.reason} (line {c.line})" for c in real
                    ),
                },
            )
        )


def _union(taints: Iterable[Taint]) -> Taint:
    out: Taint = frozenset()
    for t in taints:
        out |= t
    return out


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


class _Analyzer:
    """Program-wide KSR110 driver: summaries to fixpoint, then report."""

    def __init__(self, program: Program):
        self.program = program
        self.sink_names = set(DEFAULT_SINKS)
        for decl in program.declared_sinks:
            self.sink_names.add(decl.rsplit(".", 1)[-1])
        self.summaries: dict[str, _Summary] = {}
        self.findings: list[Finding] = []

    def resolve(self, relpath: str, node: ast.Call):
        return self.program.resolve_call(relpath, node)

    def run(self) -> None:
        for round_no in range(_MAX_SUMMARY_ROUNDS):
            changed = False
            for info in self.program.functions_by_qualname.values():
                summary = self._summarize(info)
                old = self.summaries.get(info.qualname)
                if old is None or old.signature() != summary.signature():
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        self.findings = []
        for info in self.program.functions_by_qualname.values():
            self._analyze(info, report=True)
        for relpath, module in self.program.modules.items():
            flow = _FunctionFlow(self, relpath, params=(), report=True)
            flow.run(
                [s for s in module.tree.body if not isinstance(s, (ast.FunctionDef, ast.ClassDef))]
            )
        self.findings = list(dict.fromkeys(self.findings))

    def _params(self, info: Any) -> list[str]:
        args = info.node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        return [p for p in params if p != "self"]

    def _analyze(self, info: Any, *, report: bool) -> _FunctionFlow:
        flow = _FunctionFlow(self, info.relpath, self._params(info), report=report)
        flow.run(info.node.body)
        return flow

    def _summarize(self, info: Any) -> _Summary:
        flow = self._analyze(info, report=False)
        ret_real = frozenset(c for c in flow.ret if c.kind != "param")
        param_ret = frozenset(c.reason for c in flow.ret if c.kind == "param")
        return _Summary(ret=ret_real, param_ret=param_ret, param_sink=flow.param_sink)


# ----------------------------------------------------------------------
# KSR111: alias-aware coherence-state mutation
# ----------------------------------------------------------------------


def _alias_findings(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for relpath, module in program.modules.items():
        if relpath in MUTATION_ALLOWED:
            continue
        for scope_body in _scopes(module.tree):
            findings.extend(_alias_scan(relpath, module.source, scope_body))
    return findings


def _scopes(tree: ast.Module) -> Iterable[list[ast.stmt]]:
    yield [s for s in tree.body if not isinstance(s, (ast.FunctionDef, ast.ClassDef))]
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node.body


def _alias_scan(relpath: str, source: str, body: list[ast.stmt]) -> list[Finding]:
    aliases: set[str] = set()
    findings: list[Finding] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_cache_expr(node.value, aliases):
                    aliases.add(target.id)
    if not aliases:
        return findings
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    len(chain) >= 2
                    and chain[0] in aliases
                    and chain[-1] in MUTATOR_METHODS
                ):
                    findings.append(
                        _alias_finding(relpath, source, node, chain[0], f"{chain[-1]}()")
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        chain = _attr_chain(target.value)
                        if chain and chain[0] in aliases and "_states" in chain:
                            findings.append(
                                _alias_finding(
                                    relpath, source, target, chain[0], "_states[...] write"
                                )
                            )
    return findings


def _is_cache_expr(node: ast.expr, aliases: set[str]) -> bool:
    """Does this expression denote a local cache (directly or via alias)?"""
    if isinstance(node, ast.Name):
        return node.id in aliases
    if isinstance(node, ast.Attribute):
        if node.attr == "local_cache":
            return True
        return _is_cache_expr(node.value, aliases)
    if isinstance(node, ast.Subscript):
        return _is_cache_expr(node.value, aliases)
    return False


def _alias_finding(
    relpath: str, source: str, node: ast.AST, alias: str, what: str
) -> Finding:
    snippet = ast.get_source_segment(source, node) or alias
    return Finding(
        rule="KSR111",
        path=relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=(
            f"coherence state mutated via cache alias {alias!r} ({what}) "
            f"outside the protocol whitelist"
        ),
        snippet=snippet,
        detail={"alias": alias, "mutation": what},
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def determinism_findings(
    program: Optional[Program] = None,
) -> tuple[list[Finding], dict[str, Any]]:
    """Run KSR110 + KSR111 over the program; returns (findings, stats)."""
    if program is None:
        program = load_program()
    analyzer = _Analyzer(program)
    analyzer.run()
    findings = list(analyzer.findings)
    findings.extend(_alias_findings(program))
    stats = {
        "functions_analyzed": len(program.functions_by_qualname),
        "modules": len(program.modules),
        "sinks": sorted(analyzer.sink_names),
        "summaries_with_param_sinks": sum(
            1 for s in analyzer.summaries.values() if s.param_sink
        ),
    }
    return findings, stats
