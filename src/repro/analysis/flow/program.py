"""Whole-program view of ``src/repro`` for the flow analyses.

The per-file lint sees one module at a time; the flow passes need the
*program*: every module's AST, an index of classes (does this type
define a stable ``__repr__``?  a ``cache_token``?), an index of
functions with their annotations, and a best-effort call-name
resolution so taint summaries can propagate across calls.

Sink declarations
-----------------
Determinism sinks are owned by the subsystems themselves: a module may
declare ::

    __ksr_flow_sinks__ = ("Engine.schedule", "Engine.schedule_at")

and the loader collects every declaration (by AST — the modules are
never imported, so a syntactically valid tree is enough even when the
module's runtime dependencies are absent).  The flow passes merge these
with their built-in defaults; the declarations keep the knowledge of
*what must stay deterministic* next to the code that enforces it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["ClassInfo", "FunctionInfo", "Module", "Program", "load_program"]

#: Module attribute naming determinism sinks (``"Class.method"`` or
#: bare function names whose arguments must be deterministic).
SINK_DECLARATION = "__ksr_flow_sinks__"


@dataclass
class ClassInfo:
    """What the flow passes need to know about one class definition."""

    name: str
    relpath: str
    node: ast.ClassDef
    #: ``@dataclass``-decorated (synthesized field-wise ``__repr__``).
    is_dataclass: bool = False
    #: Defines ``__repr__`` explicitly.
    has_repr: bool = False
    #: Defines ``cache_token`` (method, property or annotated field).
    has_cache_token: bool = False
    #: Base-class names as spelled (for single-hop inheritance lookups).
    bases: tuple[str, ...] = ()

    @property
    def stable_key(self) -> bool:
        """Usable as a :func:`repro.experiments.sweep.point_key` kwarg."""
        return self.is_dataclass or self.has_repr or self.has_cache_token


@dataclass
class FunctionInfo:
    """One function or method definition."""

    #: ``"module.py::name"`` or ``"module.py::Class.name"``.
    qualname: str
    name: str
    relpath: str
    node: ast.FunctionDef
    #: Enclosing class name, if a method.
    cls: Optional[str] = None
    #: Parameter name -> annotation source text (``"int"``, ``"ObsSpec | None"``).
    annotations: dict[str, str] = field(default_factory=dict)
    #: Return annotation source text, if any.
    returns: Optional[str] = None


@dataclass
class Module:
    """One parsed source module."""

    relpath: str
    source: str
    tree: ast.Module
    #: Local name -> dotted module/class it was imported from.
    imports: dict[str, str] = field(default_factory=dict)


class Program:
    """An indexed collection of modules (the analysis universe)."""

    def __init__(self) -> None:
        self.modules: dict[str, Module] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Simple name -> every definition with that name.
        self.functions: dict[str, list[FunctionInfo]] = {}
        #: Fully qualified ``relpath::Class.name`` -> definition.
        self.functions_by_qualname: dict[str, FunctionInfo] = {}
        #: Merged ``__ksr_flow_sinks__`` declarations.
        self.declared_sinks: set[str] = set()

    # -- construction --------------------------------------------------

    def add_module(self, relpath: str, source: str) -> None:
        """Parse one module and fold it into the program indexes."""
        tree = ast.parse(source, filename=relpath)
        module = Module(relpath=relpath, source=source, tree=tree)
        self.modules[relpath] = module
        self._index(module)

    def _index(self, module: Module) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    base = node.module or ""
                    module.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(node, ast.Assign):
                self._maybe_sink_declaration(node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    self._index_function(module, node, cls=None)

    def _maybe_sink_declaration(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == SINK_DECLARATION:
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return
                if isinstance(value, (tuple, list)):
                    self.declared_sinks.update(str(v) for v in value)

    def _index_class(self, module: Module, node: ast.ClassDef) -> None:
        is_dataclass = any(
            (isinstance(d, ast.Name) and d.id == "dataclass")
            or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
            or (
                isinstance(d, ast.Call)
                and (
                    (isinstance(d.func, ast.Name) and d.func.id == "dataclass")
                    or (isinstance(d.func, ast.Attribute) and d.func.attr == "dataclass")
                )
            )
            for d in node.decorator_list
        )
        has_repr = False
        has_cache_token = False
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                if item.name == "__repr__":
                    has_repr = True
                if item.name == "cache_token":
                    has_cache_token = True
                self._index_function(module, item, cls=node.name)
            elif isinstance(item, ast.AnnAssign):
                if isinstance(item.target, ast.Name) and item.target.id == "cache_token":
                    has_cache_token = True
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and target.id == "cache_token":
                        has_cache_token = True
        bases = tuple(
            b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases
            if isinstance(b, (ast.Name, ast.Attribute))
        )
        info = ClassInfo(
            name=node.name,
            relpath=module.relpath,
            node=node,
            is_dataclass=is_dataclass,
            has_repr=has_repr,
            has_cache_token=has_cache_token,
            bases=bases,
        )
        # Last definition wins; class names are unique in practice.
        self.classes[node.name] = info

    def _index_function(
        self, module: Module, node: ast.FunctionDef, *, cls: Optional[str]
    ) -> None:
        annotations: dict[str, str] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                annotations[arg.arg] = ast.unparse(arg.annotation)
        returns = ast.unparse(node.returns) if node.returns is not None else None
        qual = f"{module.relpath}::{cls + '.' if cls else ''}{node.name}"
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            relpath=module.relpath,
            node=node,
            cls=cls,
            annotations=annotations,
            returns=returns,
        )
        self.functions.setdefault(node.name, []).append(info)
        self.functions_by_qualname[qual] = info

    # -- queries -------------------------------------------------------

    def class_is_stable_key(self, name: str) -> Optional[bool]:
        """Whether ``name`` is safe as a cache-key kwarg type.

        ``None`` when the class (or a base it might inherit a repr
        from) is outside the analyzed program.  Follows one level of
        local inheritance — enough for the repo's config hierarchies.
        """
        info = self.classes.get(name)
        if info is None:
            return None
        if info.stable_key:
            return True
        for base in info.bases:
            base_info = self.classes.get(base)
            if base_info is not None and base_info.stable_key:
                return True
        return False

    def resolve_call(self, relpath: str, node: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call to a program function.

        Handles ``name(...)`` for same-module or ``from x import name``
        definitions and ``self.name(...)`` / ``obj.name(...)`` by the
        method's simple name when it is unique program-wide.  Returns
        ``None`` for stdlib / third-party / ambiguous targets.
        """
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        candidates = self.functions.get(name, [])
        if not candidates:
            return None
        same_module = [c for c in candidates if c.relpath == relpath]
        if isinstance(func, ast.Name):
            if same_module:
                return same_module[0]
            imported = self.modules[relpath].imports.get(name) if relpath in self.modules else None
            if imported is not None:
                return candidates[0]
            return None
        # attribute call: prefer same-module methods, else a unique name
        if same_module:
            return same_module[0]
        if len(candidates) == 1:
            return candidates[0]
        return None


def iter_package_sources(root: Path) -> Iterable[tuple[str, str]]:
    """(relpath, source) for every module under the package root."""
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        yield relpath, path.read_text(encoding="utf-8")


def load_program(
    root: Optional[Path] = None,
    sources: Optional[dict[str, str]] = None,
) -> Program:
    """Build a :class:`Program` from the installed package or, for
    tests, from an explicit ``{relpath: source}`` mapping."""
    program = Program()
    if sources is not None:
        for relpath, source in sorted(sources.items()):
            program.add_module(relpath, source)
        return program
    if root is None:
        from repro.analysis.lint import repro_root

        root = repro_root()
    for relpath, source in iter_package_sources(Path(root)):
        program.add_module(relpath, source)
    return program
