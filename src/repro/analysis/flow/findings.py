"""Uniform findings and their text / JSON / SARIF renderings.

Every analysis pass — the per-file lint (KSR100–103) and the three
``flow`` pillars (KSR110–113) — reports through one record type so the
CLI can render any selection of passes in any format, and so the
baseline mechanism (:mod:`repro.analysis.flow.baseline`) can suppress
accepted findings regardless of which pass produced them.

Span hashes
-----------
A finding is identified across edits by ``(rule, path, span_hash)``
where the span hash digests the *whitespace-normalized source text* of
the flagged AST span, not its position.  Inserting lines above a
finding moves its line number but not its hash, so accepted baselines
do not churn with unrelated edits.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "RULES",
    "Finding",
    "span_hash",
    "node_span_hash",
    "findings_to_text",
    "findings_to_json",
    "findings_to_sarif",
]

#: The full rule catalog (DESIGN §12–§13).  KSR104–109 are reserved.
RULES: dict[str, str] = {
    "KSR100": "simulator code must not import wall-clock or stdlib randomness",
    "KSR101": "coherence state is mutated only by the protocol",
    "KSR102": "no ==/!= on simulated-time floats",
    "KSR103": "no ad-hoc RNG construction outside repro.util.rng",
    "KSR110": "nondeterministic value flows into a determinism sink",
    "KSR111": "coherence state mutated through an alias outside the protocol",
    "KSR112": "cache-key argument type lacks a stable repr or cache_token",
    "KSR113": "protocol transition relation deviates from the abstract model",
    "KSR120": "generated scenario diverged from the symbolic protocol model",
    "KSR121": "scenario corpus drifted from the committed manifest",
}


@dataclass(frozen=True)
class Finding:
    """One analysis finding at a source location.

    ``snippet`` holds the source text of the flagged span; it feeds the
    span hash and makes JSON reports reviewable without opening files.
    ``severity`` is ``error`` | ``warning`` | ``note`` — warnings fail
    only under ``--strict``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    severity: str = "error"
    #: Free-form extra context, e.g. the taint trace for KSR110 or the
    #: offending transition for KSR113.
    detail: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    @property
    def span(self) -> str:
        """The drift-stable identity hash of this finding."""
        return span_hash(self.rule, self.path, self.snippet)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: rule + file + AST-span hash."""
        return (self.rule, self.path, self.span)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def span_hash(rule: str, path: str, snippet: str) -> str:
    """Digest a finding's identity from its rule, file and source span.

    The snippet is whitespace-normalized (every run of whitespace,
    including newlines, collapses to one space) so re-indenting or
    re-wrapping the flagged code does not change the hash.
    """
    normalized = " ".join(snippet.split())
    payload = f"{rule}\0{path}\0{normalized}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def node_span_hash(source: str, node: ast.AST) -> str:
    """The normalized source text of one AST node (span-hash input)."""
    segment = ast.get_source_segment(source, node)
    if segment is None:  # synthesized node without positions
        segment = ast.dump(node)
    return segment


def findings_to_text(findings: Iterable[Finding]) -> str:
    """One line per finding, stable order."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    return "\n".join(str(f) for f in ordered)


def findings_to_json(
    findings: Iterable[Finding],
    *,
    passes: Optional[dict[str, dict[str, Any]]] = None,
    suppressed: int = 0,
    stale_baseline: Optional[list[dict[str, str]]] = None,
) -> str:
    """Machine-readable report: findings plus per-pass outcomes."""
    doc: dict[str, Any] = {
        "tool": "ksr-analyze",
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": f.severity,
                "message": f.message,
                "snippet": f.snippet,
                "span": f.span,
                **({"detail": f.detail} if f.detail else {}),
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
        ],
        "suppressed": suppressed,
    }
    if passes is not None:
        doc["passes"] = passes
    if stale_baseline:
        doc["stale_baseline"] = stale_baseline
    return json.dumps(doc, indent=2, sort_keys=False)


#: SARIF severity levels per finding severity.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def findings_to_sarif(findings: Iterable[Finding]) -> str:
    """A minimal SARIF 2.1.0 log (one run, one result per finding).

    Enough of the schema for GitHub code-scanning upload and for the
    CI artifact: tool driver with the rule catalog, one result per
    finding with a physical location and the span hash as a partial
    fingerprint.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    used_rules = sorted({f.rule for f in ordered} | set())
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": RULES.get(rule, rule)},
        }
        for rule in (used_rules or sorted(RULES))
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _SARIF_LEVEL.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"ksrSpanHash/v1": f.span},
        }
        for f in ordered
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ksr-analyze",
                        "informationUri": "https://example.invalid/ksr-analyze",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
