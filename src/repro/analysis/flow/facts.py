"""A tiny propositional engine for guard extraction.

The conformance extractor (:mod:`repro.analysis.flow.conformance`)
evaluates branch conditions symbolically over a handful of directory
facts per subpage entry (``atomic``, ``owner is the actor``, ``owner
exists``, ``has_valid_copy``, ``created``, ``placeholders nonempty``).
Path conditions are conjunctions of *clauses* (disjunctions of
literals), exactly what falls out of negating compound guards:
falling through ``if entry.atomic and entry.owner != cell_id`` leaves
``¬atomic ∨ owner_is_actor`` on the path.

The state space is deliberately minuscule — a guard mentions at most a
dozen atoms — so satisfiability and determinedness are decided
exactly: unit propagation first, then exhaustive enumeration of the
residual clauses.  A literal is *determined* iff it has the same value
in every model of (path clauses ∧ domain clauses); no heuristics, no
approximation.

Atoms are arbitrary hashable tokens; the domain implications of the
coherence directory (``atomic ⇒ owner_exists ⇒ has_valid ⇒ created``)
are supplied by the caller as ordinary clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from itertools import product
from typing import FrozenSet, Hashable, Iterable, Optional

__all__ = ["Lit", "Clause", "Formula", "Env", "lit", "AND", "OR", "NOT", "TRUE", "FALSE"]

Atom = Hashable
#: A literal: (atom, polarity).
Lit = tuple[Atom, bool]
Clause = FrozenSet[Lit]

#: Hard cap on residual atoms enumerated; guards here never approach it.
_MAX_ATOMS = 16


# ----------------------------------------------------------------------
# Formulas (NNF-convertible trees used only transiently by `assume`)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """A boolean combination of literals: ``kind`` ∈ lit|and|or|true|false."""

    kind: str
    atom: Optional[Atom] = None
    value: bool = True
    parts: tuple["Formula", ...] = ()


TRUE = Formula("true")
FALSE = Formula("false")


def lit(atom: Atom, value: bool = True) -> Formula:
    """A single literal: ``atom`` holds (or not, with ``value=False``)."""
    return Formula("lit", atom=atom, value=value)


def AND(*parts: Formula) -> Formula:
    """Conjunction, constant-folded."""
    flat = [p for p in parts if p.kind != "true"]
    if any(p.kind == "false" for p in flat):
        return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Formula("and", parts=tuple(flat))


def OR(*parts: Formula) -> Formula:
    """Disjunction, constant-folded."""
    flat = [p for p in parts if p.kind != "false"]
    if any(p.kind == "true" for p in flat):
        return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Formula("or", parts=tuple(flat))


def NOT(f: Formula) -> Formula:
    """Negation, pushed to the literals (De Morgan)."""
    if f.kind == "true":
        return FALSE
    if f.kind == "false":
        return TRUE
    if f.kind == "lit":
        return Formula("lit", atom=f.atom, value=not f.value)
    if f.kind == "and":
        return OR(*(NOT(p) for p in f.parts))
    return AND(*(NOT(p) for p in f.parts))


def _to_cnf(f: Formula) -> list[Clause]:
    """Clauses of ``f`` (exponential in principle, tiny in practice)."""
    if f.kind == "true":
        return []
    if f.kind == "false":
        return [frozenset()]
    if f.kind == "lit":
        return [frozenset({(f.atom, f.value)})]
    if f.kind == "and":
        out: list[Clause] = []
        for p in f.parts:
            out.extend(_to_cnf(p))
        return out
    # or: distribute over the parts' CNFs
    parts_cnf = [_to_cnf(p) for p in f.parts]
    out = [frozenset()]
    for cnf in parts_cnf:
        out = [a | b for a in out for b in cnf]
        if len(out) > 64:  # guards never get here; fail safe, not slow
            raise ValueError("guard formula too large for CNF conversion")
    return out


# ----------------------------------------------------------------------
# Solving (unit propagation + exhaustive residual enumeration, cached)
# ----------------------------------------------------------------------


@lru_cache(maxsize=4096)
def _propagate(
    clauses: frozenset[Clause],
) -> Optional[tuple[tuple[Lit, ...], frozenset[Clause]]]:
    """Unit-propagate; ``None`` on contradiction.

    Returns (forced literals, residual non-unit clauses).
    """
    forced: dict[Atom, bool] = {}
    work = set(clauses)
    changed = True
    while changed:
        changed = False
        residual: set[Clause] = set()
        for c in work:
            lits: list[Lit] = []
            satisfied = False
            for a, v in c:
                if a in forced:
                    if forced[a] == v:
                        satisfied = True
                        break
                    continue  # literal is false under forced: drop it
                lits.append((a, v))
            if satisfied:
                continue
            if not lits:
                return None  # empty clause: contradiction
            if len(lits) == 1:
                a, v = lits[0]
                forced[a] = v
                changed = True
                continue
            residual.add(frozenset(lits))
        work = residual
    return tuple(sorted(forced.items(), key=lambda kv: repr(kv[0]))), frozenset(work)


@lru_cache(maxsize=4096)
def _residual_models(clauses: frozenset[Clause]) -> tuple[dict, ...]:
    """Every satisfying assignment of a residual (unit-free) clause set."""
    atoms = sorted({a for c in clauses for a, _ in c}, key=repr)
    if len(atoms) > _MAX_ATOMS:
        raise ValueError(f"too many atoms to enumerate: {len(atoms)}")
    models = []
    for values in product((False, True), repeat=len(atoms)):
        assignment = dict(zip(atoms, values))
        if all(any(assignment[a] == v for a, v in c) for c in clauses):
            models.append(assignment)
    return tuple(models)


# ----------------------------------------------------------------------
# Environments (path conditions)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Env:
    """An immutable path condition: a set of clauses over atoms."""

    clauses: frozenset[Clause] = field(default_factory=frozenset)

    def assume(self, f: Formula) -> Optional["Env"]:
        """Conjoin ``f``; ``None`` if the path becomes unsatisfiable."""
        new = Env(self.clauses | frozenset(_to_cnf(f)))
        if not new.satisfiable():
            return None
        return new

    def forget(self, atoms: Iterable[Atom]) -> "Env":
        """Existentially quantify ``atoms`` out (drop their clauses).

        Used for effects: after ``demote_owner`` nothing previously
        known about the owner survives.  Dropping whole clauses is a
        sound weakening — it can only make more states possible.
        """
        doomed = set(atoms)
        return Env(
            frozenset(
                c for c in self.clauses if not any(a in doomed for a, _ in c)
            )
        )

    def satisfiable(self) -> bool:
        """Whether any assignment satisfies every clause."""
        propagated = _propagate(self.clauses)
        if propagated is None:
            return False
        _, residual = propagated
        return not residual or bool(_residual_models(residual))

    def determined(self, atoms: Iterable[Atom]) -> dict[Atom, bool]:
        """Atoms (among ``atoms``) with one value in *every* model.

        Exact: forced units are determined outright; atoms surviving
        into the residual clauses are determined iff every residual
        model agrees on them.  Atoms no clause mentions are free.
        """
        propagated = _propagate(self.clauses)
        if propagated is None:
            return {}  # unsatisfiable path: caller should have pruned it
        forced, residual = propagated
        forced_map = dict(forced)
        models = _residual_models(residual) if residual else ({},)
        out: dict[Atom, bool] = {}
        for atom in atoms:
            if atom in forced_map:
                out[atom] = forced_map[atom]
                continue
            values = {m[atom] for m in models if atom in m}
            if values == {True}:
                out[atom] = True
            elif values == {False}:
                out[atom] = False
        return out
