"""Static-analysis and verification passes over the simulator.

Three independent correctness substrates, all runnable from the
``ksr-analyze`` CLI and from pytest:

:mod:`repro.analysis.modelcheck`
    Exhaustive reachability checking of an abstract ALLCACHE protocol
    model (one subpage, 2-3 cells) extracted from the coherence layer.
:mod:`repro.analysis.races`
    Discrete-event determinism auditing: same-timestamp event pairs
    touching shared protocol state, and tie-break perturbation runs.
:mod:`repro.analysis.lint`
    AST lint over ``src/repro`` forbidding sim-code hazards (wall-clock
    time, stdlib ``random``, out-of-band coherence state mutation,
    ``==`` on simulated-time floats).
"""

from repro.analysis.lint import LintViolation, lint_paths, lint_source
from repro.analysis.modelcheck import CoherenceModel, ModelChecker, ModelCheckResult
from repro.analysis.races import PerturbationReport, RaceAuditor, machine_fingerprint

__all__ = [
    "CoherenceModel",
    "ModelChecker",
    "ModelCheckResult",
    "RaceAuditor",
    "PerturbationReport",
    "machine_fingerprint",
    "LintViolation",
    "lint_paths",
    "lint_source",
]
