"""AST lint for simulator-code hazards.

The simulator's determinism and coherence guarantees rest on four
coding rules that nothing in Python enforces:

``KSR100`` — no wall-clock or stdlib randomness in simulator code.
    Inside ``sim/``, ``machine/``, ``ring/``, ``coherence/`` and
    ``sync/``, importing ``time``, ``random`` or ``datetime`` is
    forbidden: all randomness must come from the seeded sub-streams of
    :mod:`repro.util.rng`, and the only clock is the engine's.

``KSR101`` — coherence state is mutated only by the protocol.
    Calls that change a local cache's :class:`SubpageState`
    (``set_state``/``fill``/``invalidate``/``snarf``/``drop`` on a
    ``local_cache`` receiver, or writes into its ``_states`` table) are
    allowed only in ``coherence/protocol.py``, ``coherence/ops.py`` and
    ``memory/local_cache.py`` itself.  Anything else bypasses the
    directory bookkeeping and desynchronizes the machine.

``KSR102`` — no ``==``/``!=`` on simulated-time floats.
    Simulation timestamps are floats accumulated from fractional ring
    hops; exact equality is a latent bug.  Comparisons of time-named
    attributes (``now``, ``completed_at``, ...) must use ordering or a
    tolerance.

``KSR103`` — no ad-hoc RNG construction anywhere in the package.
    Constructing ``random.Random``/``random.SystemRandom`` or numpy's
    legacy ``RandomState`` creates an unnamed stream outside the
    seeded sub-stream registry; every generator must come through
    :mod:`repro.util.rng` (``SeedStream``/``derive_rng``) so runs stay
    a pure function of the master seed.  (``np.random.default_rng``
    with an explicit seed is fine — the rule targets the stateful
    legacy constructors.)  ``util/rng.py`` itself is exempt.

``KSR114`` — ring grant heaps are mutated only by the blessed sites.
    A sub-ring's ``(free_time, slot)`` heap (the ``_free`` table of
    :class:`~repro.ring.slotted_ring.SlottedRing`) is replaced-into by
    exactly two pieces of code: ``SlottedRing._claim`` (the per-event
    grant) and the macro-event ``BatchAdvancer`` (its bit-exact
    closed-form inline).  A ``heapreplace`` against ``_free`` anywhere
    else is a third copy of the grant arithmetic waiting to drift.

The pass is a heuristic AST walk.  Direct spellings and the
single-assignment alias (``cache = cell.local_cache; cache.fill(...)``,
``heap = self._free[subring]; heapreplace(heap, ...)``) are caught
here; longer alias chains (``a = cell.local_cache; b = a``) need real
dataflow and are covered by ``ksr-analyze flow`` (KSR111 in
:mod:`repro.analysis.flow.determinism`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["LintViolation", "lint_source", "lint_paths", "repro_root"]

#: Packages whose modules count as simulator code (KSR100).
SIM_PACKAGES = ("sim", "machine", "ring", "coherence", "sync")
#: Packages where simulated-time equality is checked (KSR102).
TIME_EQ_PACKAGES = SIM_PACKAGES
#: Modules allowed to mutate SubpageState (KSR101), relative to repro/.
MUTATION_ALLOWED = frozenset(
    {"coherence/protocol.py", "coherence/ops.py", "memory/local_cache.py"}
)

FORBIDDEN_MODULES = frozenset({"time", "random", "datetime"})
#: Modules exempt from KSR103 (the RNG plumbing itself).
RNG_ALLOWED = frozenset({"util/rng.py"})
#: Constructors that mint an unregistered RNG stream (KSR103).
RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "RandomState"})
MUTATOR_METHODS = frozenset({"set_state", "fill", "invalidate", "snarf", "drop"})
TIME_ATTRS = frozenset(
    {
        "now",
        "_now",
        "time",
        "completed_at",
        "injected_at",
        "completes_at",
        "registered_at",
        "enqueued_at",
        "busy_until",
    }
)
TIME_NAMES = frozenset({"now"})
#: The grant-heap attribute guarded by KSR114.
GRANT_HEAP_ATTR = "_free"
#: Classes whose bodies may ``heapreplace`` a grant heap (KSR114): the
#: per-event claim path and the macro-event batch advancers.
GRANT_HEAP_CLASSES = frozenset({"BatchAdvancer"})
#: (class, method) sites likewise allowed.
GRANT_HEAP_METHODS = frozenset({("SlottedRing", "_claim")})


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _package_of(relpath: str) -> str:
    """First path component of a module path like ``machine/cell.py``."""
    return relpath.split("/", 1)[0] if "/" in relpath else ""


def _attr_chain(node: ast.expr) -> list[str]:
    """Names along an attribute chain, e.g. ``a.b.c()`` -> [a, b, c]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _is_time_operand(node: ast.expr) -> Optional[str]:
    """The time-ish name a comparison operand exposes, if any."""
    if isinstance(node, ast.Attribute) and node.attr in TIME_ATTRS:
        return ".".join(_attr_chain(node))
    if isinstance(node, ast.Name) and node.id in TIME_NAMES:
        return node.id
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, relpath: str):
        self.relpath = relpath
        package = _package_of(relpath)
        self.check_imports = package in SIM_PACKAGES
        self.check_mutation = relpath not in MUTATION_ALLOWED
        self.check_time_eq = package in TIME_EQ_PACKAGES
        self.check_rng = relpath not in RNG_ALLOWED
        #: Local aliases of RNG constructors (``from random import Random``).
        self._rng_names: set[str] = set()
        #: Names assigned directly from a ``*.local_cache`` chain
        #: (``cache = cell.local_cache``) — mutators through these are
        #: KSR101 violations too, closing the single-assignment evasion.
        self._cache_aliases: set[str] = set()
        #: Names assigned from a ``*._free[...]`` grant-heap lookup
        #: (``heap = self._free[subring]``) for KSR114.
        self._free_aliases: set[str] = set()
        #: Enclosing class names / function names, innermost last.
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        self.violations: list[LintViolation] = []

    # -- scope tracking (KSR114) ----------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _grant_heap_site(self) -> bool:
        """Whether the current scope may mutate a grant heap."""
        if any(cls in GRANT_HEAP_CLASSES for cls in self._class_stack):
            return True
        return any(
            cls in self._class_stack and fn in self._func_stack
            for cls, fn in GRANT_HEAP_METHODS
        )

    def _is_grant_heap(self, node: ast.expr) -> bool:
        """Whether an expression denotes a ``_free`` grant heap."""
        if isinstance(node, ast.Name):
            return node.id in self._free_aliases
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Attribute) and node.attr == GRANT_HEAP_ATTR

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            LintViolation(self.relpath, node.lineno, node.col_offset, code, message)
        )

    # KSR100 ------------------------------------------------------------

    def _check_import(self, node: ast.AST, module: Optional[str]) -> None:
        root = (module or "").split(".", 1)[0]
        if self.check_imports and root in FORBIDDEN_MODULES:
            self._flag(
                node,
                "KSR100",
                f"simulator code must not import '{root}': use "
                "repro.util.rng for randomness and the engine clock for time",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:  # relative imports can't reach the stdlib
            self._check_import(node, node.module)
        # KSR103 alias tracking: `from random import Random` (or
        # `from numpy.random import RandomState`) makes the bare name a
        # constructor call later in the module.
        if node.module and node.module.split(".")[-1] == "random":
            for alias in node.names:
                if alias.name in RNG_CONSTRUCTORS:
                    self._rng_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # KSR101 ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.check_mutation
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            chain = _attr_chain(node.func)
            if "local_cache" in chain[:-1] or (
                len(chain) == 2 and chain[0] in self._cache_aliases
            ):
                self._flag(
                    node,
                    "KSR101",
                    f"SubpageState mutated outside the protocol: "
                    f"{'.'.join(chain)}() — only coherence/protocol.py, "
                    "coherence/ops.py and memory/local_cache.py may do this",
                )
        # KSR103 --------------------------------------------------------
        if self.check_rng:
            spelled = None
            func = node.func
            if isinstance(func, ast.Attribute):
                chain = _attr_chain(func)
                if chain[-1] in RNG_CONSTRUCTORS and "random" in chain[:-1]:
                    spelled = ".".join(chain)
            elif isinstance(func, ast.Name) and func.id in self._rng_names:
                spelled = func.id
            if spelled is not None:
                self._flag(
                    node,
                    "KSR103",
                    f"direct RNG construction '{spelled}(...)' — derive "
                    "generators from repro.util.rng (SeedStream/derive_rng) "
                    "so every stream is named and seeded",
                )
        # KSR114 --------------------------------------------------------
        func = node.func
        is_heapreplace = (isinstance(func, ast.Name) and func.id == "heapreplace") or (
            isinstance(func, ast.Attribute) and func.attr == "heapreplace"
        )
        if (
            is_heapreplace
            and node.args
            and self._is_grant_heap(node.args[0])
            and not self._grant_heap_site()
        ):
            self._flag(
                node,
                "KSR114",
                "heapreplace on a ring grant heap (_free) outside "
                "SlottedRing._claim / BatchAdvancer — the grant arithmetic "
                "lives in exactly those two places",
            )
        self.generic_visit(node)

    def _check_states_store(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "_states"
        ):
            self._flag(
                target,
                "KSR101",
                "direct write into a local cache's _states table — "
                "mutate coherence state through the protocol instead",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.check_mutation:
            for target in node.targets:
                self._check_states_store(target)
            # record `cache = <...>.local_cache` single-assignment aliases
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "local_cache"
            ):
                self._cache_aliases.add(node.targets[0].id)
        # record `heap = <...>._free[...]` grant-heap aliases (KSR114)
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and self._is_grant_heap(node.value)
            and not isinstance(node.value, ast.Name)
        ):
            self._free_aliases.add(node.targets[0].id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.check_mutation:
            self._check_states_store(node.target)
        self.generic_visit(node)

    # KSR102 ------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.check_time_eq:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    name = _is_time_operand(side)
                    if name is not None:
                        self._flag(
                            node,
                            "KSR102",
                            f"'==' on simulated-time float '{name}' — "
                            "times accumulate fractional cycles; compare "
                            "with ordering or a tolerance",
                        )
                        break
        self.generic_visit(node)


def lint_source(source: str, relpath: str) -> list[LintViolation]:
    """Lint one module's source.

    ``relpath`` is the module's path relative to the ``repro`` package
    root (e.g. ``"machine/cell.py"``); it selects which rules apply.
    """
    tree = ast.parse(source, filename=relpath)
    visitor = _Visitor(relpath.replace("\\", "/"))
    visitor.visit(tree)
    return visitor.violations


def repro_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_paths(root: Path | None = None) -> list[LintViolation]:
    """Lint every module under ``root`` (default: the repro package)."""
    base = Path(root) if root is not None else repro_root()
    violations: list[LintViolation] = []
    for path in sorted(base.rglob("*.py")):
        relpath = path.relative_to(base).as_posix()
        violations.extend(lint_source(path.read_text(encoding="utf-8"), relpath))
    return violations


def render_report(violations: Iterable[LintViolation]) -> str:
    """One line per violation, stable order."""
    return "\n".join(str(v) for v in violations)
