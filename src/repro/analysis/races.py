"""DES determinism and race auditing.

The engine documents a strong property: *events scheduled for the same
instant fire in scheduling order*, and every simulator outcome is a
deterministic function of the configuration seed.  Code that
accidentally depends on same-timestamp ordering (two callbacks at one
instant mutating the same subpage's protocol state) still *runs*
deterministically — it is just fragile: any refactor that reorders
scheduling silently changes results.  This module makes such hidden
ordering dependencies visible, two ways:

:class:`RaceAuditor`
    Attaches to a machine via the engine's opt-in ``audit_hook`` and a
    recording proxy around the directory and the word store.  Flags
    same-timestamp event pairs where at least one event *mutates*
    subpage/directory state the other also touches — the pairs whose
    relative order could matter.

:func:`run_perturbed`
    Re-runs a short experiment with same-instant tie-breaking shuffled
    by a seeded RNG (``Engine.shuffle_same_time_ties``) and diffs the
    final machine state against the FIFO baseline.  State divergence
    means some outcome really did depend on tie-break order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.coherence.directory import Directory
from repro.memory.address import subpage_of
from repro.sim.engine import Engine, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.ksr import KsrMachine

__all__ = [
    "RaceAuditor",
    "RaceFlag",
    "PerturbationReport",
    "run_perturbed",
    "machine_fingerprint",
    "diff_fingerprints",
    "default_audit_workload",
]


# ----------------------------------------------------------------------
# Same-timestamp conflict auditing
# ----------------------------------------------------------------------


@dataclass
class _EventTouches:
    """Subpages one fired event read/mutated."""

    time: float
    seq: int
    label: str
    reads: set[int] = field(default_factory=set)
    writes: set[int] = field(default_factory=set)

    def touched(self) -> set[int]:
        return self.reads | self.writes


@dataclass(frozen=True)
class RaceFlag:
    """Two same-instant events conflicting on one subpage's state."""

    time: float
    subpage_id: int
    first: str
    second: str

    def __str__(self) -> str:
        return (
            f"t={self.time:.2f} subpage {self.subpage_id}: "
            f"[{self.first}] and [{self.second}] conflict at the same instant"
        )


class _AuditedDirectory:
    """Recording proxy over :class:`Directory` (same public surface)."""

    _READERS = ("entry", "known", "responder_for", "state_in")
    _MUTATORS = (
        "record_fill_shared",
        "record_fill_exclusive",
        "demote_owner",
        "invalidate_others",
        "set_atomic",
        "drop_copy",
    )

    def __init__(self, inner: Directory, auditor: "RaceAuditor"):
        self._inner = inner
        self._auditor = auditor

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if name in self._READERS:
            return self._wrap(attr, write=False)
        if name in self._MUTATORS:
            return self._wrap(attr, write=True)
        return attr

    def _wrap(self, method: Callable[..., Any], *, write: bool) -> Callable[..., Any]:
        def recorded(subpage_id: int, *args: Any, **kwargs: Any) -> Any:
            self._auditor.record(subpage_id, write=write)
            return method(subpage_id, *args, **kwargs)

        return recorded


class RaceAuditor:
    """Flags same-timestamp event pairs with conflicting state touches.

    Usage::

        machine = KsrMachine(config)
        auditor = RaceAuditor()
        auditor.install(machine)
        ... spawn and run ...
        for flag in auditor.report():
            print(flag)

    Reads of a subpage's state by two same-instant events are fine (they
    commute); a pair where at least one event *mutates* state the other
    touches is flagged — its outcome depends on the engine's FIFO
    tie-breaking, which is exactly what a refactor can silently change.
    """

    def __init__(self) -> None:
        self._group: list[_EventTouches] = []
        self._group_time: Optional[float] = None
        self._current: Optional[_EventTouches] = None
        self._flags: list[RaceFlag] = []
        self.n_events_audited = 0

    # -- wiring ---------------------------------------------------------

    def install(self, machine: "KsrMachine") -> "RaceAuditor":
        """Attach to a machine (before running its workload)."""
        self.install_on(machine.engine, machine.protocol)
        return self

    def install_on(self, engine: Engine, protocol: Any = None) -> "RaceAuditor":
        """Lower-level attach: engine hook plus optional protocol wrap."""
        engine.audit_hook = self._on_event
        if protocol is not None:
            protocol.directory = _AuditedDirectory(protocol.directory, self)
            inner_poke = protocol.poke

            def audited_poke(addr: int, value: Any) -> None:
                self.record(subpage_of(addr), write=True)
                inner_poke(addr, value)

            protocol.poke = audited_poke
        return self

    # -- recording ------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._group_time is not None and event.time != self._group_time:
            self._analyze_group()
        self._group_time = event.time
        label = getattr(event.callback, "__qualname__", repr(event.callback))
        self._current = _EventTouches(event.time, event.seq, label)
        self._group.append(self._current)
        self.n_events_audited += 1

    def record(self, subpage_id: int, *, write: bool) -> None:
        """Note that the currently firing event touched ``subpage_id``."""
        if self._current is None:
            return  # outside any event (setup/teardown): not a race
        if write:
            self._current.writes.add(subpage_id)
        else:
            self._current.reads.add(subpage_id)

    # -- analysis -------------------------------------------------------

    def _analyze_group(self) -> None:
        group, self._group = self._group, []
        if len(group) < 2:
            return
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                conflicts = (a.writes & b.touched()) | (b.writes & a.touched())
                for sp in sorted(conflicts):
                    self._flags.append(
                        RaceFlag(a.time, sp, f"{a.label}#{a.seq}", f"{b.label}#{b.seq}")
                    )

    def report(self) -> list[RaceFlag]:
        """Close the trailing same-time group and return all flags."""
        self._analyze_group()
        self._group_time = None
        self._current = None
        return list(self._flags)


# ----------------------------------------------------------------------
# Tie-break perturbation harness
# ----------------------------------------------------------------------


def machine_fingerprint(machine: "KsrMachine") -> dict[str, Any]:
    """Canonical digest of a finished machine's observable final state."""
    protocol = machine.protocol
    directory = protocol.directory
    inner = getattr(directory, "_inner", directory)  # unwrap any audit proxy
    dir_view = {
        sp: (
            entry.owner,
            entry.atomic,
            tuple(sorted(entry.sharers)),
            tuple(sorted(entry.placeholders)),
            entry.created,
        )
        for sp, entry in sorted(inner._entries.items())
    }
    caches = {
        cell.cell_id: tuple(
            sorted((sp, st.name) for sp, st in cell.local_cache._states.items())
        )
        for cell in machine.cells
    }
    return {
        "values": dict(sorted(protocol.values.items())),
        "directory": dir_view,
        "caches": caches,
        "now": machine.engine.now,
    }


def diff_fingerprints(base: dict[str, Any], other: dict[str, Any]) -> list[str]:
    """Human-readable component-level differences (empty = identical)."""
    out = []
    for key in ("values", "directory", "caches", "now"):
        if base[key] != other[key]:
            out.append(f"{key} diverged: {base[key]!r} != {other[key]!r}")
    return out


@dataclass
class PerturbationReport:
    """Outcome of :func:`run_perturbed`."""

    n_runs: int
    baseline: dict[str, Any]
    #: per perturbed run: list of component diffs against the baseline
    divergences: list[list[str]]

    @property
    def data_deterministic(self) -> bool:
        """Program-visible memory values identical in every run."""
        return all(
            not any(d.startswith("values ") for d in diffs)
            for diffs in self.divergences
        )

    @property
    def state_deterministic(self) -> bool:
        """Final memory/directory/cache state identical in every run."""
        return all(
            not any(not d.startswith("now ") for d in diffs)
            for diffs in self.divergences
        )

    @property
    def timing_deterministic(self) -> bool:
        """Final simulation clock identical in every run."""
        return all(
            not any(d.startswith("now ") for d in diffs) for diffs in self.divergences
        )

    def summary(self) -> str:
        """One-paragraph human-readable result, divergences included."""
        n_div = sum(1 for d in self.divergences if d)
        status = "OK" if self.state_deterministic else "FAIL"
        lines = [
            f"perturbation[{self.n_runs} shuffled runs]: {status} — "
            f"{n_div} run(s) diverged from the FIFO baseline"
        ]
        for i, diffs in enumerate(self.divergences):
            for d in diffs:
                lines.append(f"  run {i}: {d[:200]}")
        return "\n".join(lines)


def run_perturbed(
    experiment: Callable[[Optional[np.random.Generator]], "KsrMachine"],
    *,
    n_runs: int = 4,
    master_seed: int = 2026,
) -> PerturbationReport:
    """Diff an experiment's final state across shuffled tie-break runs.

    ``experiment(tie_rng)`` must build a fresh machine, install
    ``machine.engine.shuffle_same_time_ties(tie_rng)`` when ``tie_rng``
    is not ``None`` (before spawning threads), run the workload to
    completion and return the machine.  The ``None`` call is the FIFO
    baseline.
    """
    baseline = machine_fingerprint(experiment(None))
    divergences = []
    for i in range(n_runs):
        rng = np.random.default_rng([master_seed, i])
        fp = machine_fingerprint(experiment(rng))
        divergences.append(diff_fingerprints(baseline, fp))
    return PerturbationReport(n_runs=n_runs, baseline=baseline, divergences=divergences)


def default_audit_workload(
    tie_rng: Optional[np.random.Generator] = None,
    *,
    n_cells: int = 4,
    seed: int = 7,
    audit: bool = False,
    contended: bool = False,
) -> tuple["KsrMachine", Optional[RaceAuditor]]:
    """The canned short experiments ``ksr-analyze races`` runs.

    Each cell writes and reads back its own words, then increments one
    lock-protected counter three times.  With ``contended=False`` the
    lock phases are staggered far apart, so the whole run is race-free
    by construction and must be fully deterministic under tie shuffling.
    With ``contended=True`` all cells fight for the lock at once: the
    counter total stays correct (data-deterministic), but *which* cell
    ends up caching the counter subpage legitimately depends on grant
    order — the nondeterminism the auditor exists to surface.

    Returns the finished machine and, when ``audit`` is set, the
    installed auditor.
    """
    from repro.machine.api import SharedMemory
    from repro.machine.config import MachineConfig, TimerConfig
    from repro.machine.ksr import KsrMachine
    from repro.sim.process import Compute, GetSubpage, Read, ReleaseSubpage, Write

    config = MachineConfig.ksr1(
        n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
    )
    machine = KsrMachine(config)
    if tie_rng is not None:
        machine.engine.shuffle_same_time_ties(tie_rng)
    auditor = RaceAuditor().install(machine) if audit else None
    mem = SharedMemory(machine)
    own = [mem.array(f"own{i}", 4) for i in range(n_cells)]
    lock = mem.alloc_word()
    counter = mem.alloc_word()

    def body(pid: int):
        for k in range(4):
            yield Write(own[pid].addr(k), pid * 100 + k)
            yield Compute(5 + 3 * pid)
        for k in range(4):
            v = yield Read(own[pid].addr(k))
            assert v == pid * 100 + k
        if not contended:
            # Disjoint time windows: no two cells ever contend.
            yield Compute(20_000.0 * pid)
        for _ in range(3):
            yield GetSubpage(lock)
            v = yield Read(counter)
            yield Write(counter, v + 1)
            yield ReleaseSubpage(lock)

    for pid in range(n_cells):
        machine.spawn(f"audit-{pid}", body(pid), pid)
    machine.run()
    return machine, auditor


def perturbed_default_workload(
    tie_rng: Optional[np.random.Generator],
) -> "KsrMachine":
    """Adapter for :func:`run_perturbed` over the race-free workload."""
    machine, _ = default_audit_workload(tie_rng)
    return machine


def perturbed_contended_workload(
    tie_rng: Optional[np.random.Generator],
) -> "KsrMachine":
    """Adapter for :func:`run_perturbed` over the contended workload."""
    machine, _ = default_audit_workload(tie_rng, contended=True)
    return machine
