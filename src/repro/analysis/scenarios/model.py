"""Symbolic product model of the ALLCACHE protocol for scenario generation.

A *scenario* is a bounded global interleaving of protocol operations
over a few cells and subpages.  This module gives those interleavings
semantics without running the simulator: a :class:`ScenarioModel` is
the product of one :class:`~repro.analysis.modelcheck.CoherenceModel`
per subpage (subpages are independent in the protocol — the directory,
locking and snarfing are all per-subpage) plus *data* semantics: every
write deposits a distinct value (its global step index + 1), so read
observations reveal exactly which write each copy reflects.

The per-subpage transition relation is the one **extracted from**
``coherence/protocol.py``, not re-implemented beside it: the KSR113
conformance pass (:mod:`repro.analysis.flow.conformance`) symbolically
interprets the protocol source and diffs it, valuation by valuation,
against the very :class:`CoherenceModel` instance used here.
:func:`certify_extraction` runs that gate; the scenarios CLI pass and
the corpus check refuse to trust the model while the gate reports
divergence.  The action vocabulary is likewise shared:
:data:`~repro.analysis.flow.conformance.OPS` (``evict`` is a
capacity-replacement artifact with no program-visible trigger and is
excluded from schedules, exactly as it is excluded from KSR113).

Everything here is deterministic and hashable, so behaviour keys are
stable across processes and can key the sweep result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis.flow.conformance import OPS
from repro.analysis.modelcheck import (
    CoherenceModel,
    InvariantViolation,
    ModelChecker,
    ModelState,
)
from repro.errors import ConfigError, ProtocolError

__all__ = [
    "MODEL_VERSION",
    "Step",
    "ProductState",
    "Prediction",
    "ScenarioModel",
    "run_model",
    "canonicalize",
    "is_canonical",
    "behaviour_key",
    "certify_extraction",
]

#: Semantic version of the scenario model; folded into sweep cache keys
#: (see :func:`repro.experiments.sweep.code_version`) and recorded in
#: corpus manifests so a model change can never replay stale results.
MODEL_VERSION = "1"

#: One scenario step: ``(op, cell, subpage)`` with ``op`` drawn from
#: the KSR113-shared vocabulary :data:`OPS`.
Step = tuple[str, int, int]

#: Product state: one abstract per-subpage state per subpage.
ProductState = tuple[ModelState, ...]


@dataclass(frozen=True)
class Prediction:
    """The model's verdict on one schedule.

    ``observations`` pairs each read step's schedule index with the
    value the model says it returns.  State vectors are ``[subpage]
    [cell]``; ``directory_states`` uses :class:`SubpageState` names
    (``None`` — no copy) so it compares directly against the
    simulator-side :class:`~repro.coherence.litmus.ScheduleOutcome`.
    ``fresh`` is model-only (the simulator's word store is globally
    authoritative, so staleness is not separately observable there).
    ``completed`` is ``False`` when a step was not enabled in its
    pre-state — the model predicts the schedule cannot execute.
    """

    completed: bool
    blocked_at: Optional[int]
    observations: tuple[tuple[int, Any], ...]
    directory_states: tuple[tuple[Optional[str], ...], ...]
    fresh: tuple[tuple[bool, ...], ...]
    created: tuple[bool, ...]
    memory: tuple[Any, ...]
    quiescent: bool


class ScenarioModel:
    """Product of per-subpage abstract protocol models, plus data.

    The per-subpage relation is delegated to ``cell_model`` (the stock
    :class:`CoherenceModel` unless a test injects a broken subclass);
    the data primitives :meth:`write_value` and :meth:`read_value` are
    separate methods so mutation tests can damage the observation
    channel without touching the state relation.
    """

    def __init__(
        self,
        n_cells: int,
        n_subpages: int,
        cell_model: Optional[CoherenceModel] = None,
    ):
        if n_subpages < 1:
            raise ConfigError(f"need at least 1 subpage, got {n_subpages}")
        self.cell_model = cell_model if cell_model is not None else CoherenceModel(n_cells)
        self.n_cells = self.cell_model.n_cells
        self.n_subpages = n_subpages
        self._checker = ModelChecker(self.n_cells, model=self.cell_model)

    # ------------------------------------------------------------------
    # Transition relation (product of the extracted per-subpage model)
    # ------------------------------------------------------------------

    def initial(self) -> ProductState:
        """Pristine product state: every subpage uncreated, no copies."""
        return tuple(self.cell_model.initial() for _ in range(self.n_subpages))

    def enabled(self, state: ProductState) -> list[Step]:
        """Enabled steps, in deterministic ``(subpage, cell, op)`` order."""
        steps: list[Step] = []
        for sp, sub in enumerate(state):
            for op, cell in self.cell_model.enabled(sub):
                if op in OPS:
                    steps.append((op, cell, sp))
        steps.sort(key=lambda s: (s[2], s[1], OPS.index(s[0])))
        return steps

    def apply(self, state: ProductState, step: Step) -> ProductState:
        """Apply one step to its subpage's component; others untouched."""
        op, cell, sp = step
        if not 0 <= sp < self.n_subpages:
            raise ConfigError(f"subpage {sp} out of range")
        new_sub = self.cell_model.apply(state[sp], (op, cell))
        return state[:sp] + (new_sub,) + state[sp + 1 :]

    def quiescent(self, state: ProductState) -> bool:
        """No cell holds any subpage atomic (every lock released)."""
        return all(self.cell_model.quiescent(sub) for sub in state)

    def drain_steps(self, state: ProductState) -> tuple[Step, ...]:
        """A witness suffix driving every subpage to quiescence.

        Built from :meth:`ModelChecker.drain_path` per subpage — the
        quiescence invariant's witness made concrete, so every lowered
        schedule terminates with all locks released.
        """
        suffix: list[Step] = []
        for sp, sub in enumerate(state):
            for op, cell in self._checker.drain_path(sub):
                if op not in OPS:
                    raise InvariantViolation(
                        f"drain path for subpage {sp} uses non-lowerable op {op!r}"
                    )
                suffix.append((op, cell, sp))
        return tuple(suffix)

    # ------------------------------------------------------------------
    # Data semantics (overridable for mutation tests)
    # ------------------------------------------------------------------

    def write_value(self, index: int) -> Any:
        """The value the write at schedule position ``index`` deposits.

        Distinct per position, so observations identify their source
        write uniquely.
        """
        return index + 1

    def read_value(self, memory_value: Any) -> Any:
        """The value a (fresh-filling) read observes."""
        return memory_value


def run_model(model: ScenarioModel, steps: tuple[Step, ...]) -> Prediction:
    """Execute ``steps`` on the abstract model; never raises.

    A step that is not enabled in its pre-state (or whose application
    violates a model invariant) stops the run with ``completed=False``
    and the offending index — the model's analogue of the simulator
    deadlocking or livelocking there.
    """
    state = model.initial()
    memory: list[Any] = [0] * model.n_subpages
    observations: list[tuple[int, Any]] = []
    blocked_at: Optional[int] = None
    for index, step in enumerate(steps):
        op, _cell, sp = step
        if step not in model.enabled(state):
            blocked_at = index
            break
        try:
            state = model.apply(state, step)
        except (InvariantViolation, ProtocolError):
            blocked_at = index
            break
        if op == "write":
            memory[sp] = model.write_value(index)
        elif op == "read":
            observations.append((index, model.read_value(memory[sp])))
    return _prediction(model, state, observations, memory, blocked_at)


def _prediction(
    model: ScenarioModel,
    state: ProductState,
    observations: list[tuple[int, Any]],
    memory: list[Any],
    blocked_at: Optional[int],
) -> Prediction:
    directory_states = tuple(
        tuple(st.name if st is not None else None for st, _fresh in copies)
        for _created, copies in state
    )
    fresh = tuple(
        tuple(f for _st, f in copies) for _created, copies in state
    )
    created = tuple(c for c, _copies in state)
    return Prediction(
        completed=blocked_at is None,
        blocked_at=blocked_at,
        observations=tuple(observations),
        directory_states=directory_states,
        fresh=fresh,
        created=created,
        memory=tuple(memory),
        quiescent=model.quiescent(state),
    )


# ----------------------------------------------------------------------
# Canonicalization (symmetry reduction) and behaviour keys
# ----------------------------------------------------------------------


def canonicalize(
    steps: tuple[Step, ...],
) -> tuple[tuple[Step, ...], dict[int, int], dict[int, int]]:
    """Relabel cells and subpages by order of first appearance.

    The protocol is symmetric under permuting cell ids and subpage ids
    (no step's semantics depends on the numeric label), so every
    schedule is equivalent to exactly one *canonical* schedule — the
    one whose cells and subpages are introduced as ``0, 1, 2, ...``.
    Returns the canonical schedule plus the two relabelling maps.
    """
    cell_map: dict[int, int] = {}
    sp_map: dict[int, int] = {}
    out: list[Step] = []
    for op, cell, sp in steps:
        c = cell_map.setdefault(cell, len(cell_map))
        s = sp_map.setdefault(sp, len(sp_map))
        out.append((op, c, s))
    return tuple(out), cell_map, sp_map


def is_canonical(steps: tuple[Step, ...]) -> bool:
    """Whether ``steps`` is its own symmetry-class representative."""
    return canonicalize(steps)[0] == tuple(steps)


def _digest(
    model: ScenarioModel,
    observations: tuple[tuple[int, Any], ...],
    state: ProductState,
    memory: tuple[Any, ...],
) -> str:
    """Behaviour-class identity: observed-value history + final state."""
    payload = repr((model.n_cells, model.n_subpages, observations, state, memory))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def behaviour_key(model: ScenarioModel, steps: tuple[Step, ...]) -> str:
    """The behaviour-equivalence class of ``steps``' symmetry class.

    Canonicalizes first, so any two symmetric schedules get the same
    key by construction; schedules whose canonical forms differ get
    the same key iff the model predicts identical observations and
    identical final abstract state.
    """
    canon, _, _ = canonicalize(tuple(steps))
    state = model.initial()
    memory: list[Any] = [0] * model.n_subpages
    observations: list[tuple[int, Any]] = []
    for index, step in enumerate(canon):
        op, _cell, sp = step
        if step not in model.enabled(state):
            raise ConfigError(f"step {index} {step!r} is not enabled; not a model schedule")
        state = model.apply(state, step)
        if op == "write":
            memory[sp] = model.write_value(index)
        elif op == "read":
            observations.append((index, model.read_value(memory[sp])))
    return _digest(model, tuple(observations), state, tuple(memory))


# ----------------------------------------------------------------------
# Extraction certificate (KSR113 reuse)
# ----------------------------------------------------------------------

_certified: dict[int, tuple[list, dict[str, Any]]] = {}


def certify_extraction(n_cells: int = 3) -> tuple[list, dict[str, Any]]:
    """Run the KSR113 code-vs-model conformance gate, memoized.

    Returns the ``(findings, stats)`` of
    :func:`repro.analysis.flow.conformance.conformance_findings`.  An
    empty findings list certifies that the :class:`CoherenceModel`
    transition relation under this package *is* the one symbolically
    extracted from ``coherence/protocol.py`` — the scenarios pass and
    the corpus checker require that certificate before trusting any
    enumeration.
    """
    if n_cells not in _certified:
        from repro.analysis.flow.conformance import conformance_findings

        _certified[n_cells] = conformance_findings(n_cells=n_cells)
    return _certified[n_cells]
