"""Bounded enumeration of protocol interleavings into behaviour classes.

BFS over all schedules of length ``<= depth`` drawn from the scenario
model's enabled steps, with two reductions:

* **Symmetry** — only canonical schedules are generated (a step may
  use cell ``k`` / subpage ``k`` only after cells / subpages
  ``0..k-1`` have appeared), so each cell/subpage-permutation class is
  walked exactly once.  :data:`ScenarioClass.n_members` still counts
  the full class size via the orbit of the labels actually used.
* **Behaviour partition** — every generated schedule is bucketed by
  its :func:`~repro.analysis.scenarios.model.behaviour_key`
  (observed-value history + final abstract state, memory included).
  BFS order guarantees each class's representative is a shortest
  member, which keeps the lowered simulator runs minimal.

The result is the raw material of the corpus: one executable
representative per behaviour class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.analysis.modelcheck import InvariantViolation
from repro.analysis.scenarios.model import ScenarioModel, Step, _digest
from repro.errors import ConfigError, ProtocolError

__all__ = ["ScenarioClass", "Enumeration", "enumerate_classes"]

#: Safety valve against a damaged model exploding the walk.
MAX_SCHEDULES = 2_000_000


@dataclass(frozen=True)
class ScenarioClass:
    """One behaviour-equivalence class of bounded interleavings."""

    key: str
    #: Shortest canonical schedule realizing the behaviour.
    schedule: tuple[Step, ...]
    #: Canonical schedules observed in the class (symmetric variants
    #: not included — multiply by the label orbit for the full count).
    n_members: int


@dataclass(frozen=True)
class Enumeration:
    """All behaviour classes reachable within ``depth`` steps."""

    n_cells: int
    n_subpages: int
    depth: int
    classes: tuple[ScenarioClass, ...]
    #: Canonical schedules walked (every length ``1..depth`` prefix).
    n_schedules: int

    def digest(self) -> str:
        """Order-independent identity of the class partition."""
        import hashlib

        payload = "\n".join(sorted(c.key for c in self.classes))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def enumerate_classes(
    model: ScenarioModel,
    depth: int,
    *,
    max_schedules: int = MAX_SCHEDULES,
) -> Enumeration:
    """Walk every canonical schedule of length ``<= depth``.

    Broken ``cell_model`` subclasses (mutation tests) may make a step
    raise on application; such branches are pruned rather than fatal —
    the mutant's reachable behaviour is still fully enumerated.
    """
    if depth < 1:
        raise ConfigError(f"depth must be >= 1, got {depth}")
    counts: dict[str, int] = {}
    reps: dict[str, tuple[Step, ...]] = {}
    n_schedules = 0
    # (state, schedule, observations, memory, cells_used, subpages_used)
    init = model.initial()
    frontier: deque[
        tuple[Any, tuple[Step, ...], tuple[tuple[int, Any], ...], tuple[Any, ...], int, int]
    ] = deque([(init, (), (), (0,) * model.n_subpages, 0, 0)])
    while frontier:
        state, schedule, obs, memory, used_cells, used_subpages = frontier.popleft()
        if len(schedule) == depth:
            continue
        index = len(schedule)
        for step in model.enabled(state):
            op, cell, sp = step
            # Canonical-order pruning: a fresh cell/subpage label must
            # be the next unused one; anything beyond is a relabelling
            # of a schedule generated elsewhere in the walk.
            if cell > used_cells or sp > used_subpages:
                continue
            try:
                new_state = model.apply(state, step)
            except (InvariantViolation, ProtocolError):
                continue
            new_memory = memory
            new_obs = obs
            if op == "write":
                new_memory = memory[:sp] + (model.write_value(index),) + memory[sp + 1 :]
            elif op == "read":
                new_obs = obs + ((index, model.read_value(memory[sp])),)
            new_schedule = schedule + (step,)
            n_schedules += 1
            if n_schedules > max_schedules:
                raise ConfigError(
                    f"enumeration exceeded {max_schedules} schedules at depth "
                    f"{depth}; lower the bound or fix the model"
                )
            key = _digest(model, new_obs, new_state, new_memory)
            counts[key] = counts.get(key, 0) + 1
            if key not in reps:
                reps[key] = new_schedule
            frontier.append(
                (
                    new_state,
                    new_schedule,
                    new_obs,
                    new_memory,
                    max(used_cells, cell + 1),
                    max(used_subpages, sp + 1),
                )
            )
    classes = tuple(
        ScenarioClass(key=key, schedule=reps[key], n_members=counts[key])
        for key in sorted(reps, key=lambda k: (len(reps[k]), reps[k]))
    )
    return Enumeration(
        n_cells=model.n_cells,
        n_subpages=model.n_subpages,
        depth=depth,
        classes=classes,
        n_schedules=n_schedules,
    )
