"""Scenario corpus: batch execution, pinned manifest, CI replay.

The enumerator yields behaviour classes per *config* — a ``(n_cells,
n_subpages, depth)`` triple.  This module turns a grid of configs into
an executable corpus:

* :func:`run_corpus` fans the differential runs out through
  :class:`repro.experiments.sweep.SweepRunner` — the point function is
  pure (schedule + config + seed determine the outcome), so corpus
  execution parallelizes and caches exactly like any paper sweep.  The
  scenario :data:`~repro.analysis.scenarios.model.MODEL_VERSION` rides
  in every point's kwargs (and in ``code_version()``), so a model
  change can never replay stale verdicts.
* :func:`build_manifest` / :func:`check_manifest` pin the corpus for
  CI: the manifest records, per config, the class count, schedule
  count and an order-independent digest of the class partition, plus a
  deterministic sample of class keys whose representatives are
  re-executed on every check.  Class-count or digest drift and any
  oracle divergence fail the check.

Sampling is a seed-offset stride over the key-sorted classes — no RNG
objects (the package-wide KSR103 rule), same slice everywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.analysis.scenarios.explore import Enumeration, ScenarioClass, enumerate_classes
from repro.analysis.scenarios.model import MODEL_VERSION, ScenarioModel
from repro.analysis.scenarios.oracle import differential_run
from repro.errors import ConfigError

__all__ = [
    "DEFAULT_MANIFEST",
    "DEFAULT_GRID",
    "HAND_WRITTEN_GRID_POINTS",
    "CorpusRun",
    "CheckReport",
    "execute_scenario",
    "run_corpus",
    "sample_classes",
    "build_manifest",
    "load_manifest",
    "write_manifest",
    "check_manifest",
    "corpus_document",
]

#: Committed manifest file name (repo root / current directory).
DEFAULT_MANIFEST = ".ksr-scenario-manifest.json"

#: The pinned corpus grid: (n_cells, n_subpages, depth) per config.
#: Chosen so the corpus stays a few seconds to execute in full while
#: exceeding the hand-written litmus grids by well over an order of
#: magnitude (~4 500 classes vs ~94 grid points).
DEFAULT_GRID: tuple[tuple[int, int, int], ...] = (
    (2, 1, 5),
    (3, 1, 4),
    (2, 2, 4),
    (3, 2, 4),
)

#: Hand-written litmus coverage: the 3x3 LB grid, the 3^4 IRIW grid
#: and the four default-skew baselines (tests/coherence/test_litmus.py).
HAND_WRITTEN_GRID_POINTS = 9 + 81 + 4


def execute_scenario(
    *,
    schedule: tuple,
    n_cells: int,
    n_subpages: int,
    seed: int,
    model_version: str,
) -> dict[str, Any]:
    """Sweep point function: one differential run, plain-data verdict.

    Module-level and pure so :class:`SweepRunner` can pickle it to
    worker processes and cache its result; ``model_version`` is part of
    the signature purely to key the cache.
    """
    if model_version != MODEL_VERSION:
        raise ConfigError(
            f"scenario point built for model {model_version}, "
            f"running model {MODEL_VERSION}"
        )
    model = ScenarioModel(n_cells, n_subpages)
    result = differential_run(tuple(tuple(s) for s in schedule), model=model, seed=seed)
    return {
        "ok": result.ok,
        "schedule": [list(s) for s in result.schedule],
        "lowered": [list(s) for s in result.lowered],
        "divergences": [[d.kind, d.message] for d in result.divergences],
    }


@dataclass(frozen=True)
class CorpusRun:
    """Outcome of executing (part of) a corpus."""

    n_executed: int
    n_divergent: int
    #: (config, class key, verdict dict) per divergent scenario.
    failures: tuple[tuple[tuple[int, int, int], str, dict[str, Any]], ...]

    @property
    def ok(self) -> bool:
        return self.n_divergent == 0


def run_corpus(
    enumerations: list[Enumeration],
    *,
    jobs: int = 1,
    seed: int = 1,
    cache: Optional[Any] = None,
    classes_for: Optional[Callable[[Enumeration], list[ScenarioClass]]] = None,
) -> CorpusRun:
    """Execute class representatives through the sweep runner.

    ``classes_for`` selects which classes of each enumeration run (the
    manifest check passes the pinned sample; default: all of them).
    """
    from repro.experiments.sweep import SweepRunner

    runner = SweepRunner(jobs=jobs, cache=cache)
    calls: list[dict[str, Any]] = []
    owners: list[tuple[tuple[int, int, int], str]] = []
    for enum in enumerations:
        config = (enum.n_cells, enum.n_subpages, enum.depth)
        for cls in classes_for(enum) if classes_for is not None else enum.classes:
            calls.append(
                {
                    "schedule": cls.schedule,
                    "n_cells": enum.n_cells,
                    "n_subpages": enum.n_subpages,
                    "seed": seed,
                    "model_version": MODEL_VERSION,
                }
            )
            owners.append((config, cls.key))
    results = runner.map(execute_scenario, calls)
    failures = tuple(
        (config, key, verdict)
        for (config, key), verdict in zip(owners, results)
        if not verdict["ok"]
    )
    return CorpusRun(
        n_executed=len(results),
        n_divergent=len(failures),
        failures=failures,
    )


def sample_classes(enum: Enumeration, k: int, seed: int) -> list[ScenarioClass]:
    """A deterministic ``k``-element slice of the class partition.

    Stride sampling over the key-sorted classes with a seed-derived
    offset: reproducible everywhere without constructing an RNG, and
    spread across the whole behaviour space rather than clustered at
    the shallow end.
    """
    if k < 0:
        raise ConfigError(f"sample size must be >= 0, got {k}")
    ordered = sorted(enum.classes, key=lambda c: c.key)
    if k == 0 or k >= len(ordered):
        return ordered if k else []
    stride = max(1, len(ordered) // k)
    offset = seed % stride
    return ordered[offset::stride][:k]


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


def build_manifest(
    grid: tuple[tuple[int, int, int], ...] = DEFAULT_GRID,
    *,
    seed: int = 1,
    sample_per_config: int = 40,
) -> dict[str, Any]:
    """Enumerate the grid and pin counts, digests and a replay sample."""
    configs = []
    for n_cells, n_subpages, depth in grid:
        enum = enumerate_classes(ScenarioModel(n_cells, n_subpages), depth)
        configs.append(
            {
                "n_cells": n_cells,
                "n_subpages": n_subpages,
                "depth": depth,
                "n_classes": len(enum.classes),
                "n_schedules": enum.n_schedules,
                "digest": enum.digest(),
                "sample": [c.key for c in sample_classes(enum, sample_per_config, seed)],
            }
        )
    return {
        "tool": "ksr-analyze scenarios",
        "model_version": MODEL_VERSION,
        "seed": seed,
        "sample_per_config": sample_per_config,
        "configs": configs,
    }


def write_manifest(path: Path, manifest: dict[str, Any]) -> None:
    """Serialize a manifest to ``path`` (pretty JSON, trailing newline)."""
    path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")


def load_manifest(path: Path) -> dict[str, Any]:
    """Read a manifest; :class:`ConfigError` on unreadable/foreign files."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read scenario manifest {path}: {exc}") from exc
    if not isinstance(doc, dict) or "configs" not in doc:
        raise ConfigError(f"{path} is not a scenario manifest")
    return doc


@dataclass(frozen=True)
class CheckReport:
    """Manifest replay verdict: drift entries + divergent scenarios."""

    #: (kind, message, detail) — kind is ``drift`` or ``divergence``.
    problems: tuple[tuple[str, str, dict[str, Any]], ...]
    n_classes: int
    n_executed: int

    @property
    def ok(self) -> bool:
        return not self.problems


def check_manifest(
    manifest: dict[str, Any],
    *,
    jobs: int = 1,
    cache: Optional[Any] = None,
) -> CheckReport:
    """Re-enumerate every pinned config and replay the pinned sample.

    Drift (class count, schedule count, partition digest, model
    version, vanished sample keys) and any differential divergence
    are reported; an empty report means the committed corpus still
    describes this tree exactly.
    """
    problems: list[tuple[str, str, dict[str, Any]]] = []
    if manifest.get("model_version") != MODEL_VERSION:
        problems.append(
            (
                "drift",
                f"manifest pinned model_version={manifest.get('model_version')!r}, "
                f"tree has {MODEL_VERSION!r} — regenerate with --write-manifest",
                {"manifest": manifest.get("model_version"), "tree": MODEL_VERSION},
            )
        )
    seed = int(manifest.get("seed", 1))
    n_classes = 0
    enums: list[Enumeration] = []
    samples: list[list[ScenarioClass]] = []
    for cfg in manifest["configs"]:
        triple = (cfg["n_cells"], cfg["n_subpages"], cfg["depth"])
        enum = enumerate_classes(ScenarioModel(cfg["n_cells"], cfg["n_subpages"]), cfg["depth"])
        n_classes += len(enum.classes)
        for field, actual in (
            ("n_classes", len(enum.classes)),
            ("n_schedules", enum.n_schedules),
            ("digest", enum.digest()),
        ):
            if cfg.get(field) != actual:
                problems.append(
                    (
                        "drift",
                        f"config {triple}: {field} was {cfg.get(field)!r}, now {actual!r}",
                        {"config": list(triple), "field": field},
                    )
                )
        by_key = {c.key: c for c in enum.classes}
        picked: list[ScenarioClass] = []
        for key in cfg.get("sample", []):
            cls = by_key.get(key)
            if cls is None:
                problems.append(
                    (
                        "drift",
                        f"config {triple}: pinned class {key} no longer exists",
                        {"config": list(triple), "key": key},
                    )
                )
            else:
                picked.append(cls)
        enums.append(enum)
        samples.append(picked)
    by_enum = dict(zip([id(e) for e in enums], samples))
    run = run_corpus(
        enums,
        jobs=jobs,
        seed=seed,
        cache=cache,
        classes_for=lambda e: by_enum[id(e)],
    )
    for config, key, verdict in run.failures:
        kinds = ", ".join(kind for kind, _msg in verdict["divergences"])
        problems.append(
            (
                "divergence",
                f"config {config}: class {key} diverged ({kinds})",
                {"config": list(config), "key": key, "verdict": verdict},
            )
        )
    return CheckReport(
        problems=tuple(problems),
        n_classes=n_classes,
        n_executed=run.n_executed,
    )


def corpus_document(
    enumerations: list[Enumeration],
    *,
    run: Optional[CorpusRun] = None,
) -> dict[str, Any]:
    """JSON-serializable corpus artifact (CI upload / offline replay)."""
    failed = {key for _cfg, key, _v in (run.failures if run else ())}
    return {
        "tool": "ksr-analyze scenarios",
        "model_version": MODEL_VERSION,
        "configs": [
            {
                "n_cells": e.n_cells,
                "n_subpages": e.n_subpages,
                "depth": e.depth,
                "n_classes": len(e.classes),
                "n_schedules": e.n_schedules,
                "digest": e.digest(),
                "classes": [
                    {
                        "key": c.key,
                        "schedule": [list(s) for s in c.schedule],
                        "n_members": c.n_members,
                        **({"diverged": True} if c.key in failed else {}),
                    }
                    for c in e.classes
                ],
            }
            for e in enumerations
        ],
    }
