"""Lowering and the differential model-vs-simulator oracle.

Each behaviour-class representative (an abstract schedule of ``(op,
cell, subpage)`` steps) is lowered to a concrete run: one subpage-
aligned word per abstract subpage, writes carrying their globally
unique step value, executed step-at-a-time on the real simulator via
:func:`repro.coherence.litmus.run_schedule` — so the schedule *is* the
interleaving and the abstract model's sequential semantics apply
exactly.  A drain suffix from the quiescence witness
(:meth:`ModelChecker.drain_path`, via
:meth:`ScenarioModel.drain_steps`) is appended first, so every
generated run terminates with all atomic locks released.

The oracle then compares, channel by channel:

* completion — the model predicts every generated step executes; a
  simulator deadlock/livelock is a divergence (and vice versa);
* observed-value history — every read's (step index, value);
* final directory state per (subpage, cell), *and* the simulator's
  local-cache state against its own directory (an internal
  disagreement is reported even when one side matches the model);
* subpage ``created`` flags and final memory values;
* quiescence of the final state.

Any mismatch is a protocol-vs-model bug with a replayable trace: the
lowered schedule plus the seed reproduces it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis.modelcheck import InvariantViolation
from repro.analysis.scenarios.model import (
    Prediction,
    ScenarioModel,
    Step,
    run_model,
)
from repro.coherence.litmus import ScheduleOutcome, run_schedule

__all__ = ["Divergence", "DifferentialResult", "lower_schedule", "differential_run"]


@dataclass(frozen=True)
class Divergence:
    """One channel where the simulator left the predicted class."""

    kind: str  # completion | observation | directory | cache | created | memory | quiescence
    message: str


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of executing one lowered scenario against its prediction."""

    schedule: tuple[Step, ...]  # as generated (pre-drain)
    lowered: tuple[Step, ...]  # with drain suffix
    prediction: Prediction
    outcome: Optional[ScheduleOutcome]
    divergences: tuple[Divergence, ...]

    @property
    def ok(self) -> bool:
        return not self.divergences


def lower_schedule(
    model: ScenarioModel, schedule: tuple[Step, ...]
) -> tuple[tuple[Step, ...], Prediction]:
    """Append the drain suffix and predict the full run.

    The drain is computed on the model's final state, so for a mutant
    model it reflects the *mutant's* idea of how to release locks —
    exactly what the oracle must test.
    """
    prediction = run_model(model, tuple(schedule))
    if not prediction.completed:
        return tuple(schedule), prediction
    state = model.initial()
    for step in schedule:
        state = model.apply(state, step)
    lowered = tuple(schedule) + model.drain_steps(state)
    return lowered, run_model(model, lowered)


def _concrete_steps(model: ScenarioModel, lowered: tuple[Step, ...]) -> list[tuple]:
    """Simulator form: write steps carry their unique value."""
    out: list[tuple] = []
    for index, (op, cell, sp) in enumerate(lowered):
        if op == "write":
            out.append((op, cell, sp, model.write_value(index)))
        else:
            out.append((op, cell, sp))
    return out


def differential_run(
    schedule: tuple[Step, ...],
    *,
    model: ScenarioModel,
    seed: int = 1,
) -> DifferentialResult:
    """Lower ``schedule``, run it on the simulator, diff every channel."""
    try:
        lowered, prediction = lower_schedule(model, tuple(schedule))
    except InvariantViolation as exc:
        # The model cannot produce a drain witness for its own final
        # state — a quiescence bug in the model itself.
        return DifferentialResult(
            schedule=tuple(schedule),
            lowered=tuple(schedule),
            prediction=run_model(model, tuple(schedule)),
            outcome=None,
            divergences=(Divergence("drain", str(exc)),),
        )
    if not prediction.completed:
        # The generating model refuses its own schedule — only broken
        # models do this; surface it as a (model-side) divergence.
        return DifferentialResult(
            schedule=tuple(schedule),
            lowered=lowered,
            prediction=prediction,
            outcome=None,
            divergences=(
                Divergence(
                    "completion",
                    f"model blocks its own schedule at step {prediction.blocked_at}",
                ),
            ),
        )
    outcome = run_schedule(
        _concrete_steps(model, lowered),
        n_cells=model.n_cells,
        n_vars=model.n_subpages,
        seed=seed,
    )
    divergences = tuple(_compare(prediction, outcome))
    return DifferentialResult(
        schedule=tuple(schedule),
        lowered=lowered,
        prediction=prediction,
        outcome=outcome,
        divergences=divergences,
    )


def _compare(prediction: Prediction, outcome: ScheduleOutcome) -> list[Divergence]:
    if not outcome.completed:
        return [
            Divergence(
                "completion",
                f"model predicts completion, simulator stuck: {outcome.diagnostics}",
            )
        ]
    out: list[Divergence] = []
    if prediction.observations != outcome.observations:
        out.append(
            Divergence(
                "observation",
                f"model observes {prediction.observations!r}, "
                f"simulator observes {outcome.observations!r}",
            )
        )
    if prediction.directory_states != outcome.directory_states:
        out.append(
            Divergence(
                "directory",
                f"model final states {prediction.directory_states!r}, "
                f"simulator directory {outcome.directory_states!r}",
            )
        )
    if outcome.cache_states != outcome.directory_states:
        out.append(
            Divergence(
                "cache",
                f"simulator local caches {outcome.cache_states!r} disagree "
                f"with its directory {outcome.directory_states!r}",
            )
        )
    if prediction.created != outcome.created:
        out.append(
            Divergence(
                "created",
                f"model created flags {prediction.created!r}, "
                f"simulator {outcome.created!r}",
            )
        )
    if prediction.memory != outcome.memory:
        out.append(
            Divergence(
                "memory",
                f"model memory {prediction.memory!r}, simulator {outcome.memory!r}",
            )
        )
    if not prediction.quiescent:
        out.append(
            Divergence(
                "quiescence",
                "lowered schedule does not end quiescent (drain suffix failed)",
            )
        )
    elif any("ATOMIC" in row for row in outcome.directory_states):
        out.append(
            Divergence(
                "quiescence",
                f"simulator still holds atomic state after drain: "
                f"{outcome.directory_states!r}",
            )
        )
    return out
