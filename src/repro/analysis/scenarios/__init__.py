"""Commuter-style symbolic scenario generation for the ALLCACHE protocol.

Enumerate every bounded interleaving of protocol operations on a small
abstract machine (2–3 cells, 1–2 subpages), reduce them up to
cell/subpage symmetry, partition them into behaviour-equivalence
classes, and execute one representative per class on the real
simulator with a differential oracle.  See the submodules:

* :mod:`.model` — product model whose per-subpage relation is the
  KSR113-certified extraction of ``coherence/protocol.py``;
* :mod:`.explore` — symmetry-reduced BFS enumeration into classes;
* :mod:`.oracle` — lowering (with quiescence-drain suffix) and the
  model-vs-simulator differential comparison;
* :mod:`.corpus` — sweep-runner fan-out, pinned manifest, CI check.
"""

from repro.analysis.scenarios.corpus import (
    DEFAULT_GRID,
    DEFAULT_MANIFEST,
    HAND_WRITTEN_GRID_POINTS,
    CheckReport,
    CorpusRun,
    build_manifest,
    check_manifest,
    corpus_document,
    execute_scenario,
    load_manifest,
    run_corpus,
    sample_classes,
    write_manifest,
)
from repro.analysis.scenarios.explore import Enumeration, ScenarioClass, enumerate_classes
from repro.analysis.scenarios.model import (
    MODEL_VERSION,
    Prediction,
    ScenarioModel,
    Step,
    behaviour_key,
    canonicalize,
    certify_extraction,
    is_canonical,
    run_model,
)
from repro.analysis.scenarios.oracle import (
    DifferentialResult,
    Divergence,
    differential_run,
    lower_schedule,
)

__all__ = [
    "MODEL_VERSION",
    "DEFAULT_GRID",
    "DEFAULT_MANIFEST",
    "HAND_WRITTEN_GRID_POINTS",
    "Step",
    "Prediction",
    "ScenarioModel",
    "ScenarioClass",
    "Enumeration",
    "Divergence",
    "DifferentialResult",
    "CorpusRun",
    "CheckReport",
    "run_model",
    "canonicalize",
    "is_canonical",
    "behaviour_key",
    "certify_extraction",
    "enumerate_classes",
    "lower_schedule",
    "differential_run",
    "execute_scenario",
    "run_corpus",
    "sample_classes",
    "build_manifest",
    "load_manifest",
    "write_manifest",
    "check_manifest",
    "corpus_document",
]
