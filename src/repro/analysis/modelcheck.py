"""Exhaustive state-space checking of the ALLCACHE coherence protocol.

The simulator's protocol is exercised by litmus tests and fuzzing, but
those only sample interleavings.  This module *enumerates*: it builds an
abstract transition model of the protocol for one subpage and a handful
of cells, BFS-explores every reachable state, and verifies the paper's
correctness-critical invariants in each one.

The abstraction
---------------
A state is ``(created, ((copy_state, fresh), ...))`` — one entry per
cell.  ``copy_state`` is the cell's :class:`SubpageState` (or ``None``
when the cell holds no copy at all) and ``fresh`` records whether the
copy's data matches the current memory value (writes by other cells
make a copy stale).  Timing is abstracted away entirely: each protocol
operation (read miss, write/upgrade, ``get_subpage``, ``release``,
``poststore``, eviction) becomes one atomic transition.

The transitions are *extracted from*, not re-implemented beside, the
coherence layer:

* every per-cell state change is validated against
  :func:`repro.coherence.states.legal_transition`;
* the directory bookkeeping replays the exact
  :class:`repro.coherence.directory.Directory` call sequence that
  :mod:`repro.coherence.protocol` performs (``invalidate_others`` then
  ``record_fill_exclusive``, ``demote_owner`` then
  ``record_fill_shared``, ...), so :class:`DirectoryEntry.check` and
  the directory/cache agreement check run against the real code.

Invariants verified in every reachable state
--------------------------------------------
1. at most one cell holds an EXCLUSIVE or ATOMIC copy;
2. the directory entry agrees with every cell's cache state
   (``Directory.state_in`` == the cell's copy state);
3. no valid (readable) copy is stale — in particular a snarfed
   place-holder always revalidated from current data;
4. every reachable state can drain to quiescence (a path exists to a
   state with no ATOMIC holder — no cell can wedge the subpage lock).

Deliberately broken models (tests subclass :class:`CoherenceModel` and
damage one primitive) must produce at least one reported violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.coherence.directory import Directory
from repro.coherence.states import SubpageState, legal_transition
from repro.errors import ConfigError, ProtocolError, ReproError

__all__ = [
    "InvariantViolation",
    "CellCopy",
    "ModelState",
    "CoherenceModel",
    "ModelCheckResult",
    "ModelChecker",
]

#: The single abstract subpage the model reasons about.
SUBPAGE = 0


class InvariantViolation(ReproError):
    """An abstract protocol transition broke a checked invariant."""


#: One cell's view: (coherence state or ``None`` if absent, data fresh?)
CellCopy = tuple[Optional[SubpageState], bool]
#: Full abstract machine state: (subpage ever created?, per-cell copies).
ModelState = tuple[bool, tuple[CellCopy, ...]]

#: Action kinds, one per protocol entry point the model abstracts.
ACTIONS = ("read", "write", "gsp", "rsp", "poststore", "evict")

#: (action kind, acting cell id)
Action = tuple[str, int]


class _Cells:
    """Mutable per-cell copies during one transition, with every state
    change validated against the protocol's legal-transition relation."""

    def __init__(self, copies: tuple[CellCopy, ...]):
        self.states: list[Optional[SubpageState]] = [c[0] for c in copies]
        self.fresh: list[bool] = [c[1] for c in copies]

    def set_state(self, cell_id: int, new: SubpageState, *, fresh: bool) -> None:
        old = self.states[cell_id]
        if not legal_transition(old, new):
            raise InvariantViolation(
                f"illegal per-cell transition {old} -> {new} on cell {cell_id}"
            )
        self.states[cell_id] = new
        self.fresh[cell_id] = fresh

    def drop(self, cell_id: int) -> None:
        self.states[cell_id] = None
        self.fresh[cell_id] = True  # vacuous: no data held

    def stale_others(self, keep_cell: int) -> None:
        """A write by ``keep_cell`` made every other copy's data stale."""
        for c in range(len(self.fresh)):
            if c != keep_cell and self.states[c] is not None:
                self.fresh[c] = False

    def owner(self) -> Optional[int]:
        for c, st in enumerate(self.states):
            if st in (SubpageState.EXCLUSIVE, SubpageState.ATOMIC):
                return c
        return None

    def snapshot(self) -> tuple[CellCopy, ...]:
        return tuple(zip(self.states, self.fresh))


class CoherenceModel:
    """Abstract transition model of the protocol for one subpage.

    The primitive steps (``_invalidate_others``, ``_snarf_placeholders``,
    ...) are separate methods so tests can subclass and deliberately
    break one of them; the checker must then report violations.
    """

    def __init__(self, n_cells: int):
        if n_cells < 2:
            raise ConfigError("model checking needs at least 2 cells")
        self.n_cells = n_cells

    # ------------------------------------------------------------------
    # State plumbing
    # ------------------------------------------------------------------

    def initial(self) -> ModelState:
        """The pristine state: no directory entry, no cell holds a copy."""
        return (False, tuple((None, True) for _ in range(self.n_cells)))

    def _directory_for(self, created: bool, cells: _Cells) -> Directory:
        """Rebuild a real :class:`Directory` mirroring the cell states."""
        directory = Directory()
        entry = directory.entry(SUBPAGE)
        for c, st in enumerate(cells.states):
            if st is None:
                continue
            if st is SubpageState.INVALID:
                entry.placeholders.add(c)
            else:
                entry.sharers.add(c)
            if st in (SubpageState.EXCLUSIVE, SubpageState.ATOMIC):
                entry.owner = c
                entry.atomic = st is SubpageState.ATOMIC
        entry.created = created
        return directory

    # ------------------------------------------------------------------
    # Enabled actions
    # ------------------------------------------------------------------

    def enabled(self, state: ModelState) -> list[Action]:
        """Actions with an observable effect in ``state``.

        Identity transitions (local cache hits, re-locking an already
        atomic subpage) and blocked requests (another cell holds the
        subpage atomic — the hardware retries, so no state change) are
        omitted: they never change the reachable set.
        """
        created, copies = state
        cells = _Cells(copies)
        owner = cells.owner()
        atomic = owner is not None and cells.states[owner] is SubpageState.ATOMIC
        actions: list[Action] = []
        for c in range(self.n_cells):
            st = cells.states[c]
            blocked = atomic and owner != c
            if not blocked and (st is None or not st.valid):
                actions.append(("read", c))
            if not blocked and owner != c:
                actions.append(("write", c))
            if not blocked and st is not SubpageState.ATOMIC:
                actions.append(("gsp", c))
            if st is SubpageState.ATOMIC:
                actions.append(("rsp", c))
            if owner == c and not atomic:
                actions.append(("poststore", c))
            if st is not None and st is not SubpageState.ATOMIC:
                actions.append(("evict", c))
        return actions

    def apply(self, state: ModelState, action: Action) -> ModelState:
        """Apply ``action``, verify the invariants, return the new state.

        Raises :class:`InvariantViolation` (or lets the directory's own
        :class:`~repro.errors.ProtocolError` escape) when the transition
        breaks the protocol rules.
        """
        kind, cell_id = action
        created, copies = state
        cells = _Cells(copies)
        directory = self._directory_for(created, cells)
        handler = getattr(self, f"_do_{kind}")
        created = handler(directory, cells, cell_id, created)
        self.check_state(directory, cells)
        return (created, cells.snapshot())

    # ------------------------------------------------------------------
    # Transitions (each mirrors the protocol.py call sequence)
    # ------------------------------------------------------------------

    def _do_read(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        entry = d.entry(SUBPAGE)
        if not entry.has_valid_copy and not entry.created:
            # COMA cold first touch: allocate locally, straight to EXCLUSIVE.
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
            d.record_fill_exclusive(SUBPAGE, c)
            return True
        owner = cells.owner()
        if owner is not None and owner != c:
            # acquire_shared demotes the responding owner to SHARED.
            cells.set_state(owner, SubpageState.SHARED, fresh=cells.fresh[owner])
            d.demote_owner(SUBPAGE)
        cells.set_state(c, SubpageState.SHARED, fresh=True)
        d.record_fill_shared(SUBPAGE, c)
        self._snarf_placeholders(d, cells)
        return True

    def _do_write(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        entry = d.entry(SUBPAGE)
        if not entry.has_valid_copy and not entry.placeholders and not entry.created:
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
            d.record_fill_exclusive(SUBPAGE, c)
            return True
        self._invalidate_others(d, cells, c)
        cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
        d.record_fill_exclusive(SUBPAGE, c)
        cells.stale_others(c)
        return True

    def _do_gsp(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        entry = d.entry(SUBPAGE)
        if entry.owner == c:
            # Upgrade the held EXCLUSIVE copy in place.
            d.set_atomic(SUBPAGE, c, True)
            cells.set_state(c, SubpageState.ATOMIC, fresh=cells.fresh[c])
            return created
        if not entry.has_valid_copy and not entry.placeholders and not entry.created:
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
        else:
            self._invalidate_others(d, cells, c)
            cells.set_state(c, SubpageState.EXCLUSIVE, fresh=True)
            cells.stale_others(c)
        # The combined fill-and-lock is EXCLUSIVE then ATOMIC: the cell
        # first obtains the only valid copy, then the lock bit.
        cells.set_state(c, SubpageState.ATOMIC, fresh=True)
        d.record_fill_exclusive(SUBPAGE, c, atomic=True)
        return True

    def _do_rsp(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        entry = d.entry(SUBPAGE)
        if entry.owner != c or not entry.atomic:
            raise InvariantViolation(
                f"cell {c} releasing subpage it does not hold atomic"
            )
        d.set_atomic(SUBPAGE, c, False)
        cells.set_state(c, SubpageState.EXCLUSIVE, fresh=cells.fresh[c])
        return created

    def _do_poststore(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        entry = d.entry(SUBPAGE)
        if entry.owner != c or entry.atomic:
            raise InvariantViolation(
                f"poststore by cell {c} without non-atomic ownership"
            )
        cells.set_state(c, SubpageState.SHARED, fresh=cells.fresh[c])
        d.demote_owner(SUBPAGE)
        self._snarf_placeholders(d, cells)
        return created

    def _do_evict(self, d: Directory, cells: _Cells, c: int, created: bool) -> bool:
        if cells.states[c] is SubpageState.ATOMIC:
            raise InvariantViolation(f"random replacement evicted atomic copy of cell {c}")
        d.drop_copy(SUBPAGE, c)
        cells.drop(c)
        return created

    # ------------------------------------------------------------------
    # Overridable primitives (broken in tests to prove the checker bites)
    # ------------------------------------------------------------------

    def _invalidate_others(self, d: Directory, cells: _Cells, keep_cell: int) -> None:
        """Every other valid copy becomes a stale place-holder."""
        losers = d.invalidate_others(SUBPAGE, keep_cell)
        for loser in losers:
            cells.set_state(loser, SubpageState.INVALID, fresh=False)

    def _snarf_placeholders(self, d: Directory, cells: _Cells) -> None:
        """Place-holders revalidate from the passing response packet.

        Mirrors ``CoherenceProtocol._snarf_placeholders`` including its
        guard: with an exclusive owner present the circulating packet
        may be stale and must not revive anybody.
        """
        entry = d.entry(SUBPAGE)
        if entry.owner is not None:
            return
        for holder in sorted(entry.placeholders):
            cells.set_state(holder, SubpageState.SHARED, fresh=True)
        revived = set(entry.placeholders)
        entry.sharers |= revived
        entry.placeholders.clear()
        entry.check()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_state(self, d: Directory, cells: _Cells) -> None:
        """Raise :class:`InvariantViolation` unless all invariants hold."""
        entry = d.entry(SUBPAGE)
        entry.check()
        owners = [
            c
            for c, st in enumerate(cells.states)
            if st in (SubpageState.EXCLUSIVE, SubpageState.ATOMIC)
        ]
        if len(owners) > 1:
            raise InvariantViolation(f"multiple exclusive owners: {owners}")
        for c, st in enumerate(cells.states):
            dir_view = d.state_in(SUBPAGE, c)
            if dir_view != st:
                raise InvariantViolation(
                    f"directory says cell {c} is {dir_view}, cache says {st}"
                )
            if st is not None and st.valid and not cells.fresh[c]:
                raise InvariantViolation(
                    f"cell {c} holds a valid but stale copy ({st.name})"
                )

    @staticmethod
    def quiescent(state: ModelState) -> bool:
        """No cell holds the subpage atomic (the lock can always drain)."""
        _, copies = state
        return all(st is not SubpageState.ATOMIC for st, _ in copies)


@dataclass
class Violation:
    """One invariant violation found during exploration."""

    state: ModelState
    action: Optional[Action]
    message: str
    trace: tuple[Action, ...] = ()

    def __str__(self) -> str:
        path = " -> ".join(f"{k}({c})" for k, c in self.trace) or "<initial>"
        act = f"{self.action[0]}({self.action[1]})" if self.action else "<check>"
        return f"{act} after [{path}]: {self.message}"


@dataclass
class ModelCheckResult:
    """Outcome of one exhaustive exploration."""

    n_cells: int
    n_states: int
    n_transitions: int
    violations: list[Violation] = field(default_factory=list)
    #: Reachable states with no path back to quiescence (should be empty).
    non_drainable: list[ModelState] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.non_drainable

    def summary(self) -> str:
        """One-paragraph human-readable result, counterexamples included."""
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"modelcheck[{self.n_cells} cells]: {status} — "
            f"{self.n_states} states, {self.n_transitions} transitions, "
            f"{len(self.violations)} violation(s), "
            f"{len(self.non_drainable)} non-drainable state(s)"
        ]
        for v in self.violations[:10]:
            lines.append(f"  violation: {v}")
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


class ModelChecker:
    """BFS over the abstract protocol model's reachable state space."""

    #: Safety valve against a broken model exploding the state space.
    MAX_STATES = 200_000

    def __init__(self, n_cells: int, model: Optional[CoherenceModel] = None):
        self.model = model if model is not None else CoherenceModel(n_cells)
        self.n_cells = self.model.n_cells

    def run(self) -> ModelCheckResult:
        """Explore exhaustively; collect violations instead of raising."""
        model = self.model
        init = model.initial()
        # parent pointers for counterexample traces
        parents: dict[ModelState, tuple[Optional[ModelState], Optional[Action]]] = {
            init: (None, None)
        }
        edges: dict[ModelState, list[ModelState]] = {init: []}
        violations: list[Violation] = []
        queue: deque[ModelState] = deque([init])
        n_transitions = 0
        while queue:
            state = queue.popleft()
            for action in model.enabled(state):
                n_transitions += 1
                try:
                    new = model.apply(state, action)
                except (InvariantViolation, ProtocolError) as exc:
                    violations.append(
                        Violation(state, action, str(exc), self._trace(parents, state))
                    )
                    continue
                edges[state].append(new)
                if new not in parents:
                    parents[new] = (state, action)
                    edges.setdefault(new, [])
                    queue.append(new)
                    if len(parents) > self.MAX_STATES:
                        raise ConfigError(
                            f"state space exceeded {self.MAX_STATES} states; "
                            "the abstract model is broken"
                        )
        non_drainable = self._non_drainable(edges)
        for stuck in non_drainable:
            # Quiescence failures carry the same counterexample context
            # as transition violations: the witness path that reaches
            # the wedged state (there is, by definition, no drain path
            # to show).
            violations.append(
                Violation(
                    stuck,
                    None,
                    "no drain path to quiescence: every reachable successor "
                    "keeps an ATOMIC holder",
                    self._trace(parents, stuck),
                )
            )
        return ModelCheckResult(
            n_cells=self.n_cells,
            n_states=len(parents),
            n_transitions=n_transitions,
            violations=violations,
            non_drainable=non_drainable,
        )

    def drain_path(self, state: ModelState) -> tuple[Action, ...]:
        """Shortest witness path from ``state`` to a quiescent state.

        The quiescence invariant only proves such a path *exists*; this
        surfaces it, so callers (scenario lowering, counterexample
        display) can actually terminate a run in a drained state.
        Raises :class:`InvariantViolation` naming the wedged state when
        no drain path exists.
        """
        model = self.model
        if model.quiescent(state):
            return ()
        seen: set[ModelState] = {state}
        queue: deque[tuple[ModelState, tuple[Action, ...]]] = deque([(state, ())])
        while queue:
            cursor, path = queue.popleft()
            for action in model.enabled(cursor):
                try:
                    new = model.apply(cursor, action)
                except (InvariantViolation, ProtocolError):
                    continue
                if new in seen:
                    continue
                witness = path + (action,)
                if model.quiescent(new):
                    return witness
                seen.add(new)
                queue.append((new, witness))
                if len(seen) > self.MAX_STATES:
                    raise ConfigError(
                        f"drain search exceeded {self.MAX_STATES} states; "
                        "the abstract model is broken"
                    )
        raise InvariantViolation(
            f"state {state} cannot drain to quiescence: no enabled action "
            "sequence releases the ATOMIC holder"
        )

    @staticmethod
    def _trace(
        parents: dict[ModelState, tuple[Optional[ModelState], Optional[Action]]],
        state: ModelState,
    ) -> tuple[Action, ...]:
        path: list[Action] = []
        cursor: Optional[ModelState] = state
        while cursor is not None:
            parent, action = parents[cursor]
            if action is not None:
                path.append(action)
            cursor = parent
        return tuple(reversed(path))

    def _non_drainable(self, edges: dict[ModelState, list[ModelState]]) -> list[ModelState]:
        """Reachable states from which no quiescent state is reachable."""
        can_drain: set[ModelState] = {s for s in edges if self.model.quiescent(s)}
        # reverse fixpoint: a state drains if any successor drains
        changed = True
        while changed:
            changed = False
            for state, succs in edges.items():
                if state in can_drain:
                    continue
                if any(s in can_drain for s in succs):
                    can_drain.add(state)
                    changed = True
        return [s for s in edges if s not in can_drain]


def check_protocol(n_cells: int) -> ModelCheckResult:
    """Convenience wrapper: explore the stock model for ``n_cells``."""
    return ModelChecker(n_cells).run()
