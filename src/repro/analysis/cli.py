"""Command-line front end: ``ksr-analyze``.

Runs the static-analysis and verification passes over the simulator.

Examples::

    ksr-analyze --list
    ksr-analyze                    # all passes
    ksr-analyze modelcheck --cells 2 3 4
    ksr-analyze races lint --output analysis.md

Exit status is 0 when every selected pass is clean, 1 otherwise.
"""

from __future__ import annotations

import sys

from repro.errors import ReproError
from repro.util.cli import (
    build_parser,
    install_sigpipe_handler,
    print_unknown,
    resolve_selection,
    write_report,
)

__all__ = ["main", "PASSES"]


def _run_modelcheck(args) -> tuple[bool, str]:
    from repro.analysis.modelcheck import check_protocol

    lines = []
    ok = True
    for n_cells in args.cells:
        result = check_protocol(n_cells)
        ok = ok and result.ok
        lines.append(result.summary())
    return ok, "\n".join(lines)


def _run_races(args) -> tuple[bool, str]:
    from repro.analysis.races import (
        default_audit_workload,
        perturbed_contended_workload,
        perturbed_default_workload,
        run_perturbed,
    )

    lines = []
    ok = True

    _, auditor = default_audit_workload(audit=True)
    assert auditor is not None
    flags = auditor.report()
    lines.append(
        f"audit[race-free workload]: {'OK' if not flags else 'FAIL'} — "
        f"{auditor.n_events_audited} events, {len(flags)} same-instant conflict(s)"
    )
    for flag in flags[:10]:
        lines.append(f"  {flag}")
    ok = ok and not flags

    report = run_perturbed(perturbed_default_workload, n_runs=args.runs)
    lines.append(report.summary())
    ok = ok and report.state_deterministic

    # The contended run demonstrates detection: cache residency and
    # timing may legitimately vary with grant order, but the data the
    # program computes must not.
    contended = run_perturbed(perturbed_contended_workload, n_runs=args.runs)
    lines.append(
        f"perturbation[contended lock, informational]: data "
        f"{'deterministic' if contended.data_deterministic else 'DIVERGED'}, "
        f"state {'deterministic' if contended.state_deterministic else 'tie-order sensitive (expected)'}"
    )
    ok = ok and contended.data_deterministic
    return ok, "\n".join(lines)


def _run_lint(args) -> tuple[bool, str]:
    from repro.analysis.lint import lint_paths, render_report

    violations = lint_paths()
    header = (
        f"lint[src/repro]: {'OK' if not violations else 'FAIL'} — "
        f"{len(violations)} violation(s)"
    )
    body = render_report(violations)
    return not violations, header + ("\n" + body if body else "")


PASSES = {
    "modelcheck": ("Exhaustive ALLCACHE protocol state-space check", _run_modelcheck),
    "races": ("DES same-instant conflict audit + tie-break perturbation", _run_races),
    "lint": ("AST lint for sim-code hazards", _run_lint),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-analyze``."""
    install_sigpipe_handler()
    parser = build_parser(
        "ksr-analyze",
        "Verify the KSR-1 simulator: protocol model checking, "
        "determinism auditing, and sim-code lint.",
        positional="passes",
        positional_help="pass ids (see --list), or 'all' (default: all)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        nargs="+",
        default=[2, 3],
        metavar="N",
        help="cell counts for the model checker (default: 2 3)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=4,
        metavar="N",
        help="shuffled tie-break runs for the perturbation check (default: 4)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for key, (title, _) in PASSES.items():
            print(f"{key:12s} {title}")
        return 0
    wanted, unknown = resolve_selection(args.passes or ["all"], PASSES)
    if unknown:
        return print_unknown(unknown, "pass")
    all_ok = True
    sections = []
    for key in wanted:
        _, runner = PASSES[key]
        try:
            ok, rendered = runner(args)
        except ReproError as exc:
            print(f"ksr-analyze: {key}: {exc}", file=sys.stderr)
            return 2
        all_ok = all_ok and ok
        print(rendered)
        print()
        sections.append(f"## {key}\n\n```\n{rendered}\n```\n")
    if args.output:
        write_report(args.output, "ksr-analyze report", sections)
    return 0 if all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
