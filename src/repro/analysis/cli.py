"""Command-line front end: ``ksr-analyze``.

Runs the static-analysis and verification passes over the simulator.

Examples::

    ksr-analyze --list
    ksr-analyze                          # all passes, text report
    ksr-analyze modelcheck --cells 2 3 4
    ksr-analyze flow --strict            # whole-program dataflow, CI mode
    ksr-analyze flow lint --format sarif --output report.sarif
    ksr-analyze flow --write-baseline    # accept current findings
    ksr-analyze scenarios                # enumerate + sampled differential runs
    ksr-analyze scenarios --mode run --jobs 4   # execute the full corpus
    ksr-analyze scenarios --check        # replay the committed manifest (CI)
    ksr-analyze scenarios --write-manifest      # pin the current corpus

Every pass reports through the same :class:`Finding` pipeline, so any
selection of passes renders as ``text``, ``json`` or ``sarif`` and
filters through the shared baseline file
(:mod:`repro.analysis.flow.baseline`).

Exit status: 0 when every selected pass is clean, 1 when findings
remain (or, under ``--strict``, when baseline entries went stale),
2 on usage errors.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.util.cli import (
    build_parser,
    install_sigpipe_handler,
    print_unknown,
    resolve_selection,
    write_report,
)

__all__ = ["main", "PASSES"]


@dataclass
class PassResult:
    """Uniform outcome of one analysis pass."""

    ok: bool
    text: str
    findings: list = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)


def _run_modelcheck(args) -> PassResult:
    from repro.analysis.modelcheck import check_protocol

    lines = []
    ok = True
    for n_cells in args.cells:
        result = check_protocol(n_cells)
        ok = ok and result.ok
        lines.append(result.summary())
    return PassResult(ok, "\n".join(lines), stats={"cells": list(args.cells)})


def _run_races(args) -> PassResult:
    from repro.analysis.races import (
        default_audit_workload,
        perturbed_contended_workload,
        perturbed_default_workload,
        run_perturbed,
    )

    lines = []
    ok = True

    _, auditor = default_audit_workload(audit=True)
    assert auditor is not None
    flags = auditor.report()
    lines.append(
        f"audit[race-free workload]: {'OK' if not flags else 'FAIL'} — "
        f"{auditor.n_events_audited} events, {len(flags)} same-instant conflict(s)"
    )
    for flag in flags[:10]:
        lines.append(f"  {flag}")
    ok = ok and not flags

    report = run_perturbed(perturbed_default_workload, n_runs=args.runs)
    lines.append(report.summary())
    ok = ok and report.state_deterministic

    # The contended run demonstrates detection: cache residency and
    # timing may legitimately vary with grant order, but the data the
    # program computes must not.
    contended = run_perturbed(perturbed_contended_workload, n_runs=args.runs)
    lines.append(
        f"perturbation[contended lock, informational]: data "
        f"{'deterministic' if contended.data_deterministic else 'DIVERGED'}, "
        f"state {'deterministic' if contended.state_deterministic else 'tie-order sensitive (expected)'}"
    )
    ok = ok and contended.data_deterministic
    return PassResult(ok, "\n".join(lines), stats={"runs": args.runs})


def _lint_findings() -> list:
    """Run the per-file lint, lifted into Finding records (for the
    shared renderer and baseline)."""
    from repro.analysis.flow.findings import Finding
    from repro.analysis.lint import lint_paths, repro_root

    root = repro_root()
    sources: dict[str, list[str]] = {}
    findings = []
    for v in lint_paths():
        if v.path not in sources:
            try:
                sources[v.path] = (root / v.path).read_text(encoding="utf-8").splitlines()
            except OSError:
                sources[v.path] = []
        lines = sources[v.path]
        snippet = lines[v.line - 1].strip() if 0 < v.line <= len(lines) else ""
        findings.append(
            Finding(
                rule=v.code,
                path=v.path,
                line=v.line,
                col=v.col,
                message=v.message,
                snippet=snippet,
            )
        )
    return findings


def _run_lint(args) -> PassResult:
    findings = _lint_findings()
    header = (
        f"lint[src/repro]: {'OK' if not findings else 'FAIL'} — "
        f"{len(findings)} violation(s)"
    )
    return PassResult(not findings, header, findings=findings)


def _run_flow(args) -> PassResult:
    from repro.analysis.flow import run_flow

    report = run_flow()
    det = report.passes.get("determinism", {}).get("stats", {})
    pur = report.passes.get("purity", {}).get("stats", {})
    conf = report.passes.get("conformance", {})
    conf_stats = conf.get("stats", {})
    bits = [
        f"determinism {det.get('functions_analyzed', 0)} fns",
        f"purity {pur.get('call_sites', 0)} sites",
    ]
    if conf.get("ok"):
        bits.append(
            f"conformance {conf_stats.get('valuations_agreeing', 0)}/"
            f"{conf_stats.get('valuations_checked', 0)} valuations"
        )
    elif "error" in conf:
        bits.append(f"conformance EXTRACTION FAILED: {conf['error']}")
    header = (
        f"flow[src/repro]: {'OK' if report.ok else 'FAIL'} — "
        f"{len(report.findings)} finding(s) ({', '.join(bits)})"
    )
    return PassResult(report.ok, header, findings=report.findings, stats=report.passes)


def _scenario_finding(rule: str, message: str, snippet: str, detail: dict):
    from repro.analysis.flow.findings import Finding

    return Finding(
        rule=rule,
        path="coherence/protocol.py" if rule == "KSR120" else "analysis/scenarios",
        line=1,
        col=0,
        message=message,
        snippet=snippet,
        detail=detail,
    )


def _run_scenarios(args) -> PassResult:
    from pathlib import Path as _Path

    from repro.analysis.scenarios import (
        DEFAULT_MANIFEST,
        HAND_WRITTEN_GRID_POINTS,
        ScenarioModel,
        build_manifest,
        certify_extraction,
        check_manifest,
        corpus_document,
        enumerate_classes,
        load_manifest,
        run_corpus,
        sample_classes,
        write_manifest,
    )

    lines: list[str] = []
    findings: list = []
    stats: dict[str, Any] = {}

    # The enumeration is only trustworthy while the per-subpage model
    # is certified against the protocol source (KSR113 extraction).
    cert_findings, cert_stats = certify_extraction()
    findings.extend(cert_findings)
    lines.append(
        f"scenarios[extraction]: {'OK' if not cert_findings else 'FAIL'} — "
        f"model certified against coherence/protocol.py "
        f"({cert_stats.get('valuations_agreeing', 0)}/"
        f"{cert_stats.get('valuations_checked', 0)} valuations)"
    )
    stats["extraction"] = cert_stats

    manifest_path = _Path(args.manifest) if args.manifest else _Path.cwd() / DEFAULT_MANIFEST

    if args.write_manifest:
        manifest = build_manifest(seed=args.seed, sample_per_config=args.sample)
        write_manifest(manifest_path, manifest)
        total = sum(c["n_classes"] for c in manifest["configs"])
        lines.append(
            f"scenarios[manifest]: pinned {len(manifest['configs'])} config(s), "
            f"{total} classes to {manifest_path}"
        )
        return PassResult(not findings, "\n".join(lines), findings=findings, stats=stats)

    if args.check:
        manifest = load_manifest(manifest_path)
        report = check_manifest(manifest, jobs=args.jobs)
        for kind, message, detail in report.problems:
            findings.append(
                _scenario_finding(
                    "KSR121" if kind == "drift" else "KSR120",
                    message,
                    snippet=str(detail.get("key", detail.get("config", ""))),
                    detail=detail,
                )
            )
        lines.append(
            f"scenarios[check]: {'OK' if report.ok else 'FAIL'} — "
            f"{len(manifest['configs'])} config(s), {report.n_classes} classes, "
            f"{report.n_executed} pinned representative(s) replayed, "
            f"{len(report.problems)} problem(s)"
        )
        stats["check"] = {
            "n_classes": report.n_classes,
            "n_executed": report.n_executed,
            "n_problems": len(report.problems),
        }
        if args.corpus:
            enums = [
                enumerate_classes(
                    ScenarioModel(c["n_cells"], c["n_subpages"]), c["depth"]
                )
                for c in manifest["configs"]
            ]
            _Path(args.corpus).write_text(
                json.dumps(corpus_document(enums), indent=2) + "\n", encoding="utf-8"
            )
            lines.append(f"scenarios[corpus]: wrote {args.corpus}")
        return PassResult(not findings, "\n".join(lines), findings=findings, stats=stats)

    enums = []
    for n_cells in args.cells:
        for n_subpages in args.subpages:
            enum = enumerate_classes(ScenarioModel(n_cells, n_subpages), args.depth)
            enums.append(enum)
            lines.append(
                f"scenarios[{n_cells}c/{n_subpages}sp/depth {enum.depth}]: "
                f"{len(enum.classes)} classes from {enum.n_schedules} canonical "
                f"schedules (digest {enum.digest()})"
            )
    total = sum(len(e.classes) for e in enums)
    lines.append(
        f"scenarios[coverage]: {total} distinct executable scenarios vs "
        f"{HAND_WRITTEN_GRID_POINTS} hand-written litmus grid points "
        f"({total / HAND_WRITTEN_GRID_POINTS:.1f}x)"
    )
    stats["enumerate"] = {
        "configs": [[e.n_cells, e.n_subpages, e.depth, len(e.classes)] for e in enums],
        "n_classes": total,
    }

    run = None
    if args.mode == "run":
        run = run_corpus(enums, jobs=args.jobs, seed=args.seed)
    elif args.mode == "stats":
        run = run_corpus(
            enums,
            jobs=args.jobs,
            seed=args.seed,
            classes_for=lambda e: sample_classes(e, args.sample, args.seed),
        )
    if run is not None:
        for config, key, verdict in run.failures:
            kinds = ", ".join(k for k, _m in verdict["divergences"])
            findings.append(
                _scenario_finding(
                    "KSR120",
                    f"config {config}: class {key} diverged ({kinds})",
                    snippet=repr(verdict["schedule"]),
                    detail={"config": list(config), "key": key, "verdict": verdict},
                )
            )
        lines.append(
            f"scenarios[differential]: {'OK' if run.ok else 'FAIL'} — "
            f"{run.n_executed} representative(s) executed, "
            f"{run.n_divergent} divergence(s)"
        )
        stats["differential"] = {
            "n_executed": run.n_executed,
            "n_divergent": run.n_divergent,
        }
    if args.corpus:
        _Path(args.corpus).write_text(
            json.dumps(corpus_document(enums, run=run), indent=2) + "\n",
            encoding="utf-8",
        )
        lines.append(f"scenarios[corpus]: wrote {args.corpus}")
    return PassResult(not findings, "\n".join(lines), findings=findings, stats=stats)


PASSES = {
    "modelcheck": ("Exhaustive ALLCACHE protocol state-space check", _run_modelcheck),
    "races": ("DES same-instant conflict audit + tie-break perturbation", _run_races),
    "lint": ("AST lint for sim-code hazards (KSR100–103)", _run_lint),
    "flow": (
        "Whole-program dataflow: determinism, cache-key purity, protocol "
        "conformance (KSR110–113)",
        _run_flow,
    ),
    "scenarios": (
        "Symbolic scenario corpus: enumerate interleavings, differential "
        "model-vs-simulator runs (KSR120–121)",
        _run_scenarios,
    ),
}

_RUNNERS: dict[str, Callable[[Any], PassResult]] = {k: v[1] for k, v in PASSES.items()}


def _repo_baseline() -> Optional[Path]:
    """The checked-in baseline next to the working tree, if present."""
    from repro.analysis.flow.baseline import DEFAULT_BASELINE

    candidate = Path.cwd() / DEFAULT_BASELINE
    return candidate if candidate.exists() else None


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-analyze``."""
    install_sigpipe_handler()
    parser = build_parser(
        "ksr-analyze",
        "Verify the KSR-1 simulator: protocol model checking, "
        "determinism auditing, per-file lint and whole-program dataflow.",
        positional="passes",
        positional_help="pass ids (see --list), or 'all' (default: all)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        nargs="+",
        default=[2, 3],
        metavar="N",
        help="cell counts for the model checker (default: 2 3)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=4,
        metavar="N",
        help="shuffled tie-break runs for the perturbation check (default: 4)",
    )
    parser.add_argument(
        "--subpages",
        type=int,
        nargs="+",
        default=[1, 2],
        metavar="N",
        help="subpage counts for the scenarios pass (default: 1 2)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=4,
        metavar="N",
        help="interleaving bound for the scenarios pass (default: 4)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="machine seed / sample offset for scenario execution (default: 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="sweep-runner worker processes for corpus execution (default: 1)",
    )
    parser.add_argument(
        "--mode",
        choices=("enumerate", "stats", "run"),
        default="stats",
        help="scenarios pass: enumerate only, execute a sample (stats), "
        "or execute every class representative (run)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=25,
        metavar="N",
        help="representatives executed per config in stats mode, and "
        "pinned per config by --write-manifest (default: 25)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="scenarios pass: replay the committed corpus manifest and "
        "fail on class drift or divergence (CI mode)",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="scenario corpus manifest (default: .ksr-scenario-manifest.json)",
    )
    parser.add_argument(
        "--corpus",
        metavar="FILE",
        default=None,
        help="also write the enumerated corpus as JSON to FILE",
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="pin the default corpus grid into the manifest and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format for findings-producing passes (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in FILE "
        "(default: .ksr-analyze-baseline.json when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for key, (title, _) in PASSES.items():
            print(f"{key:12s} {title}")
        return 0
    wanted, unknown = resolve_selection(args.passes or ["all"], PASSES)
    if unknown:
        return print_unknown(unknown, "pass")

    from repro.analysis.flow.baseline import Baseline, BaselineError
    from repro.analysis.flow.findings import (
        findings_to_json,
        findings_to_sarif,
        findings_to_text,
    )

    baseline_path = Path(args.baseline) if args.baseline else _repo_baseline()
    try:
        baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    except BaselineError as exc:
        print(f"ksr-analyze: {exc}", file=sys.stderr)
        return 2

    all_ok = True
    sections = []
    findings = []
    pass_stats: dict[str, dict[str, Any]] = {}
    for key in wanted:
        runner = _RUNNERS[key]
        try:
            result = runner(args)
        except ReproError as exc:
            print(f"ksr-analyze: {key}: {exc}", file=sys.stderr)
            return 2
        findings.extend(result.findings)
        pass_stats[key] = {"ok": result.ok, **({"stats": result.stats} if result.stats else {})}
        all_ok = all_ok and result.ok
        if args.format == "text":
            print(result.text)
            print()
        sections.append(f"## {key}\n\n```\n{result.text}\n```\n")

    if args.write_baseline:
        target = baseline_path or Path.cwd() / ".ksr-analyze-baseline.json"
        n = Baseline.write(target, findings)
        print(f"ksr-analyze: wrote {n} baseline entr{'y' if n == 1 else 'ies'} to {target}")
        return 0

    kept, suppressed = baseline.apply(findings)
    stale = baseline.stale()
    has_errors = any(f.severity == "error" for f in kept)
    has_warnings = any(f.severity != "error" for f in kept)
    failed = (
        not all_ok
        or has_errors
        or (args.strict and (has_warnings or bool(stale)))
    )

    if args.format == "json":
        rendered = findings_to_json(
            kept, passes=pass_stats, suppressed=suppressed, stale_baseline=stale
        )
        print(rendered)
    elif args.format == "sarif":
        rendered = findings_to_sarif(kept)
        print(rendered)
    else:
        rendered = None
        if kept:
            print(findings_to_text(kept))
        if suppressed:
            print(f"ksr-analyze: {suppressed} finding(s) suppressed by baseline")
        for entry in stale:
            print(
                f"ksr-analyze: stale baseline entry {entry['rule']} "
                f"{entry['path']} {entry['span']} (no longer matches)"
                + (" — failing under --strict" if args.strict else "")
            )

    if args.output:
        if rendered is not None:
            Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        else:
            write_report(args.output, "ksr-analyze report", sections)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
