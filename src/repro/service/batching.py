"""Batching policy: how requests become bounded fan-outs.

Three mechanisms, all deliberately simple enough to reason about under
concurrency:

* **Batch splitting** — :func:`split_batches` caps how many points one
  backend ``map`` sees at a time.  A 500-point campaign still completes,
  but in bounded slices, so a single giant request cannot monopolise
  the worker pool for its whole duration (smaller requests interleave
  at batch boundaries) and at most one batch of work is outstanding on
  the backend when the server is asked to shut down.
* **Cost estimation** — :func:`estimate_points` prices a job spec in
  sweep points *before* running it; admission control rejects requests
  whose price exceeds the server's per-job bound instead of discovering
  mid-run that it accepted a monster.
* **Coalescing** — :class:`JobTable` maps a spec's canonical form to
  its in-flight job, so N identical concurrent submissions cost one
  execution; every waiter gets the same result object.  Point purity
  makes this safe: identical specs *must* produce identical payloads.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Sequence

from repro.service.jobs import SERVED_EXPERIMENTS, JobSpec

__all__ = ["split_batches", "estimate_points", "JobTable"]

#: Curves each figure sweeps per processor count (fig3: seven lock
#: variants; fig4/fig5: nine barrier algorithms; fig2 measures a fixed
#: set of (level, op) latency pairs per P).
_CURVES_PER_EXPERIMENT = {"fig2": 6, "fig3": 7, "fig4": 9, "fig5": 9}


def split_batches(calls: Sequence[Any], max_batch: int) -> Iterator[Sequence[Any]]:
    """Yield ``calls`` in order, in slices of at most ``max_batch``."""
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    for start in range(0, len(calls), max_batch):
        yield calls[start : start + max_batch]


def estimate_points(spec: JobSpec) -> int:
    """Upper-bound sweep points this job will fan out (admission price)."""
    params = spec.param_dict()
    if spec.kind == "experiment":
        exp = params["experiment"]
        assert exp in SERVED_EXPERIMENTS
        return len(params["procs"]) * _CURVES_PER_EXPERIMENT[exp]
    if spec.kind == "campaign":
        return len(params["procs"]) * len(params["rates"])
    return 1  # point


class JobTable:
    """Coalesces identical in-flight specs onto one job object.

    ``claim`` either registers ``job`` as the canonical execution for
    its spec (returns ``None``) or returns the already-in-flight job to
    piggyback on.  ``release`` must be called when the canonical job
    settles, after which the spec may run fresh again (results persist
    in the cache, so a re-run is cheap anyway).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, Any] = {}
        self.coalesced = 0

    def claim(self, canonical: str, job: Any) -> Any | None:
        """Register ``job`` for ``canonical``, or return the in-flight one."""
        with self._lock:
            existing = self._inflight.get(canonical)
            if existing is not None:
                self.coalesced += 1
                return existing
            self._inflight[canonical] = job
            return None

    def release(self, canonical: str) -> None:
        """Drop the claim; the next identical spec runs fresh."""
        with self._lock:
            self._inflight.pop(canonical, None)

    def inflight_count(self) -> int:
        """How many distinct specs are currently claimed."""
        with self._lock:
            return len(self._inflight)
